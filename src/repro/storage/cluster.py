"""The distributed storage cluster.

Composes :class:`~repro.storage.node.StorageNode` servers behind the
:class:`~repro.storage.backend.StorageBackend` API with a pluggable
:class:`~repro.storage.partitioner.Partitioner` and synchronous
replication.  Any node "may be used to insert or query data" (paper
section 4.3); in our reproduction the cluster object is that
coordinator role, and it records how many operations had to leave the
contact node — the locality metric that motivates hierarchical
partitioning.

Availability under node churn follows the Cassandra playbook the
paper relies on:

* **writes** retry each replica with capped exponential backoff; a
  replica that stays unreachable gets a *hinted handoff* — the
  coordinator queues the sub-batch and replays it when the replica
  recovers — so one down node does not stall ingest.  Only when every
  replica of some reading fails does the write raise (and the batching
  writer re-queues the batch, see
  :class:`~repro.core.collectagent.writer.BatchingWriter`).
* **reads** fall back to the next live replica instead of erroring;
  a read touching a recovered node first drains its pending hints so
  the series it serves is complete.

Replay is idempotent because the node read/compaction paths dedup on
timestamp (last write wins), so a hint that races a writer retry never
produces duplicate readings.

Metadata (sensor properties, virtual sensor definitions) is replicated
to every node, mirroring Cassandra system tables: it is tiny, read
everywhere and must survive any single node.  Metadata writes to down
nodes are hinted exactly like data writes.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.common.errors import NodeDownError, StorageError
from repro.common.timeutil import now_ns
from repro.core.sid import SID_LEVELS, SID_BITS_PER_LEVEL, SensorId
from repro.observability import MetricsRegistry
from repro.observability.spans import SpanRecorder, current_trace, default_recorder
from repro.storage.backend import InsertItem, StorageBackend
from repro.storage.membership import (
    EXPORTED_STATES,
    NODE_LEAVING,
    NODE_REMOVED,
    NODE_UP,
    ClusterMembership,
    FailureDetector,
    PartitionMove,
)
from repro.storage.node import StorageNode
from repro.storage.partitioner import HierarchicalPartitioner, Partitioner

logger = logging.getLogger(__name__)

# One process-wide pool shared by every cluster: replica write fan-out
# and subtree read fan-out are both I/O-shaped work (per-node lock
# waits, numpy bulk ops), and a shared pool keeps the thread count
# bounded no matter how many clusters a test process builds.  Created
# lazily so importing this module never spawns threads.
_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    global _pool
    pool = _pool
    if pool is None:
        with _pool_lock:
            pool = _pool
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=min(16, (os.cpu_count() or 2) * 2),
                    thread_name_prefix="dcdb-cluster-io",
                )
                _pool = pool
    return pool


def _node_up(node) -> bool:
    """Liveness of a member: plain nodes are always up; fault proxies
    (``repro.faults.FlakyNode``) expose ``is_up``."""
    return getattr(node, "is_up", True)


# Below this many SIDs a bulk read runs its per-node groups serially:
# submitting a future costs ~tens of microseconds and small in-memory
# groups hold the GIL anyway, so the fan-out only pays for itself on
# large scans (or backends that release the GIL, which get big batches
# from the callers that matter).
_PARALLEL_READ_MIN_SIDS = 256

# Cutoff passed to delete_before when a losing replica sheds a moved
# partition's rows — far enough in the future to drop everything while
# staying inside int64 timestamp arithmetic.
_FAR_FUTURE = 1 << 62

#: Accounting size of one streamed reading (int64 ts + int64 value);
#: `dcdb_rebalance_moved_bytes_total` counts rows at this width.
_ROW_BYTES = 16


class StorageCluster(StorageBackend):
    """A replicated, partitioned cluster of storage nodes.

    Parameters
    ----------
    nodes:
        The member servers; at least one.
    partitioner:
        Placement policy; defaults to the paper's hierarchical
        SID-prefix partitioner over two levels.
    replication:
        Number of copies of each reading (capped at the node count).
    contact_node:
        Index of the node this coordinator is "nearest" to; used only
        for the locality statistics.
    max_retries:
        Write attempts per replica beyond the first before the
        coordinator gives up on it and queues a hint.
    backoff_base_s / backoff_cap_s:
        Capped exponential backoff between write retries.
    hint_capacity:
        Per-node bound on hinted readings; beyond it the oldest hints
        are dropped (counted in ``dcdb_storage_hints_dropped_total``).
    sleep:
        Injectable sleep for the retry backoff; tests and simulations
        pass a no-op so chaos runs are instant and deterministic.
    slow_query_s:
        Reads slower than this are logged at WARNING with the ambient
        trace id (0 disables the slow-op log).
    spans:
        Span recorder for replica-write / hint / retry spans; defaults
        to the process-wide recorder.
    """

    def __init__(
        self,
        nodes: list[StorageNode] | None = None,
        partitioner: Partitioner | None = None,
        replication: int = 1,
        contact_node: int = 0,
        metrics: MetricsRegistry | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.005,
        backoff_cap_s: float = 0.1,
        hint_capacity: int = 1_000_000,
        sleep: Callable[[float], None] | None = None,
        slow_query_s: float = 1.0,
        spans: SpanRecorder | None = None,
        replica_cache_max: int = 65_536,
        failure_detector: FailureDetector | None = None,
        liveness_interval_s: float = 0.0,
        rebalance_chunk_rows: int = 4096,
        rebalance_timeout_s: float = 30.0,
    ) -> None:
        if nodes is None:
            nodes = [StorageNode("node0")]
        if not nodes:
            raise StorageError("a cluster needs at least one node")
        self.nodes = nodes
        self.partitioner = (
            partitioner
            if partitioner is not None
            else HierarchicalPartitioner(len(nodes))
        )
        if self.partitioner.num_nodes != len(nodes):
            raise StorageError(
                f"partitioner sized for {self.partitioner.num_nodes} nodes, "
                f"cluster has {len(nodes)}"
            )
        if replication < 1:
            raise StorageError("replication factor must be >= 1")
        if max_retries < 0:
            raise StorageError("max_retries must be >= 0")
        self.replication = min(replication, len(nodes))
        if replica_cache_max < 1:
            raise StorageError("replica_cache_max must be >= 1")
        # Replica-set lookups sit on every read and write hot path (and
        # hash partitioners recompute a digest per call), so resolved
        # sets are memoized.  The cache is bounded (FIFO eviction — the
        # oldest-resolved sensor is the cheapest to recompute) and is
        # cleared wholesale on every membership epoch change, since a
        # join/leave can move any partition.  Benign races just
        # recompute the same tuple.
        self._replica_cache: dict[SensorId, tuple[int, ...]] = {}
        self.replica_cache_max = replica_cache_max
        # Epoch-versioned ownership table + phi-accrual failure
        # detector (see repro.storage.membership).  Until the first
        # add_node/remove_node the table delegates to the partitioner,
        # so static clusters place exactly as before.
        self.membership = ClusterMembership(self.partitioner, self.replication)
        self.membership.on_epoch_change(lambda _epoch: self._replica_cache.clear())
        self.detector = (
            failure_detector if failure_detector is not None else FailureDetector()
        )
        self.rebalance_chunk_rows = rebalance_chunk_rows
        self.rebalance_timeout_s = rebalance_timeout_s
        #: Hook called as fn(partition, source_idx, target_idx, chunk_no)
        #: before each streamed chunk lands; the chaos harness's
        #: RebalanceFaultInjector plugs in here.
        self.rebalance_fault_hook: Callable[[int, int, int, int], None] | None = None
        self._membership_lock = threading.Lock()
        self._rebalance_threads: list[threading.Thread] = []
        self._rebalance_stats_lock = threading.Lock()
        self._rebalance_stats: dict[str, float] = {
            "partitions_moved": 0,
            "partitions_failed": 0,
            "moved_rows": 0,
            "moved_bytes": 0,
            "minimal_rows": 0,
            "minimal_bytes": 0,
            "source_failovers": 0,
        }
        self._pending_cleanup: deque[tuple[int, SensorId]] = deque()
        self._inflight_lock = threading.Lock()
        self._inflight_writes = 0
        self.contact_node = contact_node
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.hint_capacity = hint_capacity
        self._sleep = sleep if sleep is not None else time.sleep
        if slow_query_s < 0:
            raise StorageError("slow_query_s must be >= 0")
        self.slow_query_s = slow_query_s
        self.spans = spans if spans is not None else default_recorder()
        # Hinted handoff state: per-node FIFO of writes the node missed
        # while unreachable.  Entries are ("data", [InsertItem...]) or
        # ("meta", key, value); _hints_pending counts queued readings
        # (the gauge) and doubles as the cheap are-there-hints test on
        # the hot paths.
        self._hints: dict[int, deque] = {}
        self._hints_lock = threading.Lock()
        self._hints_pending_count = 0
        self._hints_hwm = 0
        # Locality statistics for the partitioning ablation.  Registry
        # counters stay monotonic; reset_stats() moves the baseline the
        # local_ops/remote_ops views subtract.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._local_ops = self.metrics.counter(
            "dcdb_cluster_local_ops_total", "Operations served by the contact node"
        )
        self._remote_ops = self.metrics.counter(
            "dcdb_cluster_remote_ops_total", "Operations that left the contact node"
        )
        self._write_retries = self.metrics.counter(
            "dcdb_storage_write_retries_total",
            "Replica write attempts retried after a failure",
        )
        self._read_failovers = self.metrics.counter(
            "dcdb_storage_read_failovers_total",
            "Reads that skipped an unavailable replica",
        )
        self._hints_queued = self.metrics.counter(
            "dcdb_storage_hints_queued_total",
            "Readings queued as hinted handoffs for unreachable replicas",
        )
        self._hints_replayed = self.metrics.counter(
            "dcdb_storage_hints_replayed_total",
            "Hinted readings replayed to recovered replicas",
        )
        self._hints_dropped = self.metrics.counter(
            "dcdb_storage_hints_dropped_total",
            "Hinted readings evicted by the per-node hint capacity",
        )
        self.metrics.gauge(
            "dcdb_storage_hints_pending", "Hinted readings awaiting replay"
        ).set_function(lambda: self._hints_pending_count)
        self.metrics.gauge(
            "dcdb_storage_hints_high_watermark",
            "Most hinted readings ever pending at once on this coordinator",
        ).set_function(lambda: self._hints_hwm)
        self._query_latency = self.metrics.histogram(
            "dcdb_cluster_query_seconds",
            "Cluster-layer read latency",
            ("op",),
        )
        self._local_base = 0.0
        self._remote_base = 0.0
        # Membership / elasticity instrumentation.
        self.metrics.gauge(
            "dcdb_cluster_epoch",
            "Membership epoch; bumps on every join, leave and transfer commit",
        ).set_function(lambda: float(self.membership.epoch))
        self.metrics.gauge(
            "dcdb_cluster_replica_cache_entries",
            "Memoized replica sets held by the bounded per-SID cache",
        ).set_function(lambda: float(len(self._replica_cache)))
        self.metrics.gauge(
            "dcdb_rebalance_active",
            "Partitions currently mid-transfer (union writes, dual reads)",
        ).set_function(lambda: float(self.membership.transfers_active))
        self._m_moved_rows = self.metrics.counter(
            "dcdb_rebalance_moved_rows_total",
            "Readings streamed to new owners by rebalances",
        )
        self._m_moved_bytes = self.metrics.counter(
            "dcdb_rebalance_moved_bytes_total",
            "Bytes streamed to new owners by rebalances (16 B per reading)",
        )
        self._m_partitions_moved = self.metrics.counter(
            "dcdb_rebalance_partitions_moved_total",
            "Partition transfers committed by rebalances",
        )
        self._m_source_failovers = self.metrics.counter(
            "dcdb_rebalance_source_failovers_total",
            "Partition streams restarted from another replica after a source died",
        )
        self._node_state_gauge = self.metrics.gauge(
            "dcdb_cluster_node_state",
            "Failure-detector verdict per node (1 in exactly one state)",
            labelnames=("node", "state"),
        )
        for idx, node in enumerate(self.nodes):
            self._register_node_liveness(idx, node)
        if liveness_interval_s > 0:
            self.detector.interval_ns = max(1, int(liveness_interval_s * 1e9))
            self.detector.start()

    def _register_node_liveness(self, idx: int, node) -> None:
        """Track a member in the failure detector + state gauges."""
        name = str(getattr(node, "name", idx))
        self.detector.register(name, lambda n=node: getattr(n, "is_up", True))
        bind_epoch = getattr(node, "bind_epoch", None)
        if bind_epoch is not None:
            bind_epoch(lambda: self.membership.epoch)
        for state in EXPORTED_STATES:
            self._node_state_gauge.labels(node=name, state=state).set_function(
                lambda i=idx, s=state: 1.0 if self.detector.state(i) == s else 0.0
            )

    @property
    def local_ops(self) -> int:
        return int(self._local_ops.value - self._local_base)

    @property
    def remote_ops(self) -> int:
        return int(self._remote_ops.value - self._remote_base)

    @property
    def hints_pending(self) -> int:
        """Hinted readings queued for currently-unreachable replicas."""
        return self._hints_pending_count

    def metrics_registries(self) -> list[MetricsRegistry]:
        """This cluster's registry plus every member node's."""
        seen: set[int] = set()
        registries = [self.metrics] + [node.metrics for node in self.nodes]
        return [r for r in registries if not (id(r) in seen or seen.add(id(r)))]

    def node_liveness(self) -> tuple[int, int]:
        """(live, total) member count — the health-endpoint probe.

        Reads the heartbeat channel directly (and feeds the arrival
        into the failure detector) so health checks reflect a crash
        immediately instead of waiting for the next probe tick.
        Removed members do not count against availability.
        """
        self.detector.probe()
        members = self.membership.member_indices()
        live = sum(1 for i in members if _node_up(self.nodes[i]))
        return live, len(members)

    def node_states(self) -> list[dict[str, object]]:
        """Per-node liveness detail from the failure detector.

        Each entry carries ``{index, node, state, phi}``; membership
        lifecycle states (leaving/removed) override the detector
        verdict.  Health endpoints expose this list.
        """
        states = self.detector.states()
        for entry in states:
            slot = self.membership.slot_state(int(entry["index"]))
            if slot in (NODE_LEAVING, NODE_REMOVED):
                entry["state"] = slot
        return states

    def _observe_query(self, op: str, t0: float, detail: str = "") -> None:
        """Record read latency; slow reads go to the log with the
        ambient trace id so a ``/traces`` lookup can follow up."""
        duration = time.perf_counter() - t0
        self._query_latency.labels(op=op).observe(duration)
        if 0 < self.slow_query_s <= duration:
            trace_id = current_trace()
            logger.warning(
                "slow %s took %.3fs%s",
                op,
                duration,
                f" ({detail})" if detail else "",
                extra={
                    "trace_id": trace_id,
                    "duration_s": round(duration, 6),
                    "op": op,
                },
            )

    # -- write availability --------------------------------------------------

    def _try_write(
        self,
        node_idx: int,
        items: list[InsertItem],
        trace_id: int | None = None,
    ) -> StorageError | None:
        """Write one replica's sub-batch, retrying with capped backoff.

        Returns None on success; on persistent failure the sub-batch is
        queued as a hinted handoff and the final error is returned (so
        the coordinator can propagate the root cause when *every*
        replica fails).  A node that reports itself down is hinted
        immediately — retrying a known crash only burns the backoff
        budget.

        ``trace_id`` is passed explicitly (not read from the ambient
        context) because this runs on shared-pool threads that never
        see the coordinator thread's locals.
        """
        node = self.nodes[node_idx]
        detector = self.detector
        replica = str(getattr(node, "name", node_idx))
        start_ns = now_ns() if trace_id is not None else 0
        last_error: StorageError = StorageError(f"node {replica} is down")
        # The heartbeat channel (is_up) is read alongside the accrued
        # detector verdict: a self-reported crash hints immediately
        # without burning the retry budget, and a node the detector has
        # condemned (repeated failures without a heartbeat) is skipped
        # even if it still answers the channel.
        fault = not _node_up(node) or not detector.is_alive(node_idx)
        attempts_made = 0
        for attempt in range(self.max_retries + 1):
            if not _node_up(node) or not detector.is_alive(node_idx):
                fault = True
                break
            attempts_made = attempt + 1
            try:
                node.insert_batch(items)
                detector.report_success(node_idx)
                self._account(node_idx)
                if trace_id is not None:
                    self.spans.record(
                        trace_id,
                        "replica-write",
                        "storage",
                        start_ns,
                        now_ns(),
                        replica=replica,
                        batch=len(items),
                        attempts=attempts_made,
                        retries=attempts_made - 1,
                    )
                return None
            except StorageError as exc:
                last_error = exc
                fault = True
                detector.report_failure(node_idx, hard=isinstance(exc, NodeDownError))
                if attempt >= self.max_retries or not _node_up(node):
                    logger.warning(
                        "replica %s failed %d attempts (%s); hinting %d readings",
                        replica,
                        attempt + 1,
                        exc,
                        len(items),
                    )
                    break
                self._write_retries.inc()
                self._sleep(
                    min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** attempt))
                )
        self._queue_hint(node_idx, ("data", items), len(items))
        if trace_id is not None:
            self.spans.record(
                trace_id,
                "hinted-handoff",
                "storage",
                start_ns,
                now_ns(),
                replica=replica,
                batch=len(items),
                attempts=attempts_made,
                faultInjected=fault,
                error=str(last_error),
            )
        return last_error

    def _queue_hint(self, node_idx: int, entry: tuple, readings: int) -> None:
        with self._hints_lock:
            dq = self._hints.get(node_idx)
            if dq is None:
                dq = self._hints.setdefault(node_idx, deque())
            dq.append(entry)
            self._hints_pending_count += readings
            if self._hints_pending_count > self._hints_hwm:
                self._hints_hwm = self._hints_pending_count
            self._hints_queued.inc(readings)
            # Enforce the per-node bound by evicting oldest-first; a
            # replica down for longer than the budget loses its oldest
            # hints (bounded memory beats unbounded growth — the gap is
            # visible in dcdb_storage_hints_dropped_total).
            pending_here = sum(self._entry_size(e) for e in dq)
            while pending_here > self.hint_capacity and len(dq) > 1:
                evicted = dq.popleft()
                size = self._entry_size(evicted)
                pending_here -= size
                self._hints_pending_count -= size
                self._hints_dropped.inc(size)

    @staticmethod
    def _entry_size(entry: tuple) -> int:
        return len(entry[1]) if entry[0] == "data" else 0

    def replay_hints(self, node_idx: int | None = None) -> int:
        """Replay queued hints to recovered nodes; returns readings landed.

        Called explicitly by operators/tests and piggybacked on every
        read so a recovered replica is repaired before it serves (the
        acceptance path: kill, ingest, restart, query -> complete
        series).  Hints for still-down nodes stay queued.
        """
        replayed = 0
        indices = [node_idx] if node_idx is not None else list(self._hints)
        for idx in indices:
            node = self.nodes[idx]
            if self.membership.slot_state(idx) == NODE_REMOVED:
                self._drop_hints(idx)
                continue
            if not _node_up(node):
                continue
            landed = False
            while True:
                with self._hints_lock:
                    dq = self._hints.get(idx)
                    if not dq:
                        break
                    entry = dq[0]
                try:
                    if entry[0] == "data":
                        node.insert_batch(entry[1])
                    else:
                        node.put_metadata(entry[1], entry[2])
                except StorageError:
                    break  # node flapped again; keep the hint for later
                landed = True
                size = self._entry_size(entry)
                with self._hints_lock:
                    dq = self._hints.get(idx)
                    # Only we pop from this deque's head under replay;
                    # a concurrent replay of the same node may have
                    # raced us, so re-check identity before popping.
                    if dq and dq[0] is entry:
                        dq.popleft()
                        self._hints_pending_count -= size
                        self._hints_replayed.inc(size)
                        replayed += size
            if landed:
                # A successful replay is proof of life — resurrect the
                # node in the detector without waiting for a probe.
                self.detector.report_success(idx)
        return replayed

    def _drop_hints(self, node_idx: int) -> None:
        """Discard all hints queued for a node that left the cluster."""
        with self._hints_lock:
            dq = self._hints.pop(node_idx, None)
            if not dq:
                return
            dropped = sum(self._entry_size(e) for e in dq)
            self._hints_pending_count -= dropped
            if dropped:
                self._hints_dropped.inc(dropped)

    def _repair_before_read(self) -> None:
        if self._hints_pending_count:
            self.replay_hints()
        if self._pending_cleanup:
            self._retry_cleanup()

    def _retry_cleanup(self) -> None:
        """Shed moved-partition rows from losing replicas that were
        down when their transfer committed (best-effort, like hints)."""
        for _ in range(len(self._pending_cleanup)):
            try:
                node_idx, sid = self._pending_cleanup.popleft()
            except IndexError:
                return
            if self.membership.slot_state(node_idx) == NODE_REMOVED:
                continue
            node = self.nodes[node_idx]
            if not _node_up(node):
                self._pending_cleanup.append((node_idx, sid))
                continue
            try:
                node.delete_before(sid, _FAR_FUTURE)
            except StorageError:
                self._pending_cleanup.append((node_idx, sid))

    def _replicas(self, sid: SensorId) -> tuple[int, ...]:
        """Replica set a write to ``sid`` must reach (ownership table).

        Mid-transfer sets (old ∪ new owners) are never cached — they
        shrink when the transfer commits; everything else is memoized
        in the bounded cache, which epoch changes clear wholesale.
        """
        cached = self._replica_cache.get(sid)
        if cached is not None:
            return cached
        replicas, cacheable = self.membership.write_replicas(sid)
        if cacheable:
            cache = self._replica_cache
            if len(cache) >= self.replica_cache_max:
                try:
                    cache.pop(next(iter(cache)))
                except (KeyError, StopIteration):  # racing eviction
                    pass
            cache[sid] = replicas
        return replicas

    def _read_replicas(self, sid: SensorId) -> tuple[int, ...]:
        """Candidate read order for ``sid``.

        Identical to the write set except while the sensor's partition
        is mid-transfer, when old owners (complete by union writes) are
        preferred over the still-streaming new owner.
        """
        if not self.membership.transfers_active:
            return self._replicas(sid)
        return self.membership.read_replicas(sid)

    # -- data plane ---------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        items = [(sid, timestamp, value, ttl_s)]
        trace_id = current_trace()
        ok = 0
        last_error: StorageError | None = None
        with self._inflight_lock:
            self._inflight_writes += 1
        try:
            for node_idx in self._replicas(sid):
                error = self._try_write(node_idx, items, trace_id)
                if error is None:
                    ok += 1
                else:
                    last_error = error
        finally:
            with self._inflight_lock:
                self._inflight_writes -= 1
        if ok == 0:
            raise StorageError(
                f"insert failed on all {self.replication} replicas of {sid}: "
                f"{last_error}"
            ) from last_error

    def insert_batch(self, items: Iterable[InsertItem]) -> int:
        """Route a batch grouping by owner to amortize lock traffic.

        Per-node sub-batches are written concurrently on the shared
        module pool, so replicas and partitions overlap instead of
        serializing behind one another; a single-node cluster skips
        the grouping pass entirely and hands the list straight to the
        node (no-copy fast path).

        Failed replicas are retried, then hinted; the call raises only
        if some reading landed on *no* replica at all (the batching
        writer then re-queues the whole batch — replay/retry overlap is
        deduplicated by the nodes' last-write-wins semantics).
        """
        if not isinstance(items, list):
            items = list(items)  # materialized once: retries re-send it
        # Captured once on the coordinator thread: the pool threads the
        # fan-out runs on have their own (empty) ambient context.
        trace_id = current_trace()
        with self._inflight_lock:
            self._inflight_writes += 1
        try:
            return self._insert_batch_inner(items, trace_id)
        finally:
            with self._inflight_lock:
                self._inflight_writes -= 1

    def _insert_batch_inner(self, items: list[InsertItem], trace_id) -> int:
        if len(self.nodes) == 1:
            if not items:
                return 0
            error = self._try_write(0, items, trace_id)
            if error is not None:
                raise StorageError(
                    f"insert_batch failed on the only node: {error}"
                ) from error
            return len(items)
        per_node: dict[int, list[InsertItem]] = {}
        count = 0
        replicas_for = self._replicas
        for item in items:
            for node_idx in replicas_for(item[0]):
                target = per_node.get(node_idx)
                if target is None:
                    target = per_node.setdefault(node_idx, [])
                target.append(item)
            count += 1
        if not per_node:
            return 0
        if len(per_node) == 1:
            ((node_idx, node_items),) = per_node.items()
            results = {node_idx: self._try_write(node_idx, node_items, trace_id)}
        else:
            pool = _shared_pool()
            futures = [
                (node_idx, pool.submit(self._try_write, node_idx, node_items, trace_id))
                for node_idx, node_items in per_node.items()
            ]
            results = {node_idx: future.result() for node_idx, future in futures}
        failed = {node_idx for node_idx, err in results.items() if err is not None}
        if failed:
            # A reading is lost only if its entire replica set failed;
            # hints cover partially-failed sets.
            for item in items:
                replicas = replicas_for(item[0])
                if all(node_idx in failed for node_idx in replicas):
                    cause = results[replicas[0]]
                    raise StorageError(
                        f"write failed on all replicas {list(replicas)} of "
                        f"{item[0]}: {cause}"
                    ) from cause
        return count

    def query(self, sid: SensorId, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        """Read from the first *live* replica, failing over down the
        replica list; with synchronous replication (plus hint replay
        for recovered nodes) any replica holds the full series."""
        t0 = time.perf_counter()
        self._repair_before_read()
        replicas = self._read_replicas(sid)
        last_error: StorageError | None = None
        suspected: list[int] = []
        for node_idx in replicas:
            node = self.nodes[node_idx]
            if not _node_up(node) or not self.detector.is_alive(node_idx):
                self._read_failovers.inc()
                suspected.append(node_idx)
                continue
            try:
                result = node.query(sid, start, end)
            except StorageError as exc:
                last_error = exc
                self.detector.report_failure(
                    node_idx, hard=isinstance(exc, NodeDownError)
                )
                self._read_failovers.inc()
                continue
            self.detector.report_success(node_idx)
            self._account(node_idx)
            self._observe_query("query", t0, detail=str(sid))
            return result
        # False-positive rescue: a replica the detector condemned may
        # still be reachable (its heartbeat channel says up).  Never
        # fail a read on suspicion alone.
        for node_idx in suspected:
            node = self.nodes[node_idx]
            if not _node_up(node):
                continue
            try:
                result = node.query(sid, start, end)
            except StorageError as exc:
                last_error = exc
                continue
            self.detector.report_success(node_idx)
            self._account(node_idx)
            self._observe_query("query", t0, detail=str(sid))
            return result
        raise StorageError(
            f"no live replica of {sid} (tried nodes {list(replicas)})"
        ) from last_error

    def query_many(
        self, sids, start: int, end: int
    ) -> dict[SensorId, tuple[np.ndarray, np.ndarray]]:
        """Bulk read across many sensors with one coordinated fan-out.

        SIDs are grouped by their first *live* replica, each group is
        read with a single :meth:`StorageNode.query_many` call (one
        lock round-trip per node instead of one per SID), and on large
        batches groups on different nodes run concurrently on the
        shared cluster pool — the read-side mirror of
        :meth:`insert_batch`'s write fan-out.  Below
        ``_PARALLEL_READ_MIN_SIDS`` the groups run serially on the
        calling thread: dispatching a future costs more than a small
        GIL-bound group saves.

        Failure semantics match looped :meth:`query`: a node that fails
        mid-read triggers per-SID failover to the remaining replicas,
        and only a SID with *no* live replica raises.
        """
        t0 = time.perf_counter()
        self._repair_before_read()
        unique = list(dict.fromkeys(sids))
        # Liveness comes from the failure detector's cached verdicts —
        # one snapshot for the whole batch instead of per-SID probes.
        # A node that dies between the snapshot and the read (or a
        # false positive leaving every replica suspected) is caught by
        # the per-group failover, which retries SID by SID through
        # query()'s rescue path.
        up = self.detector.liveness_snapshot()
        per_node: dict[int, list[SensorId]] = {}
        for sid in unique:
            replicas = self._read_replicas(sid)
            target = None
            for node_idx in replicas:
                if node_idx < len(up) and up[node_idx]:
                    target = node_idx
                    break
                self._read_failovers.inc()
            if target is None:
                # Every replica is suspected: route to the preferred
                # one anyway and let the per-SID failover decide — a
                # batch read must not fail on suspicion alone.
                target = replicas[0]
            group = per_node.get(target)
            if group is None:
                group = per_node.setdefault(target, [])
            group.append(sid)
        if not per_node:
            return {}

        def read_group(node_idx: int, group: list[SensorId]):
            node = self.nodes[node_idx]
            bulk = getattr(node, "query_many", None)
            if bulk is not None:
                return bulk(group, start, end)
            return {sid: node.query(sid, start, end) for sid in group}

        outcomes: dict[int, dict | StorageError] = {}
        if len(per_node) == 1 or len(unique) < _PARALLEL_READ_MIN_SIDS:
            for node_idx, group in per_node.items():
                try:
                    outcomes[node_idx] = read_group(node_idx, group)
                except StorageError as exc:
                    outcomes[node_idx] = exc
        else:
            # The largest group runs on the calling thread while the
            # rest are in flight — one fewer pool round-trip and the
            # coordinator does work instead of blocking on futures.
            pool = _shared_pool()
            ordered = sorted(per_node.items(), key=lambda kv: len(kv[1]))
            inline_idx, inline_group = ordered[-1]
            futures = [
                (node_idx, pool.submit(read_group, node_idx, group))
                for node_idx, group in ordered[:-1]
            ]
            try:
                outcomes[inline_idx] = read_group(inline_idx, inline_group)
            except StorageError as exc:
                outcomes[inline_idx] = exc
            for node_idx, future in futures:
                try:
                    outcomes[node_idx] = future.result()
                except StorageError as exc:
                    outcomes[node_idx] = exc
        results: dict[SensorId, tuple[np.ndarray, np.ndarray]] = {}
        for node_idx, group in per_node.items():
            outcome = outcomes[node_idx]
            if isinstance(outcome, StorageError):
                # The grouped replica failed under us: fail over SID by
                # SID so sensors with other live replicas still return.
                self._read_failovers.inc()
                for sid in group:
                    results[sid] = self.query(sid, start, end)
            else:
                results.update(outcome)
                self._account_many(node_idx, len(group))
        self._observe_query("query_many", t0, detail=f"{len(unique)} sids")
        return {sid: results[sid] for sid in unique}

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        """Scan a hierarchy subtree.

        With the hierarchical partitioner and a query at or below the
        partition depth, only the owning node is touched ("directing
        them directly to the respective server", paper section 4.3).
        If that owner is unavailable — or for partitioners without
        prefix locality — the scan fans out to every live node
        *concurrently* on the shared cluster pool, each node serving
        its whole subtree through one bulk :meth:`StorageNode.query_many`
        call; the replica dedup pass keeps each sensor counted once and
        runs in node order, so the result is deterministic regardless
        of scan completion order.
        """
        t0 = time.perf_counter()
        self._repair_before_read()
        keep_bits = SID_BITS_PER_LEVEL * levels
        mask = (
            ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
            if keep_bits
            else 0
        )
        single = None
        if self.membership.elastic:
            # Post-elasticity the ownership table is authoritative; it
            # returns an owner only for committed partitions (a prefix
            # mid-transfer must fan out so old owners are consulted).
            part_levels = getattr(self.partitioner, "levels", None)
            if part_levels is not None and levels >= part_levels:
                key = SensorId(prefix).prefix(part_levels)
                single = self.membership.primary_for_partition(key)
        else:
            node_for_prefix = getattr(self.partitioner, "node_for_prefix", None)
            if node_for_prefix is not None:
                single = node_for_prefix(prefix, levels)
        if single is not None and (
            not _node_up(self.nodes[single]) or not self.detector.is_alive(single)
        ):
            # Owner down: replicas of its sensors live on other nodes,
            # so fall back to the full fan-out rather than erroring.
            self._read_failovers.inc()
            single = None
        node_indices = (
            [single] if single is not None else self.membership.member_indices()
        )

        def scan(node_idx: int):
            """One node's subtree: (matching sids, per-sid series)."""
            node = self.nodes[node_idx]
            if not _node_up(node) or not self.detector.is_alive(node_idx):
                return None  # down: skip, replicas cover its sensors
            try:
                matching = [
                    sid for sid in node.sids() if (sid.value & mask) == prefix
                ]
                bulk = getattr(node, "query_many", None)
                if bulk is not None:
                    series = bulk(matching, start, end)
                else:
                    series = {sid: node.query(sid, start, end) for sid in matching}
            except StorageError:
                return "failed"
            return matching, series

        if len(node_indices) == 1:
            outcomes = [scan(node_indices[0])]
        else:
            # First node scans on the calling thread, the rest on the
            # pool: the coordinator contributes a scan instead of
            # idling on futures.
            pool = _shared_pool()
            futures = [pool.submit(scan, idx) for idx in node_indices[1:]]
            outcomes = [scan(node_indices[0])]
            outcomes.extend(future.result() for future in futures)
        results: list[tuple[SensorId, np.ndarray, np.ndarray]] = []
        if self.membership.elastic:
            # An elastic cluster can hold stale copies (a losing
            # replica not yet cleaned up after its partition moved), so
            # first-seen-in-node-order dedup is no longer safe.  Pick
            # each sensor's series from the node ranking highest in its
            # current read-replica order; nodes outside the replica set
            # (stale holders) rank last and only serve if nothing
            # better answered.
            candidates: dict[SensorId, dict[int, tuple]] = {}
            order: list[SensorId] = []
            for node_idx, outcome in zip(node_indices, outcomes):
                if outcome is None:
                    continue
                if outcome == "failed":
                    self._read_failovers.inc()
                    continue
                matching, series = outcome
                self._account(node_idx)
                for sid in matching:
                    per_sid = candidates.get(sid)
                    if per_sid is None:
                        per_sid = candidates.setdefault(sid, {})
                        order.append(sid)
                    per_sid[node_idx] = series[sid]
            for sid in order:
                per_sid = candidates[sid]
                preference = list(self._read_replicas(sid))
                best = min(
                    per_sid,
                    key=lambda idx: (
                        preference.index(idx)
                        if idx in preference
                        else len(preference) + idx
                    ),
                )
                ts, vals = per_sid[best]
                if ts.size:
                    results.append((sid, ts, vals))
        else:
            seen: set[SensorId] = set()
            for node_idx, outcome in zip(node_indices, outcomes):
                if outcome is None:
                    continue
                if outcome == "failed":
                    self._read_failovers.inc()
                    continue
                matching, series = outcome
                self._account(node_idx)
                for sid in matching:
                    if sid in seen:
                        continue
                    seen.add(sid)
                    ts, vals = series[sid]
                    if ts.size:
                        results.append((sid, ts, vals))
        self._observe_query("query_prefix", t0, detail=f"prefix={prefix:#x}")
        return iter(results)

    def sids(self) -> list[SensorId]:
        self._repair_before_read()
        merged: set[SensorId] = set()
        for node_idx in self.membership.member_indices():
            node = self.nodes[node_idx]
            if not _node_up(node):
                continue
            try:
                merged.update(node.sids())
            except StorageError:
                continue
        return sorted(merged)

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        """Best-effort on live replicas; a down replica catches up via
        TTL/compaction rather than a replayed delete."""
        removed = 0
        for node_idx in self._replicas(sid):
            node = self.nodes[node_idx]
            if not _node_up(node):
                continue
            try:
                removed = max(removed, node.delete_before(sid, cutoff))
            except StorageError:
                continue
        return removed

    # -- metadata (replicated everywhere) -----------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        ok = 0
        for node_idx in self.membership.member_indices():
            node = self.nodes[node_idx]
            try:
                if not _node_up(node):
                    raise StorageError(f"node {node_idx} down")
                node.put_metadata(key, value)
                ok += 1
            except StorageError:
                self._queue_hint(node_idx, ("meta", key, value), 0)
        if ok == 0:
            raise StorageError(f"metadata write {key!r} failed on every node")

    def get_metadata(self, key: str) -> str | None:
        return self._metadata_read(lambda node: node.get_metadata(key))

    def metadata_keys(self, prefix: str = "") -> list[str]:
        return self._metadata_read(lambda node: node.metadata_keys(prefix))

    def _metadata_read(self, fn):
        """Read from the contact node, failing over round-robin."""
        self._repair_before_read()
        members = self.membership.member_indices()
        n = len(self.nodes)
        last_error: StorageError | None = None
        for offset in range(n):
            node_idx = (self.contact_node + offset) % n
            if node_idx not in members:
                continue
            node = self.nodes[node_idx]
            if not _node_up(node):
                self._read_failovers.inc()
                continue
            try:
                return fn(node)
            except StorageError as exc:
                last_error = exc
                self._read_failovers.inc()
        raise StorageError("metadata read failed on every node") from last_error

    # -- maintenance ----------------------------------------------------------

    def compact(self) -> None:
        for node_idx in self.membership.member_indices():
            node = self.nodes[node_idx]
            if _node_up(node):
                node.compact()

    def flush(self) -> None:
        for node_idx in self.membership.member_indices():
            node = self.nodes[node_idx]
            if _node_up(node):
                node.flush()

    def commit_durable(self) -> bool:
        """Group-commit barrier across durable members.

        Forwards to every live node that implements ``commit_durable``
        (the :class:`~repro.storage.durable.DurableNode` WAL sync);
        in-memory members ignore it.  Returns True if any node synced.
        """
        synced = False
        for node_idx in self.membership.member_indices():
            node = self.nodes[node_idx]
            commit = getattr(node, "commit_durable", None)
            if commit is not None and _node_up(node):
                synced = commit() or synced
        return synced

    def close(self) -> None:
        self.detector.stop()
        self.rebalance_wait(timeout=self.rebalance_timeout_s)
        for node in self.nodes:
            close = getattr(node, "close", None)
            if close is not None:
                close()

    @classmethod
    def open_durable(
        cls,
        data_dir,
        num_nodes: int = 1,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        flush_threshold: int = 100_000,
        clock=None,
        metrics: MetricsRegistry | None = None,
        **cluster_kwargs,
    ) -> "StorageCluster":
        """Build a cluster of durable nodes under one data directory.

        Each replica gets its own subdirectory (``<data_dir>/node<i>``)
        so per-node WALs and segment files never interleave — reopening
        the same directory recovers every member independently.
        """
        from pathlib import Path

        from repro.storage.durable import DurableNode

        root = Path(data_dir)
        nodes = [
            DurableNode(
                f"node{i}",
                data_dir=root / f"node{i}",
                fsync=fsync,
                fsync_interval_s=fsync_interval_s,
                flush_threshold=flush_threshold,
                clock=clock,
                metrics=metrics,
            )
            for i in range(num_nodes)
        ]
        return cls(nodes, metrics=metrics, **cluster_kwargs)

    # -- elastic membership --------------------------------------------------

    def add_node(self, node, *, wait: bool = True, timeout: float | None = None) -> int:
        """Join a new member and rebalance partitions onto it, live.

        The node is registered with the failure detector, seeded with
        the replicated metadata, and the ownership table plans which
        partitions move (one replica each, most-loaded owners cede
        first).  History streams to the new owner on a background
        thread while ingest continues: moved partitions take writes on
        the union of old and new owners and serve reads old-owner-first
        until their transfer commits, so no acked write is ever lost —
        a new owner that is briefly down during the cutover is covered
        by hinted handoff.  With ``wait=False`` the call returns as
        soon as streaming starts; use :meth:`rebalance_wait`.

        Returns the new node's index.
        """
        with self._membership_lock:
            new_idx = len(self.nodes)
            self.nodes.append(node)
            self._register_node_liveness(new_idx, node)
            slot_idx, moves = self.membership.add_slot()
            if slot_idx != new_idx:  # pragma: no cover - defensive
                raise StorageError(
                    f"membership slot {slot_idx} does not match node {new_idx}"
                )
            self._seed_metadata(new_idx)
        self._drain_inflight_writes()
        self._start_rebalance(moves)
        if wait:
            self.rebalance_wait(timeout)
        return new_idx

    def remove_node(self, node_idx: int, *, wait: bool = True, timeout: float | None = None) -> None:
        """Drain a member out of the cluster, live.

        Every partition the member replicates is re-homed on the
        remaining nodes with the same union-write/dual-read transfer
        protocol as :meth:`add_node`; the member keeps serving reads
        and taking union writes until each of its partitions commits,
        then it is retired (its queued hints are dropped and the
        failure detector stops probing it).
        """
        with self._membership_lock:
            moves = self.membership.remove_slot(node_idx)
        self._drain_inflight_writes()
        self._start_rebalance(moves, finish_idx=node_idx)
        if wait:
            self.rebalance_wait(timeout)

    def rebalance_wait(self, timeout: float | None = None) -> bool:
        """Block until background rebalances finish; True when idle."""
        deadline = None if timeout is None else time.monotonic() + timeout
        threads = list(self._rebalance_threads)
        for thread in threads:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
            if thread.is_alive():
                return False
        with self._membership_lock:
            self._rebalance_threads = [
                t for t in self._rebalance_threads if t.is_alive()
            ]
        return True

    def rebalance_stats(self) -> dict[str, float]:
        """Moved-volume accounting of all rebalances on this cluster.

        ``minimal_rows``/``minimal_bytes`` are the theoretical minimum
        (one clean pass over each moved partition); ``moved_*`` include
        re-streams after a source died mid-transfer, so the ratio
        bounds rebalance overhead.
        """
        with self._rebalance_stats_lock:
            stats = dict(self._rebalance_stats)
        stats["active_transfers"] = self.membership.transfers_active
        stats["epoch"] = self.membership.epoch
        return stats

    def _seed_metadata(self, new_idx: int) -> None:
        """Copy replicated metadata onto a joining node (hint on failure)."""
        node = self.nodes[new_idx]
        try:
            keys = self._metadata_read(lambda n: n.metadata_keys(""))
        except StorageError:
            return  # nothing readable anywhere; nothing to seed
        for key in keys:
            try:
                value = self._metadata_read(lambda n, k=key: n.get_metadata(k))
                if value is not None:
                    node.put_metadata(key, value)
            except StorageError:
                self._queue_hint(new_idx, ("meta", key, value), 0)

    def _drain_inflight_writes(self, timeout: float = 5.0) -> None:
        """Wait out writes routed under the pre-bump epoch.

        After an epoch bump the replica cache is already cleared, but a
        write that resolved its replica set just before the bump may
        still be in flight to the old owners only.  Streaming snapshots
        the source after this barrier, so those writes are included.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight_writes == 0:
                    return
            time.sleep(0.001)

    def _start_rebalance(
        self, moves: list[PartitionMove], finish_idx: int | None = None
    ) -> None:
        thread = threading.Thread(
            target=self._run_rebalance,
            args=(moves, finish_idx),
            name="dcdb-rebalance",
            daemon=True,
        )
        self._rebalance_threads.append(thread)
        thread.start()

    def _bump_stat(self, key: str, amount: float = 1) -> None:
        with self._rebalance_stats_lock:
            self._rebalance_stats[key] += amount

    def _run_rebalance(self, moves: list[PartitionMove], finish_idx: int | None) -> None:
        failed = 0
        for move in moves:
            try:
                if not self._transfer_partition(move):
                    failed += 1
            except Exception:  # noqa: BLE001 - worker must not die silently
                logger.exception("transfer of partition %#x failed", move.partition)
                failed += 1
                self._bump_stat("partitions_failed")
        if finish_idx is not None and failed == 0:
            self._drop_hints(finish_idx)
            self.membership.finish_remove(finish_idx)
            self.detector.deregister(finish_idx)

    def _partition_sids(self, move: PartitionMove) -> list[SensorId] | None:
        """Sensors of the moving partition, listed from a live old owner."""
        for src in move.old_replicas:
            node = self.nodes[src]
            if not _node_up(node):
                continue
            try:
                return [
                    s
                    for s in node.sids()
                    if self.membership.partition_of(s) == move.partition
                ]
            except StorageError:
                continue
        return None

    def _transfer_partition(self, move: PartitionMove) -> bool:
        """Stream one partition to its new owners, then commit.

        Returns False (leaving the transfer open — union writes and
        dual reads stay in force, so nothing is lost) when no source
        replica becomes reachable within the rebalance timeout.
        """
        deadline = time.monotonic() + self.rebalance_timeout_s
        sids = self._partition_sids(move)
        while sids is None:
            if time.monotonic() > deadline:
                logger.warning(
                    "no reachable source for partition %#x; transfer stays open",
                    move.partition,
                )
                self._bump_stat("partitions_failed")
                return False
            time.sleep(0.01)
            sids = self._partition_sids(move)
        for target in move.gaining:
            for sid in sids:
                if not self._stream_sid(move, sid, target, deadline):
                    self._bump_stat("partitions_failed")
                    return False
        self._reroute_hints(move)
        self.membership.commit_transfer(move.partition)
        self._m_partitions_moved.inc()
        self._bump_stat("partitions_moved")
        # Losing replicas shed the moved rows so stale copies cannot
        # outlive the transfer (down nodes are cleaned via the same
        # piggybacked repair pass that replays hints).
        for loser in move.losing:
            if self.membership.slot_state(loser) != NODE_UP:
                continue  # a leaving node's copy dies with the node
            node = self.nodes[loser]
            for sid in sids:
                if _node_up(node):
                    try:
                        node.delete_before(sid, _FAR_FUTURE)
                        continue
                    except StorageError:
                        pass
                self._pending_cleanup.append((loser, sid))
        return True

    def _stream_sid(
        self, move: PartitionMove, sid: SensorId, target: int, deadline: float
    ) -> bool:
        """Stream one sensor's history to ``target``, retrying sources.

        Chunks land through :meth:`_try_write`, so a target that is
        briefly down during the cutover gets its chunks as hints — the
        same machinery that protects live writes.  If the source dies
        mid-stream the whole sensor is re-streamed from the next live
        old replica (last-write-wins dedup on the target makes the
        replay idempotent); only the final clean pass counts toward the
        theoretical-minimum accounting.
        """
        attempt_sources = [s for s in move.old_replicas if s != target]
        first_try = True
        while True:
            for src in attempt_sources:
                node = self.nodes[src]
                if not _node_up(node):
                    continue
                if not first_try:
                    self._m_source_failovers.inc()
                    self._bump_stat("source_failovers")
                rows = 0
                chunk_no = 0
                try:
                    for chunk in node.stream_rows(sid, self.rebalance_chunk_rows):
                        hook = self.rebalance_fault_hook
                        if hook is not None:
                            hook(move.partition, src, target, chunk_no)
                        chunk_no += 1
                        self._try_write(target, chunk)
                        rows += len(chunk)
                        self._m_moved_rows.inc(len(chunk))
                        self._m_moved_bytes.inc(len(chunk) * _ROW_BYTES)
                        self._bump_stat("moved_rows", len(chunk))
                        self._bump_stat("moved_bytes", len(chunk) * _ROW_BYTES)
                except StorageError as exc:
                    self.detector.report_failure(
                        src, hard=isinstance(exc, NodeDownError)
                    )
                    first_try = False
                    continue
                self._bump_stat("minimal_rows", rows)
                self._bump_stat("minimal_bytes", rows * _ROW_BYTES)
                return True
            if time.monotonic() > deadline:
                logger.warning(
                    "no reachable source left for %s; transfer stays open", sid
                )
                return False
            first_try = False
            time.sleep(0.01)

    def _reroute_hints(self, move: PartitionMove) -> None:
        """Re-home hints a losing replica holds for the moved partition.

        A hint queued for the old owner while it was down is a write
        the new owner must also see; delivering it there (before the
        transfer commits) keeps the cutover lossless even when the old
        owner never comes back.
        """
        for loser in move.losing:
            moved_items: list[InsertItem] = []
            with self._hints_lock:
                dq = self._hints.get(loser)
                if not dq:
                    continue
                kept: deque = deque()
                for entry in dq:
                    if entry[0] != "data":
                        kept.append(entry)
                        continue
                    mine = [
                        item
                        for item in entry[1]
                        if self.membership.partition_of(item[0]) == move.partition
                    ]
                    rest = [
                        item
                        for item in entry[1]
                        if self.membership.partition_of(item[0]) != move.partition
                    ]
                    if rest:
                        kept.append(("data", rest))
                    moved_items.extend(mine)
                if moved_items:
                    self._hints[loser] = kept
                    self._hints_pending_count -= len(moved_items)
                    self._hints_replayed.inc(len(moved_items))
            if moved_items:
                for target in move.gaining:
                    self._try_write(target, moved_items)

    # -- stats ------------------------------------------------------------------

    def _account(self, node_idx: int) -> None:
        if node_idx == self.contact_node:
            self._local_ops.inc()
        else:
            self._remote_ops.inc()

    def _account_many(self, node_idx: int, count: int) -> None:
        """Bulk accounting: one op per SID served, matching what the
        same SIDs would have recorded through looped query()."""
        if count <= 0:
            return
        if node_idx == self.contact_node:
            self._local_ops.inc(count)
        else:
            self._remote_ops.inc(count)

    def reset_stats(self) -> None:
        self._local_base = self._local_ops.value
        self._remote_base = self._remote_ops.value

    @property
    def row_count(self) -> int:
        """Total rows across current members (replicas counted)."""
        return sum(
            self.nodes[i].row_count for i in self.membership.member_indices()
        )
