"""The distributed storage cluster.

Composes :class:`~repro.storage.node.StorageNode` servers behind the
:class:`~repro.storage.backend.StorageBackend` API with a pluggable
:class:`~repro.storage.partitioner.Partitioner` and synchronous
replication.  Any node "may be used to insert or query data" (paper
section 4.3); in our reproduction the cluster object is that
coordinator role, and it records how many operations had to leave the
contact node — the locality metric that motivates hierarchical
partitioning.

Metadata (sensor properties, virtual sensor definitions) is replicated
to every node, mirroring Cassandra system tables: it is tiny, read
everywhere and must survive any single node.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import StorageError
from repro.core.sid import SID_LEVELS, SID_BITS_PER_LEVEL, SensorId
from repro.observability import MetricsRegistry
from repro.storage.backend import InsertItem, StorageBackend
from repro.storage.node import StorageNode
from repro.storage.partitioner import HierarchicalPartitioner, Partitioner

# One process-wide pool shared by every cluster: replica fan-out is
# I/O-shaped work (per-node lock waits, numpy bulk ops), and a shared
# pool keeps the thread count bounded no matter how many clusters a
# test process builds.  Created lazily so importing this module never
# spawns threads.
_write_pool_lock = threading.Lock()
_write_pool: ThreadPoolExecutor | None = None


def _shared_write_pool() -> ThreadPoolExecutor:
    global _write_pool
    pool = _write_pool
    if pool is None:
        with _write_pool_lock:
            pool = _write_pool
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=min(16, (os.cpu_count() or 2) * 2),
                    thread_name_prefix="dcdb-cluster-write",
                )
                _write_pool = pool
    return pool


class StorageCluster(StorageBackend):
    """A replicated, partitioned cluster of storage nodes.

    Parameters
    ----------
    nodes:
        The member servers; at least one.
    partitioner:
        Placement policy; defaults to the paper's hierarchical
        SID-prefix partitioner over two levels.
    replication:
        Number of copies of each reading (capped at the node count).
    contact_node:
        Index of the node this coordinator is "nearest" to; used only
        for the locality statistics.
    """

    def __init__(
        self,
        nodes: list[StorageNode] | None = None,
        partitioner: Partitioner | None = None,
        replication: int = 1,
        contact_node: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if nodes is None:
            nodes = [StorageNode("node0")]
        if not nodes:
            raise StorageError("a cluster needs at least one node")
        self.nodes = nodes
        self.partitioner = (
            partitioner
            if partitioner is not None
            else HierarchicalPartitioner(len(nodes))
        )
        if self.partitioner.num_nodes != len(nodes):
            raise StorageError(
                f"partitioner sized for {self.partitioner.num_nodes} nodes, "
                f"cluster has {len(nodes)}"
            )
        if replication < 1:
            raise StorageError("replication factor must be >= 1")
        self.replication = min(replication, len(nodes))
        self.contact_node = contact_node
        # Locality statistics for the partitioning ablation.  Registry
        # counters stay monotonic; reset_stats() moves the baseline the
        # local_ops/remote_ops views subtract.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._local_ops = self.metrics.counter(
            "dcdb_cluster_local_ops_total", "Operations served by the contact node"
        )
        self._remote_ops = self.metrics.counter(
            "dcdb_cluster_remote_ops_total", "Operations that left the contact node"
        )
        self._local_base = 0.0
        self._remote_base = 0.0

    @property
    def local_ops(self) -> int:
        return int(self._local_ops.value - self._local_base)

    @property
    def remote_ops(self) -> int:
        return int(self._remote_ops.value - self._remote_base)

    def metrics_registries(self) -> list[MetricsRegistry]:
        """This cluster's registry plus every member node's."""
        seen: set[int] = set()
        registries = [self.metrics] + [node.metrics for node in self.nodes]
        return [r for r in registries if not (id(r) in seen or seen.add(id(r)))]

    # -- data plane ---------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        for node_idx in self.partitioner.replicas_for(sid, self.replication):
            self.nodes[node_idx].insert(sid, timestamp, value, ttl_s)
            self._account(node_idx)

    def insert_batch(self, items: Iterable[InsertItem]) -> int:
        """Route a batch grouping by owner to amortize lock traffic.

        Per-node sub-batches are written concurrently on the shared
        module pool, so replicas and partitions overlap instead of
        serializing behind one another; a single-node cluster skips
        the grouping pass entirely and hands the iterable straight to
        the node (no-copy fast path).
        """
        if len(self.nodes) == 1:
            count = self.nodes[0].insert_batch(items)
            if count:
                self._account(0)
            return count
        per_node: dict[int, list[InsertItem]] = {}
        count = 0
        replicas_for = self.partitioner.replicas_for
        replication = self.replication
        for item in items:
            for node_idx in replicas_for(item[0], replication):
                target = per_node.get(node_idx)
                if target is None:
                    target = per_node.setdefault(node_idx, [])
                target.append(item)
            count += 1
        if not per_node:
            return 0
        if len(per_node) == 1:
            ((node_idx, node_items),) = per_node.items()
            self.nodes[node_idx].insert_batch(node_items)
            self._account(node_idx)
            return count
        pool = _shared_write_pool()
        futures = [
            (node_idx, pool.submit(self.nodes[node_idx].insert_batch, node_items))
            for node_idx, node_items in per_node.items()
        ]
        error: BaseException | None = None
        for node_idx, future in futures:
            try:
                future.result()
                self._account(node_idx)
            except BaseException as exc:  # propagate after all writes settle
                error = error if error is not None else exc
        if error is not None:
            raise error
        return count

    def query(self, sid: SensorId, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        # Read from the first live replica; with synchronous
        # replication any replica holds the full series.
        node_idx = self.partitioner.replicas_for(sid, self.replication)[0]
        self._account(node_idx)
        return self.nodes[node_idx].query(sid, start, end)

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        """Scan a hierarchy subtree.

        With the hierarchical partitioner and a query at or below the
        partition depth, only the owning node is touched ("directing
        them directly to the respective server", paper section 4.3);
        otherwise the scan fans out to every node.
        """
        keep_bits = SID_BITS_PER_LEVEL * levels
        mask = (
            ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
            if keep_bits
            else 0
        )
        single = None
        node_for_prefix = getattr(self.partitioner, "node_for_prefix", None)
        if node_for_prefix is not None:
            single = node_for_prefix(prefix, levels)
        node_indices = [single] if single is not None else list(range(len(self.nodes)))
        seen: set[SensorId] = set()
        for node_idx in node_indices:
            self._account(node_idx)
            node = self.nodes[node_idx]
            for sid in node.sids():
                if (sid.value & mask) != prefix or sid in seen:
                    continue
                seen.add(sid)
                ts, vals = node.query(sid, start, end)
                if ts.size:
                    yield sid, ts, vals

    def sids(self) -> list[SensorId]:
        merged: set[SensorId] = set()
        for node in self.nodes:
            merged.update(node.sids())
        return sorted(merged)

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        removed = 0
        for node_idx in self.partitioner.replicas_for(sid, self.replication):
            removed = max(removed, self.nodes[node_idx].delete_before(sid, cutoff))
        return removed

    # -- metadata (replicated everywhere) -----------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        for node in self.nodes:
            node.put_metadata(key, value)

    def get_metadata(self, key: str) -> str | None:
        return self.nodes[self.contact_node].get_metadata(key)

    def metadata_keys(self, prefix: str = "") -> list[str]:
        return self.nodes[self.contact_node].metadata_keys(prefix)

    # -- maintenance ----------------------------------------------------------

    def compact(self) -> None:
        for node in self.nodes:
            node.compact()

    def flush(self) -> None:
        for node in self.nodes:
            node.flush()

    # -- stats ------------------------------------------------------------------

    def _account(self, node_idx: int) -> None:
        if node_idx == self.contact_node:
            self._local_ops.inc()
        else:
            self._remote_ops.inc()

    def reset_stats(self) -> None:
        self._local_base = self._local_ops.value
        self._remote_base = self._remote_ops.value

    @property
    def row_count(self) -> int:
        """Total rows across all nodes (replicas counted)."""
        return sum(node.row_count for node in self.nodes)
