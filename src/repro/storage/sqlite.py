"""SQLite-backed storage backend.

Demonstrates the paper's claim that the storage abstraction "allows
for easily swapping [Cassandra] against a different database solution
without any changes in the upstream components" (section 5.1): this
backend passes the same test suite and plugs into the same Collect
Agent unchanged.

Schema: a ``readings`` table keyed by (sid, ts) with last-write-wins
upsert semantics, and a ``metadata`` key/value table.  SIDs are stored
as 32-hex-digit strings because SQLite integers are 64-bit.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Iterator

import numpy as np

from repro.core.sid import SID_BITS_PER_LEVEL, SID_LEVELS, SensorId
from repro.storage.backend import StorageBackend

_EMPTY = np.empty(0, dtype=np.int64)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS readings (
    sid TEXT NOT NULL,
    ts INTEGER NOT NULL,
    value INTEGER NOT NULL,
    expiry INTEGER NOT NULL,
    PRIMARY KEY (sid, ts)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS metadata (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
"""

_NEVER = (1 << 63) - 1


class SqliteBackend(StorageBackend):
    """File- or memory-backed storage on ``sqlite3``.

    ``path`` of ``":memory:"`` keeps everything in RAM.  A single
    serialized connection guarded by a lock keeps this correct under
    the Collect Agent's multi-threaded writes; throughput-critical
    deployments use the wide-column cluster instead.
    """

    def __init__(self, path: str = ":memory:", clock=None) -> None:
        from repro.common.timeutil import now_ns

        self._clock = clock if clock is not None else now_ns
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._lock = threading.Lock()

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        expiry = _NEVER if ttl_s <= 0 else timestamp + ttl_s * 1_000_000_000
        with self._lock:
            self._conn.execute(
                "INSERT INTO readings (sid, ts, value, expiry) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(sid, ts) DO UPDATE SET value=excluded.value, "
                "expiry=excluded.expiry",
                (sid.hex(), timestamp, value, expiry),
            )

    def insert_batch(self, items) -> int:
        rows = []
        for sid, timestamp, value, ttl_s in items:
            expiry = _NEVER if ttl_s <= 0 else timestamp + ttl_s * 1_000_000_000
            rows.append((sid.hex(), timestamp, value, expiry))
        with self._lock:
            self._conn.executemany(
                "INSERT INTO readings (sid, ts, value, expiry) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(sid, ts) DO UPDATE SET value=excluded.value, "
                "expiry=excluded.expiry",
                rows,
            )
        return len(rows)

    def query(self, sid: SensorId, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        now = self._clock()
        with self._lock:
            cursor = self._conn.execute(
                "SELECT ts, value FROM readings "
                "WHERE sid = ? AND ts BETWEEN ? AND ? AND expiry > ? ORDER BY ts",
                (sid.hex(), start, end, now),
            )
            rows = cursor.fetchall()
        if not rows:
            return _EMPTY, _EMPTY
        arr = np.asarray(rows, dtype=np.int64)
        return arr[:, 0], arr[:, 1]

    def query_many(
        self, sids, start: int, end: int
    ) -> dict[SensorId, tuple[np.ndarray, np.ndarray]]:
        """Batched read: one ``IN``-list statement per chunk of SIDs.

        Chunked at 500 SIDs per statement to stay well under SQLite's
        bound-variable limit.
        """
        if not isinstance(sids, (list, tuple)):
            sids = list(sids)
        now = self._clock()
        out: dict[SensorId, tuple[np.ndarray, np.ndarray]] = {
            sid: (_EMPTY, _EMPTY) for sid in sids
        }
        by_hex = {sid.hex(): sid for sid in sids}
        hexes = list(by_hex)
        for chunk_start in range(0, len(hexes), 500):
            chunk = hexes[chunk_start : chunk_start + 500]
            placeholders = ",".join("?" * len(chunk))
            with self._lock:
                cursor = self._conn.execute(
                    f"SELECT sid, ts, value FROM readings "
                    f"WHERE sid IN ({placeholders}) "
                    "AND ts BETWEEN ? AND ? AND expiry > ? ORDER BY sid, ts",
                    (*chunk, start, end, now),
                )
                rows = cursor.fetchall()
            if not rows:
                continue
            # Rows arrive grouped by sid (ORDER BY sid, ts): split the
            # result into per-sensor runs without a Python-level sort.
            run_start = 0
            for i in range(1, len(rows) + 1):
                if i == len(rows) or rows[i][0] != rows[run_start][0]:
                    arr = np.asarray(
                        [r[1:] for r in rows[run_start:i]], dtype=np.int64
                    )
                    out[by_hex[rows[run_start][0]]] = (arr[:, 0], arr[:, 1])
                    run_start = i
        return out

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        keep_bits = SID_BITS_PER_LEVEL * levels
        mask = (
            ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
            if keep_bits
            else 0
        )
        for sid in self.sids():
            if (sid.value & mask) != prefix:
                continue
            ts, vals = self.query(sid, start, end)
            if ts.size:
                yield sid, ts, vals

    def sids(self) -> list[SensorId]:
        with self._lock:
            cursor = self._conn.execute("SELECT DISTINCT sid FROM readings ORDER BY sid")
            return [SensorId.from_hex(row[0]) for row in cursor.fetchall()]

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM readings WHERE sid = ? AND ts < ?", (sid.hex(), cutoff)
            )
            return cursor.rowcount

    def put_metadata(self, key: str, value: str) -> None:
        with self._lock:
            if value == "":
                self._conn.execute("DELETE FROM metadata WHERE key = ?", (key,))
            else:
                self._conn.execute(
                    "INSERT INTO metadata (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                    (key, value),
                )

    def get_metadata(self, key: str) -> str | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM metadata WHERE key = ?", (key,)
            ).fetchone()
            return row[0] if row else None

    def metadata_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT key FROM metadata WHERE key GLOB ? ORDER BY key",
                (prefix + "*",),
            )
            return [row[0] for row in cursor.fetchall()]

    def compact(self) -> None:
        """Purge expired rows and vacuum."""
        with self._lock:
            self._conn.execute("DELETE FROM readings WHERE expiry <= ?", (self._clock(),))
            self._conn.commit()

    def flush(self) -> None:
        with self._lock:
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()
