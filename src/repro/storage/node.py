"""A single storage server: memtable, sorted segments, compaction.

Models the write path that makes wide-column stores "a perfect fit"
for monitoring data (paper section 3.1): inserts land in an in-memory
*memtable* (append, no sorting on the hot path); when it fills up it
is frozen into an immutable, time-sorted *segment* (the SSTable
analogue, held as numpy arrays); reads merge the memtable and every
overlapping segment; *compaction* merges segments to bound read
amplification.  TTL expiry happens lazily on read and permanently on
compaction — the same life cycle as Cassandra's tombstone-free TTL
columns.

A node is thread-safe and single-process; distribution is layered on
top by :mod:`repro.storage.cluster`.

Write idempotency contract: duplicate timestamps are deduplicated
last-write-wins on the read path and permanently during compaction, so
*re-applying* a write (a retried replica batch, a hinted-handoff
replay racing the batching writer's re-queue) never yields duplicate
readings.  The cluster's failure handling depends on this property;
keep it when changing the merge paths.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.sid import SensorId
from repro.observability import MetricsRegistry

_INT64_MAX = (1 << 63) - 1


@dataclass(slots=True)
class _Segment:
    """An immutable, time-sorted, timestamp-deduplicated run of readings.

    Invariants (established at flush/compaction time): ``timestamps``
    is strictly ascending — sorted AND deduplicated last-write-wins —
    and ``min_ts``/``max_ts`` cache the bounds so a query can prune a
    non-overlapping segment without touching its arrays.  The read
    path's zero-copy fast path returns views into these arrays, which
    is only sound because both invariants hold.
    """

    timestamps: np.ndarray  # int64, strictly ascending
    values: np.ndarray  # int64
    expiries: np.ndarray  # int64 expiry ns; _INT64_MAX = never
    min_ts: int = field(init=False, default=0)
    max_ts: int = field(init=False, default=-1)
    min_expiry: int = field(init=False, default=_INT64_MAX)

    def __post_init__(self) -> None:
        if self.timestamps.size:
            self.min_ts = int(self.timestamps[0])
            self.max_ts = int(self.timestamps[-1])
            self.min_expiry = int(self.expiries.min())

    @property
    def size(self) -> int:
        return int(self.timestamps.size)

    def overlaps(self, start: int, end: int) -> bool:
        return self.max_ts >= start and self.min_ts <= end

    def slice(self, start: int, end: int, now: int) -> tuple[np.ndarray, np.ndarray]:
        """Rows with start <= t <= end that have not expired at ``now``.

        Binary-searches the sorted timestamps (no boolean mask over the
        whole segment) and returns *views* when every row is live.
        ``min_expiry`` (cached at freeze time) lets the common all-live
        segment skip the expiry mask entirely, and a window covering
        the whole segment skips the binary search too — the full arrays
        come back untouched.
        """
        if self.min_expiry > now:
            if start <= self.min_ts and end >= self.max_ts:
                return self.timestamps, self.values
            lo = (
                0
                if start <= self.min_ts
                else int(np.searchsorted(self.timestamps, start, side="left"))
            )
            hi = (
                self.timestamps.size
                if end >= self.max_ts
                else int(np.searchsorted(self.timestamps, end, side="right"))
            )
            return self.timestamps[lo:hi], self.values[lo:hi]
        lo = int(np.searchsorted(self.timestamps, start, side="left"))
        hi = int(np.searchsorted(self.timestamps, end, side="right"))
        ts = self.timestamps[lo:hi]
        vals = self.values[lo:hi]
        exp = self.expiries[lo:hi]
        live = exp > now
        if live.all():
            return ts, vals
        return ts[live], vals[live]


@dataclass(slots=True)
class _SensorData:
    """Per-sensor storage state: live memtable rows plus segments."""

    mem_ts: list[int] = field(default_factory=list)
    mem_val: list[int] = field(default_factory=list)
    mem_exp: list[int] = field(default_factory=list)
    segments: list[_Segment] = field(default_factory=list)


class StorageNode:
    """One storage server of the distributed store.

    ``flush_threshold`` is the per-node memtable row budget before an
    automatic flush; ``max_segments_per_sensor`` triggers compaction.
    ``clock`` supplies "now" for TTL decisions and defaults to the
    wall clock; simulations inject a :class:`~repro.common.timeutil.SimClock`.
    """

    def __init__(
        self,
        name: str = "node0",
        flush_threshold: int = 100_000,
        max_segments_per_sensor: int = 8,
        clock=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        from repro.common.timeutil import now_ns

        self.name = name
        self.flush_threshold = flush_threshold
        self.max_segments_per_sensor = max_segments_per_sensor
        self._clock = clock if clock is not None else now_ns
        self._data: dict[SensorId, _SensorData] = {}
        self._metadata: dict[str, str] = {}
        self._lock = threading.RLock()
        self._memtable_rows = 0
        # Sorted SID list served by sids(); rebuilt lazily after the
        # first insert of a previously-unseen sensor invalidates it.
        self._sids_cache: list[SensorId] | None = None
        # Operational counters surfaced by the admin tooling and
        # /metrics, labelled by node so cluster-wide merges keep the
        # per-server breakdown.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._inserts = self.metrics.counter(
            "dcdb_storage_inserts_total", "Readings appended to the memtable", ("node",)
        ).labels(node=name)
        self._flushes = self.metrics.counter(
            "dcdb_storage_flushes_total", "Memtable freezes into segments", ("node",)
        ).labels(node=name)
        self._compactions = self.metrics.counter(
            "dcdb_storage_compactions_total", "Per-sensor segment merges", ("node",)
        ).labels(node=name)
        self._segments_pruned = self.metrics.counter(
            "dcdb_storage_segments_pruned_total",
            "Segments skipped by time-index pruning on the read path",
            ("node",),
        ).labels(node=name)
        self._query_latency = self.metrics.histogram(
            "dcdb_node_query_seconds",
            "Node-layer query latency (query and query_many calls)",
            ("node",),
        ).labels(node=name)
        self.metrics.gauge(
            "dcdb_storage_memtable_rows", "Rows currently in the memtable", ("node",)
        ).labels(node=name).set_function(lambda: self._memtable_rows)
        self.metrics.gauge(
            "dcdb_storage_segments", "Immutable segments held", ("node",)
        ).labels(node=name).set_function(lambda: self.segment_count)

    # Backward-compatible counter views over the registry.

    @property
    def inserts(self) -> int:
        return int(self._inserts.value)

    @property
    def flushes(self) -> int:
        return int(self._flushes.value)

    @property
    def compactions(self) -> int:
        return int(self._compactions.value)

    # -- write path -------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        """Append one reading to the memtable."""
        expiry = _INT64_MAX if ttl_s <= 0 else timestamp + ttl_s * 1_000_000_000
        with self._lock:
            data = self._data.get(sid)
            if data is None:
                data = _SensorData()
                self._data[sid] = data
                self._sids_cache = None
            data.mem_ts.append(timestamp)
            data.mem_val.append(value)
            data.mem_exp.append(expiry)
            self._memtable_rows += 1
            self._inserts.inc()
            if self._memtable_rows >= self.flush_threshold:
                self._flush_locked()

    def insert_batch(self, items) -> int:
        """Bulk append; one lock acquisition for the whole batch.

        The batch is decomposed into per-sensor columns *outside* the
        lock (C-level ``zip``/``itertools`` where possible) and the
        memtable columns are extended in bulk, so the lock hold time
        and the per-row Python overhead both shrink with batch size.
        """
        if not isinstance(items, list):
            items = list(items)
        count = len(items)
        if count == 0:
            return 0
        sids, timestamps, values, ttls = zip(*items)
        if len(set(sids)) == 1:
            # Single-sensor batch (one MQTT message, one bulk import):
            # three column extends, no per-row Python loop at all when
            # the TTLs need no arithmetic.
            if max(ttls) <= 0:
                expiries = itertools.repeat(_INT64_MAX, count)
            else:
                expiries = [
                    _INT64_MAX if ttl <= 0 else t + ttl * 1_000_000_000
                    for t, ttl in zip(timestamps, ttls)
                ]
            columns = {sids[0]: (timestamps, values, expiries)}
        else:
            # Mixed-sensor batch (cross-message coalescing): one
            # grouping pass, then bulk extends per sensor.
            columns = {}
            for sid, timestamp, value, ttl_s in items:
                cols = columns.get(sid)
                if cols is None:
                    cols = ([], [], [])
                    columns[sid] = cols
                cols[0].append(timestamp)
                cols[1].append(value)
                cols[2].append(
                    _INT64_MAX if ttl_s <= 0 else timestamp + ttl_s * 1_000_000_000
                )
        with self._lock:
            for sid, (col_ts, col_val, col_exp) in columns.items():
                data = self._data.get(sid)
                if data is None:
                    data = _SensorData()
                    self._data[sid] = data
                    self._sids_cache = None
                data.mem_ts.extend(col_ts)
                data.mem_val.extend(col_val)
                data.mem_exp.extend(col_exp)
            self._memtable_rows += count
            self._inserts.inc(count)
            if self._memtable_rows >= self.flush_threshold:
                self._flush_locked()
        return count

    def flush(self) -> None:
        """Freeze the memtable of every sensor into segments."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        frozen: dict[SensorId, _Segment] = {}
        for sid, data in self._data.items():
            if not data.mem_ts:
                continue
            ts = np.asarray(data.mem_ts, dtype=np.int64)
            vals = np.asarray(data.mem_val, dtype=np.int64)
            exp = np.asarray(data.mem_exp, dtype=np.int64)
            order = np.argsort(ts, kind="stable")
            ts, vals, exp = ts[order], vals[order], exp[order]
            # Deduplicate duplicate timestamps last-write-wins at freeze
            # time (the stable sort kept insertion order within equal
            # keys).  Cassandra semantics: the later upsert replaces the
            # earlier value *and* its TTL.  This establishes the
            # strictly-ascending segment invariant the zero-copy query
            # fast path relies on.
            if ts.size > 1:
                keep = np.empty(ts.size, dtype=bool)
                keep[:-1] = ts[1:] != ts[:-1]
                keep[-1] = True
                if not keep.all():
                    ts, vals, exp = ts[keep], vals[keep], exp[keep]
            segment = _Segment(ts, vals, exp)
            data.mem_ts.clear()
            data.mem_val.clear()
            data.mem_exp.clear()
            data.segments.append(segment)
            frozen[sid] = segment
        self._memtable_rows = 0
        # Only count flushes that actually froze a segment: an empty
        # memtable is a no-op and must not skew the Fig. 8 accounting.
        if frozen:
            self._flushes.inc()
            # Durability seam: a subclass persists the freshly frozen
            # segments (and may truncate its WAL) before any in-memory
            # compaction reshuffles them.  Still under the node lock.
            self._sealed(frozen)
            for data in self._data.values():
                if len(data.segments) > self.max_segments_per_sensor:
                    self._compact_sensor(data)

    def _sealed(self, frozen: dict[SensorId, _Segment]) -> None:
        """Hook called under the lock after a memtable seal.

        ``frozen`` maps each sensor to the segment its memtable rows
        froze into (sorted, LWW-deduplicated).  The in-memory node does
        nothing; :class:`~repro.storage.durable.DurableNode` overrides
        this to write a segment file and rotate its write-ahead log.
        """

    # -- compaction ---------------------------------------------------------

    def compact(self) -> None:
        """Merge all segments per sensor, dropping expired rows."""
        with self._lock:
            self._flush_locked()
            for data in self._data.values():
                if len(data.segments) > 1 or any(
                    (seg.expiries <= self._clock()).any() for seg in data.segments
                ):
                    self._compact_sensor(data)

    def _compact_sensor(self, data: _SensorData) -> None:
        now = self._clock()
        all_ts = np.concatenate([seg.timestamps for seg in data.segments])
        all_vals = np.concatenate([seg.values for seg in data.segments])
        all_exp = np.concatenate([seg.expiries for seg in data.segments])
        live = all_exp > now
        all_ts, all_vals, all_exp = all_ts[live], all_vals[live], all_exp[live]
        order = np.argsort(all_ts, kind="stable")
        all_ts, all_vals, all_exp = all_ts[order], all_vals[order], all_exp[order]
        # Last-write-wins on duplicate timestamps: keep the final
        # occurrence of each timestamp (stable sort preserved insertion
        # order within equal keys).
        if all_ts.size > 1:
            keep = np.empty(all_ts.size, dtype=bool)
            keep[:-1] = all_ts[1:] != all_ts[:-1]
            keep[-1] = True
            all_ts, all_vals, all_exp = all_ts[keep], all_vals[keep], all_exp[keep]
        data.segments = [_Segment(all_ts, all_vals, all_exp)]
        self._compactions.inc()

    # -- read path ----------------------------------------------------------

    def _stage_locked(
        self, sid: SensorId, data: _SensorData, start: int, end: int
    ) -> tuple[list[_Segment], tuple[np.ndarray, np.ndarray, np.ndarray] | None, int]:
        """Snapshot one sensor's query inputs while holding the lock.

        Segments are immutable, so overlapping ones are captured by
        reference after min/max pruning; memtable columns (mutable
        lists) are frozen into arrays.  Returns ``(segments, memtable
        snapshot or None, segments pruned)`` — the expensive slicing
        and merging then happens outside the lock.

        ``sid`` identifies the sensor for subclasses that stage extra
        sources (the durable node prepends footer-pruned disk blocks);
        the base implementation does not need it.
        """
        segments = [seg for seg in data.segments if seg.overlaps(start, end)]
        pruned = len(data.segments) - len(segments)
        mem = None
        if data.mem_ts:
            mem = (
                np.asarray(data.mem_ts, dtype=np.int64),
                np.asarray(data.mem_val, dtype=np.int64),
                np.asarray(data.mem_exp, dtype=np.int64),
            )
        return segments, mem, pruned

    @staticmethod
    def _merge_staged(
        segments: list[_Segment],
        mem: tuple[np.ndarray, np.ndarray, np.ndarray] | None,
        start: int,
        end: int,
        now: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge staged segments + memtable snapshot into one series."""
        parts_ts: list[np.ndarray] = []
        parts_val: list[np.ndarray] = []
        for seg in segments:
            ts, vals = seg.slice(start, end, now)
            if ts.size:
                parts_ts.append(ts)
                parts_val.append(vals)
        mem_contributed = False
        if mem is not None:
            mts, mvals, mexp = mem
            mask = (mts >= start) & (mts <= end) & (mexp > now)
            if mask.any():
                parts_ts.append(mts[mask])
                parts_val.append(mvals[mask])
                mem_contributed = True
        if not parts_ts:
            return _EMPTY, _EMPTY
        if len(parts_ts) == 1 and not mem_contributed:
            # Zero-copy fast path: a single segment slice is already
            # sorted and timestamp-deduplicated (the segment invariant),
            # so the views from slice() are the final answer — no
            # concatenate, no argsort, no fancy-index copy.
            return parts_ts[0], parts_val[0]
        ts = np.concatenate(parts_ts)
        vals = np.concatenate(parts_val)
        order = np.argsort(ts, kind="stable")
        ts, vals = ts[order], vals[order]
        if ts.size > 1:
            keep = np.empty(ts.size, dtype=bool)
            keep[:-1] = ts[1:] != ts[:-1]
            keep[-1] = True
            ts, vals = ts[keep], vals[keep]
        return ts, vals

    def query(self, sid: SensorId, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        """Time-ordered readings of ``sid`` in [start, end]."""
        t0 = perf_counter()
        now = self._clock()
        with self._lock:
            data = self._data.get(sid)
            if data is None:
                return _EMPTY, _EMPTY
            segments, mem, pruned = self._stage_locked(sid, data, start, end)
        if pruned:
            self._segments_pruned.inc(pruned)
        result = self._merge_staged(segments, mem, start, end, now)
        self._query_latency.observe(perf_counter() - t0)
        return result

    def query_many(
        self, sids, start: int, end: int
    ) -> dict[SensorId, tuple[np.ndarray, np.ndarray]]:
        """Bulk read: the series of every SID in ``sids`` over one range.

        Semantically identical to calling :meth:`query` per SID, but
        amortizes a single lock acquisition across the whole batch:
        inputs for all sensors are staged under the lock (cheap — the
        segments are captured by reference after pruning), then sliced
        and merged outside it.  Returns an entry for *every* requested
        SID, with empty arrays for sensors without data in range.
        """
        t0 = perf_counter()
        now = self._clock()
        if not isinstance(sids, (list, tuple)):
            sids = list(sids)
        staged: list[tuple[list[_Segment], tuple, int] | None] = []
        with self._lock:
            for sid in sids:
                data = self._data.get(sid)
                staged.append(
                    None if data is None else self._stage_locked(sid, data, start, end)
                )
        pruned_total = 0
        out: dict[SensorId, tuple[np.ndarray, np.ndarray]] = {}
        for sid, stage in zip(sids, staged):
            if stage is None:
                out[sid] = (_EMPTY, _EMPTY)
                continue
            segments, mem, pruned = stage
            pruned_total += pruned
            out[sid] = self._merge_staged(segments, mem, start, end, now)
        if pruned_total:
            self._segments_pruned.inc(pruned_total)
        self._query_latency.observe(perf_counter() - t0)
        return out

    def stream_rows(self, sid: SensorId, chunk_rows: int = 4096):
        """Yield one sensor's live rows as chunked ``InsertItem`` lists.

        The rebalance path uses this to stream a partition's history to
        its new owner: each chunk feeds straight into ``insert_batch``
        on the target.  Sources are emitted in last-write-wins order
        (oldest segment first, memtable last) without a global merge,
        so replaying the chunks in order reproduces the same LWW
        outcome on the target; duplicate timestamps across sources are
        deduplicated there at read time exactly as they are here.  TTLs
        are reconstructed from the stored expiries so retention keeps
        working on the new owner.  For durable nodes the staged sources
        are footer-pruned disk blocks, making the stream block-granular
        without materializing whole segment files.
        """
        now = self._clock()
        with self._lock:
            data = self._data.get(sid)
            if data is None:
                return
            segments, mem, _ = self._stage_locked(
                sid, data, -(1 << 62), _INT64_MAX
            )
        sources = [(seg.timestamps, seg.values, seg.expiries) for seg in segments]
        if mem is not None:
            sources.append(mem)
        for ts, vals, exp in sources:
            live = exp > now
            if not live.all():
                ts, vals, exp = ts[live], vals[live], exp[live]
            for off in range(0, ts.size, chunk_rows):
                sl = slice(off, off + chunk_rows)
                cts, cvals, cexp = ts[sl], vals[sl], exp[sl]
                ttls = np.where(
                    cexp == _INT64_MAX, 0, (cexp - cts) // 1_000_000_000
                )
                yield [
                    (sid, int(t), int(v), int(l))
                    for t, v, l in zip(cts.tolist(), cvals.tolist(), ttls.tolist())
                ]

    def sids(self) -> list[SensorId]:
        """Sorted SIDs with stored data.

        The list is cached (rebuilt only after a new sensor appears) and
        shared between callers — treat it as immutable.
        """
        with self._lock:
            cache = self._sids_cache
            if cache is None:
                cache = self._sids_cache = sorted(self._data)
            return cache

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        """Remove readings strictly older than ``cutoff``."""
        removed = 0
        with self._lock:
            data = self._data.get(sid)
            if data is None:
                return 0
            if data.mem_ts:
                mts = np.asarray(data.mem_ts, dtype=np.int64)
                keep = mts >= cutoff
                dropped = int(keep.size) - int(keep.sum())
                if dropped:
                    removed += dropped
                    mvals = np.asarray(data.mem_val, dtype=np.int64)
                    mexp = np.asarray(data.mem_exp, dtype=np.int64)
                    data.mem_ts = mts[keep].tolist()
                    data.mem_val = mvals[keep].tolist()
                    data.mem_exp = mexp[keep].tolist()
            new_segments = []
            for seg in data.segments:
                mask = seg.timestamps >= cutoff
                dropped = int((~mask).sum())
                if dropped:
                    removed += dropped
                    if mask.any():
                        new_segments.append(
                            _Segment(
                                seg.timestamps[mask], seg.values[mask], seg.expiries[mask]
                            )
                        )
                else:
                    new_segments.append(seg)
            data.segments = new_segments
            self._memtable_rows = sum(len(d.mem_ts) for d in self._data.values())
        return removed

    # -- metadata -------------------------------------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        with self._lock:
            if value == "":
                self._metadata.pop(key, None)
            else:
                self._metadata[key] = value

    def get_metadata(self, key: str) -> str | None:
        with self._lock:
            return self._metadata.get(key)

    def metadata_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(k for k in self._metadata if k.startswith(prefix))

    # -- introspection ----------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Total stored rows (memtable + segments), pre-TTL."""
        with self._lock:
            total = 0
            for data in self._data.values():
                total += len(data.mem_ts)
                total += sum(seg.size for seg in data.segments)
            return total

    @property
    def segment_count(self) -> int:
        with self._lock:
            return sum(len(d.segments) for d in self._data.values())


_EMPTY = np.empty(0, dtype=np.int64)
