"""Minimal in-memory storage backend.

The simplest :class:`~repro.storage.backend.StorageBackend`: plain
per-sensor Python lists, sorted on read.  It exists to prove the
backend abstraction (paper section 5.1) with the smallest possible
implementation, and as the fast default for unit tests that do not
exercise storage internals.
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from repro.core.sid import SID_BITS_PER_LEVEL, SID_LEVELS, SensorId
from repro.storage.backend import StorageBackend

_EMPTY = np.empty(0, dtype=np.int64)


class MemoryBackend(StorageBackend):
    """Dictionary-of-lists storage with TTL support."""

    def __init__(self, clock=None) -> None:
        from repro.common.timeutil import now_ns

        self._clock = clock if clock is not None else now_ns
        self._data: dict[SensorId, list[tuple[int, int, int]]] = {}
        self._metadata: dict[str, str] = {}
        self._lock = threading.Lock()

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        expiry = (1 << 63) - 1 if ttl_s <= 0 else timestamp + ttl_s * 1_000_000_000
        with self._lock:
            self._data.setdefault(sid, []).append((timestamp, value, expiry))

    def query(self, sid: SensorId, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        now = self._clock()
        with self._lock:
            rows = self._data.get(sid)
            if not rows:
                return _EMPTY, _EMPTY
            # Last write wins on duplicate timestamps: iterate in
            # insertion order so a later insert overwrites an earlier
            # one in the dict (sorting (t, v) tuples here would order
            # equal timestamps by value instead and corrupt LWW).
            deduped: dict[int, int] = {
                t: v for t, v, e in rows if start <= t <= end and e > now
            }
        if not deduped:
            return _EMPTY, _EMPTY
        ts = np.fromiter(deduped.keys(), dtype=np.int64, count=len(deduped))
        vals = np.fromiter(deduped.values(), dtype=np.int64, count=len(deduped))
        order = np.argsort(ts)
        return ts[order], vals[order]

    def query_many(
        self, sids, start: int, end: int
    ) -> dict[SensorId, tuple[np.ndarray, np.ndarray]]:
        """Batched read: one lock acquisition for the whole SID list."""
        now = self._clock()
        if not isinstance(sids, (list, tuple)):
            sids = list(sids)
        deduped_per_sid: list[dict[int, int]] = []
        with self._lock:
            for sid in sids:
                rows = self._data.get(sid)
                deduped_per_sid.append(
                    {t: v for t, v, e in rows if start <= t <= end and e > now}
                    if rows
                    else {}
                )
        out: dict[SensorId, tuple[np.ndarray, np.ndarray]] = {}
        for sid, deduped in zip(sids, deduped_per_sid):
            if not deduped:
                out[sid] = (_EMPTY, _EMPTY)
                continue
            ts = np.fromiter(deduped.keys(), dtype=np.int64, count=len(deduped))
            vals = np.fromiter(deduped.values(), dtype=np.int64, count=len(deduped))
            order = np.argsort(ts)
            out[sid] = (ts[order], vals[order])
        return out

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        keep_bits = SID_BITS_PER_LEVEL * levels
        mask = (
            ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
            if keep_bits
            else 0
        )
        with self._lock:
            candidates = [sid for sid in self._data if (sid.value & mask) == prefix]
        for sid in sorted(candidates):
            ts, vals = self.query(sid, start, end)
            if ts.size:
                yield sid, ts, vals

    def sids(self) -> list[SensorId]:
        with self._lock:
            return sorted(self._data)

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        with self._lock:
            rows = self._data.get(sid)
            if not rows:
                return 0
            kept = [(t, v, e) for t, v, e in rows if t >= cutoff]
            removed = len(rows) - len(kept)
            self._data[sid] = kept
            return removed

    def put_metadata(self, key: str, value: str) -> None:
        with self._lock:
            if value == "":
                self._metadata.pop(key, None)
            else:
                self._metadata[key] = value

    def get_metadata(self, key: str) -> str | None:
        with self._lock:
            return self._metadata.get(key)

    def metadata_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(k for k in self._metadata if k.startswith(prefix))
