"""Transport selection seam: TCP event loop or in-process hub.

The components above the transport — :class:`CollectAgent`,
:class:`Pusher`, the daemons, the simulation — do not care whether
readings travel over real sockets or function calls; they need a
broker-shaped endpoint and a client-shaped endpoint.  A
:class:`Transport` builds both, so callers select the wire by
configuration (``transport = tcp`` / ``transport = inproc`` in the
daemon config files) instead of instantiating concrete classes.

* :class:`TCPTransport` — the production layout: the selector
  event-loop broker (:mod:`repro.mqtt.broker`) plus the reconnecting
  :class:`~repro.mqtt.client.MQTTClient`.
* :class:`InProcTransport` — one shared :class:`~repro.mqtt.inproc.InProcHub`
  per transport instance and :class:`~repro.mqtt.inproc.InProcClient`
  endpoints, for simulations that must not pay socket overhead.

``get_transport`` resolves a config string (or passes an existing
Transport through), raising :class:`ConfigError` on unknown names.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.common.errors import ConfigError
from repro.observability import MetricsRegistry

__all__ = ["Transport", "TCPTransport", "InProcTransport", "get_transport"]


@runtime_checkable
class Transport(Protocol):
    """Factory pair for one side of the MQTT wire.

    ``make_broker`` returns an object with the broker surface
    (``start``/``stop``/``add_publish_hook``/``port``/``metrics``);
    ``make_client`` returns one with the client surface
    (``connect``/``publish``/``subscribe``/``disconnect``).  Brokers
    are returned un-started; callers own the lifecycle.
    """

    name: str

    def make_broker(
        self,
        *,
        publish_only: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ): ...

    def make_client(
        self,
        client_id: str,
        *,
        host: str | None = None,
        port: int | None = None,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ): ...


class TCPTransport:
    """Real sockets: event-loop broker + reconnecting client."""

    name = "tcp"

    def __init__(self) -> None:
        self._last_broker = None

    def make_broker(
        self,
        *,
        publish_only: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ):
        from repro.mqtt.broker import MQTTBroker, PublishOnlyBroker

        cls = PublishOnlyBroker if publish_only else MQTTBroker
        broker = cls(host, port, metrics=metrics, **kwargs)
        self._last_broker = broker
        return broker

    def make_client(
        self,
        client_id: str,
        *,
        host: str | None = None,
        port: int | None = None,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ):
        from repro.mqtt.client import MQTTClient

        if port is None and self._last_broker is not None:
            # Convenience for co-located setups (tests, simulations):
            # default to the broker this transport built, once started.
            port = self._last_broker.port
        if host is None:
            host = (
                self._last_broker.host if self._last_broker is not None else "127.0.0.1"
            )
        if port is None:
            raise ConfigError(
                "TCP transport needs a port (none given and no broker built yet)"
            )
        return MQTTClient(client_id, host=host, port=port, metrics=metrics, **kwargs)


class InProcTransport:
    """Function calls: one shared hub, zero sockets."""

    name = "inproc"

    def __init__(self) -> None:
        self._hub = None

    def make_broker(
        self,
        *,
        publish_only: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ):
        from repro.mqtt.inproc import InProcHub

        # host/port are accepted (and ignored) so configs can switch
        # transports without deleting keys.
        kwargs.pop("max_write_buffer", None)
        kwargs.pop("overflow_policy", None)
        kwargs.pop("fault_injector", None)
        kwargs.pop("authenticator", None)
        self._hub = InProcHub(
            allow_subscribe=not publish_only, metrics=metrics, **kwargs
        )
        return self._hub

    def make_client(
        self,
        client_id: str,
        *,
        host: str | None = None,
        port: int | None = None,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ):
        from repro.mqtt.inproc import InProcClient, InProcHub

        if self._hub is None:
            self._hub = InProcHub()
        return InProcClient(client_id, self._hub, metrics=metrics)

    @property
    def hub(self):
        return self._hub


_FACTORIES = {
    "tcp": TCPTransport,
    "inproc": InProcTransport,
}


def get_transport(spec) -> Transport:
    """Resolve ``spec`` into a Transport.

    ``None`` means "tcp".  Strings are looked up by name; anything
    already transport-shaped passes through, so callers can inject a
    pre-built (or custom) transport.
    """
    if spec is None:
        return TCPTransport()
    if isinstance(spec, str):
        factory = _FACTORIES.get(spec.lower())
        if factory is None:
            raise ConfigError(
                f"unknown transport {spec!r} (expected one of {sorted(_FACTORIES)})"
            )
        return factory()
    if hasattr(spec, "make_broker") and hasattr(spec, "make_client"):
        return spec
    raise ConfigError(f"not a transport: {spec!r}")
