"""MQTT topic names, filters, and the subscription trie.

DCDB assigns each sensor a unique MQTT topic whose levels mirror the
physical hierarchy of the facility (paper section 3.1), e.g.
``/hpc/rack02/chassis1/node7/cpu12/instructions``.  Consumers — the
Storage Backend subscriber, ad-hoc analysis tools — subscribe with the
standard MQTT wildcards: ``+`` matches exactly one level and ``#``
matches the remaining suffix.

The :class:`SubscriptionTree` is the broker-side structure resolving a
published topic to its set of subscribers.  It is a trie keyed by
hierarchy level so that matching costs O(depth · branching-by-wildcard)
rather than O(subscriptions).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.common.errors import TransportError


def split_topic(topic: str) -> list[str]:
    """Split a topic into hierarchy levels.

    MQTT treats a leading ``/`` as an empty first level; DCDB's topics
    conventionally start with ``/``, so ``/a/b`` splits into
    ``["", "a", "b"]`` — exactly per spec.
    """
    return topic.split("/")


def validate_topic(topic: str) -> None:
    """Validate a concrete (publishable) topic name.

    Raises :class:`TransportError` for empty names, embedded wildcards
    or NUL characters.
    """
    if not topic:
        raise TransportError("topic must not be empty")
    if len(topic.encode("utf-8")) > 0xFFFF:
        raise TransportError("topic exceeds 65535 bytes")
    if "#" in topic or "+" in topic:
        raise TransportError(f"wildcards not allowed in topic name {topic!r}")
    if "\x00" in topic:
        raise TransportError("NUL character not allowed in topic")


def validate_filter(pattern: str) -> None:
    """Validate a subscription filter.

    Enforces the MQTT 3.1.1 wildcard placement rules: ``+`` must occupy
    an entire level; ``#`` must occupy the final level only.
    """
    if not pattern:
        raise TransportError("topic filter must not be empty")
    if "\x00" in pattern:
        raise TransportError("NUL character not allowed in topic filter")
    levels = split_topic(pattern)
    for i, level in enumerate(levels):
        if "#" in level:
            if level != "#":
                raise TransportError(f"'#' must occupy a whole level in {pattern!r}")
            if i != len(levels) - 1:
                raise TransportError(f"'#' must be the last level in {pattern!r}")
        if "+" in level and level != "+":
            raise TransportError(f"'+' must occupy a whole level in {pattern!r}")


def topic_matches(pattern: str, topic: str) -> bool:
    """True if concrete ``topic`` matches subscription ``pattern``.

    Implements the MQTT 3.1.1 matching rules including the corner case
    that ``a/#`` matches ``a`` itself (the parent of a ``#`` level).
    Topics beginning with ``$`` are only matched by filters that also
    spell out the ``$`` level (no wildcard match on the first level),
    per the spec's treatment of system topics.
    """
    p_levels = split_topic(pattern)
    t_levels = split_topic(topic)
    if topic.startswith("$") and p_levels and p_levels[0] in ("+", "#"):
        return False
    i = 0
    while i < len(p_levels):
        p = p_levels[i]
        if p == "#":
            return True
        if i >= len(t_levels):
            return False
        if p != "+" and p != t_levels[i]:
            return False
        i += 1
    if i == len(t_levels):
        return True
    # Pattern exhausted with topic levels left: only "a/#" style covers
    # it, handled above; anything else fails.
    return False


class _TrieNode:
    __slots__ = ("children", "subscribers")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.subscribers: dict[Hashable, int] = {}  # subscriber -> granted qos


class SubscriptionTree:
    """Broker-side subscription store with wildcard matching.

    Subscribers are arbitrary hashable handles (the broker uses its
    per-connection session objects).  ``subscribe`` records a granted
    QoS per (subscriber, filter); ``match`` returns the effective
    (subscriber, qos) set for a published topic, deduplicated with the
    maximum QoS when several of a subscriber's filters overlap.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._count = 0

    def subscribe(self, pattern: str, subscriber: Hashable, qos: int = 0) -> None:
        """Register ``subscriber`` for ``pattern`` at ``qos``."""
        validate_filter(pattern)
        node = self._root
        for level in split_topic(pattern):
            nxt = node.children.get(level)
            if nxt is None:
                nxt = _TrieNode()
                node.children[level] = nxt
            node = nxt
        if subscriber not in node.subscribers:
            self._count += 1
        node.subscribers[subscriber] = qos

    def unsubscribe(self, pattern: str, subscriber: Hashable) -> bool:
        """Remove one (pattern, subscriber) registration.

        Returns True if it existed.  Empty trie branches are pruned so
        long-running brokers with churning subscribers do not leak.
        """
        path: list[tuple[_TrieNode, str]] = []
        node = self._root
        for level in split_topic(pattern):
            nxt = node.children.get(level)
            if nxt is None:
                return False
            path.append((node, level))
            node = nxt
        if subscriber not in node.subscribers:
            return False
        del node.subscribers[subscriber]
        self._count -= 1
        # Prune now-empty nodes bottom-up.
        for parent, level in reversed(path):
            child = parent.children[level]
            if child.subscribers or child.children:
                break
            del parent.children[level]
        return True

    def remove_subscriber(self, subscriber: Hashable) -> int:
        """Drop every registration of ``subscriber`` (connection close).

        Returns the number of filters removed.
        """
        removed = 0

        def walk(node: _TrieNode) -> None:
            nonlocal removed
            if subscriber in node.subscribers:
                del node.subscribers[subscriber]
                removed += 1
            dead = []
            for level, child in node.children.items():
                walk(child)
                if not child.subscribers and not child.children:
                    dead.append(level)
            for level in dead:
                del node.children[level]

        walk(self._root)
        self._count -= removed
        return removed

    def match(self, topic: str) -> dict[Hashable, int]:
        """Return ``{subscriber: max_qos}`` for a published topic."""
        levels = split_topic(topic)
        result: dict[Hashable, int] = {}
        system = topic.startswith("$")

        def collect(node: _TrieNode) -> None:
            for sub, qos in node.subscribers.items():
                if qos > result.get(sub, -1):
                    result[sub] = qos

        def walk(node: _TrieNode, idx: int, first: bool) -> None:
            if idx == len(levels):
                collect(node)
                # "a/#" also matches "a" itself.
                hash_child = node.children.get("#")
                if hash_child is not None:
                    collect(hash_child)
                return
            level = levels[idx]
            exact = node.children.get(level)
            if exact is not None:
                walk(exact, idx + 1, False)
            if first and system:
                return  # no wildcard match on the first level of $topics
            plus = node.children.get("+")
            if plus is not None:
                walk(plus, idx + 1, False)
            hash_child = node.children.get("#")
            if hash_child is not None:
                collect(hash_child)

        walk(self._root, 0, True)
        return result

    def filters_of(self, subscriber: Hashable) -> list[str]:
        """All filters currently registered for ``subscriber``."""
        found: list[str] = []

        def walk(node: _TrieNode, prefix: list[str]) -> None:
            if subscriber in node.subscribers:
                found.append("/".join(prefix))
            for level, child in node.children.items():
                walk(child, prefix + [level])

        for level, child in self._root.children.items():
            walk(child, [level])
        return found

    def __len__(self) -> int:
        return self._count


def iter_matching(patterns: Iterable[str], topic: str) -> Iterable[str]:
    """Yield the patterns in ``patterns`` that match ``topic``.

    Convenience for small consumer-side filter lists where building a
    full trie is overkill.
    """
    for pattern in patterns:
        if topic_matches(pattern, topic):
            yield pattern


# Type of broker delivery callbacks: (topic, payload, qos, retain)
DeliveryCallback = Callable[[str, bytes, int, bool], None]
