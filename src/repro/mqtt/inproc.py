"""In-process MQTT-compatible transport.

Large simulated deployments (a thousand Pushers feeding one Collect
Agent, as in the paper's Figure 8 experiment) would drown in socket
and thread overhead if every simulated node opened a real TCP
connection from a single test process.  :class:`InProcHub` implements
the same publish/subscribe semantics as :class:`~repro.mqtt.broker.MQTTBroker`
as plain function calls — identical topic matching, identical hook
interface — so the Collect Agent and Pusher code paths above the
transport are byte-for-byte the same in both modes.

:class:`InProcClient` intentionally mirrors the public surface of
:class:`~repro.mqtt.client.MQTTClient` (connect/publish/subscribe/
disconnect), so higher layers accept either interchangeably.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable

from repro.common.errors import TransportError
from repro.common.timeutil import now_ns
from repro.core import payload as payload_mod
from repro.mqtt import packets as pkt
from repro.mqtt.broker import PublishHook
from repro.mqtt.topics import SubscriptionTree, validate_filter, validate_topic
from repro.observability import MetricsRegistry, PipelineTracer, SpanRecorder
from repro.observability.spans import default_recorder

MessageCallback = Callable[[str, bytes], None]


class InProcHub:
    """A broker-equivalent hub living inside the process.

    Exposes the same counters and ``add_publish_hook`` API as the TCP
    broker, allowing the Collect Agent to attach to either.
    """

    def __init__(
        self,
        allow_subscribe: bool = True,
        metrics: MetricsRegistry | None = None,
        trace_sample_every: int = 1,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.allow_subscribe = allow_subscribe
        self._subs = SubscriptionTree()
        self._lock = threading.Lock()
        self._hooks: list[PublishHook] = []
        self._clients: dict[int, "InProcClient"] = {}
        self._ids = itertools.count(1)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._messages_received = self.metrics.counter(
            "dcdb_broker_messages_received_total", "PUBLISH packets accepted"
        )
        self._messages_delivered = self.metrics.counter(
            "dcdb_broker_messages_delivered_total", "PUBLISH packets routed to subscribers"
        )
        self._bytes_received = self.metrics.counter(
            "dcdb_broker_bytes_received_total", "Payload+topic bytes received"
        )
        self.metrics.gauge(
            "dcdb_broker_connected_clients", "Currently attached in-proc clients"
        ).set_function(lambda: self.connected_clients)
        # Event-loop transport parity: the same metric families exist on
        # both transports so dashboards work unchanged.  Keepalive and
        # write buffering have no in-proc equivalent, so these stay 0.
        self.metrics.gauge(
            "dcdb_broker_connections", "Open transport connections"
        ).set_function(lambda: self.connected_clients)
        self._keepalive_disconnects = self.metrics.counter(
            "dcdb_broker_keepalive_disconnects_total",
            "Sessions disconnected for exceeding 1.5x their keepalive",
        )
        self.metrics.gauge(
            "dcdb_broker_write_buffer_bytes",
            "Bytes queued in per-session outgoing write buffers",
        )
        self.tracer = PipelineTracer(self.metrics, sample_every=trace_sample_every)
        self.spans = spans if spans is not None else default_recorder()

    #: TCP-broker parity: a hub has no listener, so its "port" is None
    #: and lifecycle calls are no-ops.  Lets transport-agnostic callers
    #: (CollectAgent, SimulatedCluster) treat both brokers uniformly.
    port: int | None = None

    def start(self) -> None:
        return

    def stop(self) -> None:
        return

    def __enter__(self) -> "InProcHub":
        return self

    def __exit__(self, *exc: object) -> None:
        return

    def add_publish_hook(self, hook: PublishHook) -> None:
        self._hooks.append(hook)

    @property
    def connected_clients(self) -> int:
        with self._lock:
            return len(self._clients)

    # Backward-compatible counter views over the registry.

    @property
    def messages_received(self) -> int:
        return int(self._messages_received.value)

    @property
    def messages_delivered(self) -> int:
        return int(self._messages_delivered.value)

    @property
    def bytes_received(self) -> int:
        return int(self._bytes_received.value)

    # -- client-facing operations (called by InProcClient) ------------

    def _attach(self, client: "InProcClient") -> int:
        with self._lock:
            key = next(self._ids)
            self._clients[key] = client
            return key

    def _detach(self, key: int) -> None:
        with self._lock:
            self._clients.pop(key, None)
            self._subs.remove_subscriber(key)

    def _publish(self, client_id: str, packet: pkt.Publish) -> None:
        self._messages_received.inc()
        self._bytes_received.inc(len(packet.payload) + len(packet.topic))
        trace_id = None
        if not packet.topic.startswith("$"):
            trace_id = payload_mod.trace_id_of(packet.payload)
            if trace_id is not None:
                # Wire-traced message: sampling was decided at the
                # pusher; stamp with the exemplar unconditionally.
                self.tracer.stamp_payload("dispatch", packet.payload, trace_id=trace_id)
            elif self.tracer.should_sample():
                self.tracer.stamp_payload("dispatch", packet.payload)
        start_ns = now_ns() if trace_id is not None else 0
        with self._lock:
            targets = list(self._subs.match(packet.topic).items())
            clients = {k: self._clients.get(k) for k, _ in targets}
        for hook in self._hooks:
            hook(client_id, packet)
        delivered = 0
        for key, _qos in targets:
            target = clients.get(key)
            if target is not None:
                target._deliver(packet.topic, packet.payload)
                delivered += 1
        if delivered:
            self._messages_delivered.inc(delivered)
        if trace_id is not None:
            self.spans.record(
                trace_id,
                "dispatch",
                "broker",
                start_ns,
                now_ns(),
                topic=packet.topic,
                qos=packet.qos,
                client=client_id,
            )

    def _subscribe(self, key: int, pattern: str, qos: int) -> int:
        if not self.allow_subscribe:
            raise TransportError("this hub is publish-only")
        with self._lock:
            self._subs.subscribe(pattern, key, qos)
        return qos

    def _unsubscribe(self, key: int, pattern: str) -> None:
        with self._lock:
            self._subs.unsubscribe(pattern, key)


class InProcClient:
    """Client endpoint for an :class:`InProcHub`.

    API-compatible with :class:`~repro.mqtt.client.MQTTClient` for the
    operations DCDB components use.
    """

    def __init__(
        self, client_id: str, hub: InProcHub, metrics: MetricsRegistry | None = None
    ) -> None:
        self.client_id = client_id
        self.hub = hub
        self._key: int | None = None
        self._callbacks: list[tuple[str, MessageCallback]] = []
        self.on_message: MessageCallback | None = None
        # Surface parity with MQTTClient's reconnect machinery: an
        # in-proc link cannot drop, so these are inert but present.
        self.auto_reconnect = False
        self.ever_connected = False
        self.on_reconnect: Callable[[], None] | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._messages_sent = self.metrics.counter(
            "dcdb_client_messages_sent_total", "Messages published by this client"
        )
        self._bytes_sent = self.metrics.counter(
            "dcdb_client_bytes_sent_total", "Payload+topic bytes published"
        )
        self._reconnects_counter = self.metrics.counter(
            "dcdb_client_reconnects_total",
            "Automatic broker reconnections completed by this client",
        )
        self._qos0_drops = self.metrics.counter(
            "dcdb_client_qos0_drops_total",
            "QoS 0 publishes dropped while disconnected",
        )

    @property
    def messages_sent(self) -> int:
        return int(self._messages_sent.value)

    @property
    def bytes_sent(self) -> int:
        return int(self._bytes_sent.value)

    # -- lifecycle ------------------------------------------------------

    def connect(self, timeout: float = 5.0) -> None:
        if self._key is None:
            self._key = self.hub._attach(self)
            self.ever_connected = True

    def disconnect(self) -> None:
        if self._key is not None:
            self.hub._detach(self._key)
            self._key = None

    close = disconnect

    @property
    def connected(self) -> bool:
        return self._key is not None

    def __enter__(self) -> "InProcClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.disconnect()

    # -- operations -------------------------------------------------------

    def publish(
        self,
        topic: str,
        payload: bytes,
        qos: int = 0,
        retain: bool = False,
        wait_ack: bool = False,
        timeout: float = 5.0,
    ) -> None:
        if self._key is None:
            if qos == 0 and self.ever_connected:
                self._qos0_drops.inc()
            raise TransportError("client is not connected")
        validate_topic(topic)
        packet = pkt.Publish(
            topic=topic,
            payload=payload,
            qos=qos,
            retain=retain,
            packet_id=1 if qos else None,
        )
        self.hub._publish(self.client_id, packet)
        self._messages_sent.inc()
        self._bytes_sent.inc(len(payload) + len(topic))

    def subscribe(
        self,
        pattern: str,
        callback: MessageCallback | None = None,
        qos: int = 0,
        timeout: float = 5.0,
    ) -> int:
        if self._key is None:
            raise TransportError("client is not connected")
        validate_filter(pattern)
        granted = self.hub._subscribe(self._key, pattern, min(qos, 1))
        if callback is not None:
            self._callbacks.append((pattern, callback))
        return granted

    def unsubscribe(self, pattern: str) -> None:
        if self._key is None:
            raise TransportError("client is not connected")
        self.hub._unsubscribe(self._key, pattern)
        self._callbacks = [(p, cb) for p, cb in self._callbacks if p != pattern]

    # -- delivery ---------------------------------------------------------

    def _deliver(self, topic: str, payload: bytes) -> None:
        from repro.mqtt.topics import topic_matches

        delivered = False
        for pattern, callback in self._callbacks:
            if topic_matches(pattern, topic):
                callback(topic, payload)
                delivered = True
        if not delivered and self.on_message is not None:
            self.on_message(topic, payload)
