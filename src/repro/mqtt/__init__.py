"""From-scratch MQTT 3.1.1 implementation.

DCDB transports every sensor reading over MQTT (paper section 3.1):
Pushers act as MQTT clients publishing one topic per sensor, and each
Collect Agent embeds a purpose-built broker that only implements the
publish path.  This package reproduces that stack in pure Python:

* :mod:`repro.mqtt.packets` -- wire-format codec for the MQTT 3.1.1
  control packets (CONNECT .. DISCONNECT), including the streaming
  decoder used on socket reads.
* :mod:`repro.mqtt.topics` -- topic-name validation and the
  subscription trie with ``+``/``#`` wildcard matching.
* :mod:`repro.mqtt.eventloop` -- the single-threaded selector event
  loop and non-blocking connection state machine shared by broker and
  client (O(1) transport threads, bounded write buffers).
* :mod:`repro.mqtt.broker` -- the event-loop TCP broker with
  server-side keepalive enforcement.  The general broker supports
  subscriptions; :class:`~repro.mqtt.broker.PublishOnlyBroker`
  mirrors the Collect Agent's stripped-down variant (paper section 4.2).
* :mod:`repro.mqtt.client` -- a blocking-API client on the event
  loop: QoS 0/1 publishing, subscriptions, keepalive timers, and
  automatic reconnection with session re-establishment.
* :mod:`repro.mqtt.inproc` -- an in-process hub with the same client
  API for simulations that must not pay socket overhead.
* :mod:`repro.mqtt.transport` -- the :class:`Transport` seam letting
  components pick TCP or in-proc endpoints by configuration.

See docs/transport.md for the event-loop architecture, keepalive and
backpressure semantics, and tuning knobs.
"""

from repro.mqtt.packets import (
    Connect,
    ConnAck,
    Publish,
    PubAck,
    Subscribe,
    SubAck,
    Unsubscribe,
    UnsubAck,
    PingReq,
    PingResp,
    Disconnect,
    encode_packet,
    decode_packet,
    StreamDecoder,
)
from repro.mqtt.topics import (
    validate_topic,
    validate_filter,
    topic_matches,
    SubscriptionTree,
)
from repro.mqtt.eventloop import Connection, EventLoop
from repro.mqtt.broker import MQTTBroker, PublishOnlyBroker
from repro.mqtt.client import MQTTClient
from repro.mqtt.inproc import InProcHub, InProcClient
from repro.mqtt.transport import (
    Transport,
    TCPTransport,
    InProcTransport,
    get_transport,
)

__all__ = [
    "Connect",
    "ConnAck",
    "Publish",
    "PubAck",
    "Subscribe",
    "SubAck",
    "Unsubscribe",
    "UnsubAck",
    "PingReq",
    "PingResp",
    "Disconnect",
    "encode_packet",
    "decode_packet",
    "StreamDecoder",
    "validate_topic",
    "validate_filter",
    "topic_matches",
    "SubscriptionTree",
    "EventLoop",
    "Connection",
    "MQTTBroker",
    "PublishOnlyBroker",
    "MQTTClient",
    "InProcHub",
    "InProcClient",
    "Transport",
    "TCPTransport",
    "InProcTransport",
    "get_transport",
]
