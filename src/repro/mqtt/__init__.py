"""From-scratch MQTT 3.1.1 implementation.

DCDB transports every sensor reading over MQTT (paper section 3.1):
Pushers act as MQTT clients publishing one topic per sensor, and each
Collect Agent embeds a purpose-built broker that only implements the
publish path.  This package reproduces that stack in pure Python:

* :mod:`repro.mqtt.packets` -- wire-format codec for the MQTT 3.1.1
  control packets (CONNECT .. DISCONNECT), including the streaming
  decoder used on socket reads.
* :mod:`repro.mqtt.topics` -- topic-name validation and the
  subscription trie with ``+``/``#`` wildcard matching.
* :mod:`repro.mqtt.broker` -- a threaded TCP broker.  The general
  broker supports subscriptions; :class:`~repro.mqtt.broker.PublishOnlyBroker`
  mirrors the Collect Agent's stripped-down variant (paper section 4.2).
* :mod:`repro.mqtt.client` -- a blocking client with a background
  receive loop, QoS 0/1 publishing, subscriptions and keepalive.
* :mod:`repro.mqtt.inproc` -- an in-process hub with the same client
  API for simulations that must not pay socket overhead.
"""

from repro.mqtt.packets import (
    Connect,
    ConnAck,
    Publish,
    PubAck,
    Subscribe,
    SubAck,
    Unsubscribe,
    UnsubAck,
    PingReq,
    PingResp,
    Disconnect,
    encode_packet,
    decode_packet,
    StreamDecoder,
)
from repro.mqtt.topics import (
    validate_topic,
    validate_filter,
    topic_matches,
    SubscriptionTree,
)
from repro.mqtt.broker import MQTTBroker, PublishOnlyBroker
from repro.mqtt.client import MQTTClient
from repro.mqtt.inproc import InProcHub, InProcClient

__all__ = [
    "Connect",
    "ConnAck",
    "Publish",
    "PubAck",
    "Subscribe",
    "SubAck",
    "Unsubscribe",
    "UnsubAck",
    "PingReq",
    "PingResp",
    "Disconnect",
    "encode_packet",
    "decode_packet",
    "StreamDecoder",
    "validate_topic",
    "validate_filter",
    "topic_matches",
    "SubscriptionTree",
    "MQTTBroker",
    "PublishOnlyBroker",
    "MQTTClient",
    "InProcHub",
    "InProcClient",
]
