"""Threaded TCP MQTT brokers.

Two variants are provided:

* :class:`MQTTBroker` — a general-purpose 3.1.1 broker with
  subscriptions, wildcard routing, retained messages and last-will
  delivery.  Useful for integration tests and as a drop-in hub when a
  deployment wants third-party MQTT consumers next to DCDB.

* :class:`PublishOnlyBroker` — the Collect Agent's stripped-down
  variant (paper section 4.2): it accepts CONNECT/PUBLISH/PINGREQ and
  rejects SUBSCRIBE, since the Storage Backend is the only consumer
  and is wired in-process through ``on_publish`` callbacks.  Skipping
  the topic-filtering machinery keeps the per-reading cost to a parse
  and a function call.

Threading model: one accept thread plus one reader thread per client
connection, mirroring the one-connection-per-Pusher layout of a real
Collect Agent.  Delivery to subscribers happens on the publisher's
reader thread; per-session send locks serialize socket writes.
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import Callable

from repro.common.errors import TransportError
from repro.mqtt import packets as pkt
from repro.mqtt.topics import SubscriptionTree, validate_topic
from repro.observability import MetricsRegistry, PipelineTracer

logger = logging.getLogger(__name__)

# Callback invoked for every accepted PUBLISH: (client_id, publish packet).
PublishHook = Callable[[str, pkt.Publish], None]


class _Session:
    """Per-connection state inside the broker."""

    __slots__ = ("sock", "addr", "client_id", "will", "send_lock", "alive")

    def __init__(self, sock: socket.socket, addr: tuple[str, int]) -> None:
        self.sock = sock
        self.addr = addr
        self.client_id: str | None = None
        self.will: pkt.Publish | None = None
        self.send_lock = threading.Lock()
        self.alive = True

    def send(self, data: bytes) -> None:
        with self.send_lock:
            self.sock.sendall(data)


class MQTTBroker:
    """A small threaded MQTT 3.1.1 broker.

    Usage::

        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        ... clients connect to broker.port ...
        broker.stop()

    ``authenticator`` (if given) is called with (client_id, username,
    password) and must return True to accept the connection.
    """

    #: Whether SUBSCRIBE packets are honoured.
    allow_subscribe = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 1883,
        authenticator: Callable[[str, str | None, bytes | None], bool] | None = None,
        metrics: MetricsRegistry | None = None,
        trace_sample_every: int = 1,
        fault_injector=None,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._authenticator = authenticator
        # Optional chaos hook (repro.faults.BrokerFaultInjector or any
        # object with on_data(client_id, bytes) -> None | "drop" |
        # "disconnect"), consulted once per recv chunk on each reader
        # thread.  None in production: the check is one attribute load.
        self._fault_injector = fault_injector
        self._server_sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._sessions: dict[int, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._subs = SubscriptionTree()
        self._subs_lock = threading.Lock()
        self._retained: dict[str, pkt.Publish] = {}
        self._hooks: list[PublishHook] = []
        self._running = False
        # Registry-backed counters: session reader threads increment
        # concurrently, so these must not be bare attributes.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._messages_received = self.metrics.counter(
            "dcdb_broker_messages_received_total", "PUBLISH packets accepted"
        )
        self._messages_delivered = self.metrics.counter(
            "dcdb_broker_messages_delivered_total", "PUBLISH packets routed to subscribers"
        )
        self._bytes_received = self.metrics.counter(
            "dcdb_broker_bytes_received_total", "Raw bytes read from client sockets"
        )
        self.metrics.gauge(
            "dcdb_broker_connected_clients", "Currently connected MQTT sessions"
        ).set_function(lambda: self.connected_clients)
        self.tracer = PipelineTracer(self.metrics, sample_every=trace_sample_every)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Bind, listen and start the accept loop."""
        if self._running:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(128)
        self._server_sock = sock
        self.port = sock.getsockname()[1]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="mqtt-broker-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Close the listener and all client connections."""
        if not self._running:
            return
        self._running = False
        if self._server_sock is not None:
            try:
                self._server_sock.close()
            except OSError:
                pass
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            try:
                session.sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "MQTTBroker":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- hooks --------------------------------------------------------

    def add_publish_hook(self, hook: PublishHook) -> None:
        """Register a callback invoked for every accepted PUBLISH.

        This is how the Collect Agent attaches its storage writer.
        """
        self._hooks.append(hook)

    def set_fault_injector(self, injector) -> None:
        """Attach (or with None, remove) a socket-level fault injector."""
        self._fault_injector = injector

    @property
    def connected_clients(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # Backward-compatible counter views over the registry.

    @property
    def messages_received(self) -> int:
        return int(self._messages_received.value)

    @property
    def messages_delivered(self) -> int:
        return int(self._messages_delivered.value)

    @property
    def bytes_received(self) -> int:
        return int(self._bytes_received.value)

    # -- internals ------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server_sock is not None
        while self._running:
            try:
                conn, addr = self._server_sock.accept()
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = _Session(conn, addr)
            with self._sessions_lock:
                self._sessions[id(session)] = session
            threading.Thread(
                target=self._client_loop,
                args=(session,),
                name=f"mqtt-broker-client-{addr[1]}",
                daemon=True,
            ).start()

    def _client_loop(self, session: _Session) -> None:
        decoder = pkt.StreamDecoder()
        connected = False
        try:
            while self._running:
                try:
                    data = session.sock.recv(65536)
                except TimeoutError:
                    # Keepalive expired without traffic: the client is
                    # gone; drop it (its will fires in _drop_session).
                    logger.info(
                        "client %s exceeded keepalive, disconnecting",
                        session.client_id,
                    )
                    break
                except OSError:
                    break
                if not data:
                    break
                injector = self._fault_injector
                if injector is not None:
                    action = injector.on_data(session.client_id, data)
                    if action == "drop":
                        # The chunk vanishes before the decoder sees it
                        # — as if the network ate the datagram.  QoS-1
                        # publishers notice the missing PUBACK and
                        # re-publish, which is the loss-recovery path
                        # the chaos suite exercises.
                        continue
                    if action == "disconnect":
                        # Mid-stream cut: close without DISCONNECT so
                        # the session's last-will (if any) fires, like
                        # a crashed client or a severed link.
                        break
                self._bytes_received.inc(len(data))
                for packet in decoder.feed(data):
                    if not connected:
                        if not isinstance(packet, pkt.Connect):
                            raise TransportError("first packet must be CONNECT")
                        connected = self._handle_connect(session, packet)
                        if not connected:
                            return
                        continue
                    if isinstance(packet, pkt.Publish):
                        self._handle_publish(session, packet)
                    elif isinstance(packet, pkt.Subscribe):
                        self._handle_subscribe(session, packet)
                    elif isinstance(packet, pkt.Unsubscribe):
                        self._handle_unsubscribe(session, packet)
                    elif isinstance(packet, pkt.PingReq):
                        session.send(pkt.PingResp().encode())
                    elif isinstance(packet, pkt.Disconnect):
                        session.will = None  # clean close: will discarded
                        return
                    else:
                        raise TransportError(
                            f"unexpected packet {type(packet).__name__} from client"
                        )
        except TransportError as exc:
            logger.warning("protocol error from %s: %s", session.addr, exc)
        except OSError:
            pass
        finally:
            self._drop_session(session)

    def _handle_connect(self, session: _Session, packet: pkt.Connect) -> bool:
        if self._authenticator is not None and not self._authenticator(
            packet.client_id, packet.username, packet.password
        ):
            session.send(
                pkt.ConnAck(return_code=pkt.CONNACK_REFUSED_BAD_CREDENTIALS).encode()
            )
            return False
        session.client_id = packet.client_id
        # MQTT 3.1.1 [3.1.2.10]: the server may disconnect a client
        # silent for 1.5x its keepalive.  Enforced via a socket read
        # timeout; PINGREQs reset it naturally.
        if packet.keepalive > 0:
            session.sock.settimeout(packet.keepalive * 1.5)
        if packet.will_topic is not None:
            session.will = pkt.Publish(
                topic=packet.will_topic,
                payload=packet.will_payload,
                qos=min(packet.will_qos, 1),
                retain=packet.will_retain,
                packet_id=1 if packet.will_qos else None,
            )
        session.send(pkt.ConnAck(session_present=False).encode())
        return True

    def _handle_publish(self, session: _Session, packet: pkt.Publish) -> None:
        validate_topic(packet.topic)
        self._messages_received.inc()
        if not packet.topic.startswith("$") and self.tracer.should_sample():
            self.tracer.stamp_payload("dispatch", packet.payload)
        if packet.retain:
            if packet.payload:
                self._retained[packet.topic] = packet
            else:
                self._retained.pop(packet.topic, None)
        for hook in self._hooks:
            hook(session.client_id or "", packet)
        # Ack after the hooks: a QoS 1 PUBACK means the reading was
        # handed to storage, not merely parsed.
        if packet.qos == 1:
            session.send(pkt.PubAck(packet_id=packet.packet_id).encode())
        self._route(packet)

    def _route(self, packet: pkt.Publish) -> None:
        with self._subs_lock:
            targets = self._subs.match(packet.topic)
        if not targets:
            return
        for sub_key, granted_qos in targets.items():
            with self._sessions_lock:
                target = self._sessions.get(sub_key)
            if target is None or not target.alive:
                continue
            out_qos = min(packet.qos, granted_qos)
            out = pkt.Publish(
                topic=packet.topic,
                payload=packet.payload,
                qos=out_qos,
                retain=False,
                packet_id=packet.packet_id if out_qos else None,
            )
            try:
                target.send(out.encode())
                self._messages_delivered.inc()
            except OSError:
                target.alive = False

    def _handle_subscribe(self, session: _Session, packet: pkt.Subscribe) -> None:
        codes: list[int] = []
        for topic, qos in packet.topics:
            if not self.allow_subscribe:
                codes.append(pkt.SUBACK_FAILURE)
                continue
            try:
                with self._subs_lock:
                    self._subs.subscribe(topic, id(session), min(qos, 1))
                codes.append(min(qos, 1))
            except TransportError:
                codes.append(pkt.SUBACK_FAILURE)
        session.send(pkt.SubAck(packet_id=packet.packet_id, return_codes=tuple(codes)).encode())
        if not self.allow_subscribe:
            return
        # Deliver retained messages matching the new filters.
        for topic, qos in packet.topics:
            for rtopic, retained in list(self._retained.items()):
                from repro.mqtt.topics import topic_matches

                if topic_matches(topic, rtopic):
                    out = pkt.Publish(
                        topic=retained.topic,
                        payload=retained.payload,
                        qos=0,
                        retain=True,
                    )
                    try:
                        session.send(out.encode())
                    except OSError:
                        pass

    def _handle_unsubscribe(self, session: _Session, packet: pkt.Unsubscribe) -> None:
        with self._subs_lock:
            for topic in packet.topics:
                self._subs.unsubscribe(topic, id(session))
        session.send(pkt.UnsubAck(packet_id=packet.packet_id).encode())

    def _drop_session(self, session: _Session) -> None:
        with self._sessions_lock:
            self._sessions.pop(id(session), None)
        with self._subs_lock:
            self._subs.remove_subscriber(id(session))
        try:
            session.sock.close()
        except OSError:
            pass
        # Abnormal disconnect with a registered will: publish it.
        if session.will is not None:
            will = session.will
            session.will = None
            for hook in self._hooks:
                hook(session.client_id or "", will)
            self._route(will)


class PublishOnlyBroker(MQTTBroker):
    """The Collect Agent's minimal broker.

    Only the publish interface of the MQTT standard is supported
    (paper section 4.2): SUBSCRIBE requests are answered with a failure
    return code for every filter, so well-behaved clients learn that
    this endpoint is ingest-only.  All readings reach consumers through
    :meth:`MQTTBroker.add_publish_hook`.
    """

    allow_subscribe = False
