"""Event-loop TCP MQTT brokers.

Two variants are provided:

* :class:`MQTTBroker` — a general-purpose 3.1.1 broker with
  subscriptions, wildcard routing, retained messages and last-will
  delivery.  Useful for integration tests and as a drop-in hub when a
  deployment wants third-party MQTT consumers next to DCDB.

* :class:`PublishOnlyBroker` — the Collect Agent's stripped-down
  variant (paper section 4.2): it accepts CONNECT/PUBLISH/PINGREQ and
  rejects SUBSCRIBE, since the Storage Backend is the only consumer
  and is wired in-process through ``on_publish`` callbacks.  Skipping
  the topic-filtering machinery keeps the per-reading cost to a parse
  and a function call.

Concurrency model: ONE :class:`~repro.mqtt.eventloop.EventLoop`
thread runs the listener and every client session — O(1) transport
threads regardless of connection count, where the previous revision
spawned a reader thread per client (plus the client-side ping
threads) and topped out on context-switch churn long before the
hardware did.  Delivery to subscribers goes through per-session
bounded write buffers; a slow consumer either loses messages or the
connection (``overflow_policy``) instead of wedging the publisher.

The broker also enforces the MQTT 3.1.1 keepalive contract [3.1.2.10]
server-side: a session silent for more than 1.5x its negotiated
keepalive is disconnected and its last-will fires, so crashed Pushers
are detected without waiting for TCP timeouts.
"""

from __future__ import annotations

import logging
import selectors
import socket
import threading
import time
from typing import Callable

from repro.common.errors import TransportError
from repro.common.timeutil import now_ns
from repro.core import payload as payload_mod
from repro.mqtt import packets as pkt
from repro.mqtt.eventloop import Connection, EventLoop
from repro.mqtt.topics import SubscriptionTree, topic_matches, validate_topic
from repro.observability import (
    EventLoopLagProbe,
    MetricsRegistry,
    PipelineTracer,
    SpanRecorder,
)
from repro.observability.spans import default_recorder

logger = logging.getLogger(__name__)

# Callback invoked for every accepted PUBLISH: (client_id, publish packet).
PublishHook = Callable[[str, pkt.Publish], None]

#: How often the keepalive sweep runs.  Bounded below the smallest
#: useful grace period (keepalive=1 -> 1.5 s) so expiry lands close to
#: the contractual deadline.
KEEPALIVE_TICK_S = 0.25


class _Session:
    """Per-connection state inside the broker."""

    __slots__ = ("conn", "addr", "client_id", "will", "keepalive", "connected")

    def __init__(self, conn: Connection, addr: tuple[str, int]) -> None:
        self.conn = conn
        self.addr = addr
        self.client_id: str | None = None
        self.will: pkt.Publish | None = None
        self.keepalive = 0
        self.connected = False  # CONNECT/CONNACK handshake completed

    def send(self, data: bytes) -> bool:
        return self.conn.write(data)


class MQTTBroker:
    """A small event-loop MQTT 3.1.1 broker.

    Usage::

        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        ... clients connect to broker.port ...
        broker.stop()

    ``authenticator`` (if given) is called with (client_id, username,
    password) and must return True to accept the connection.

    ``max_write_buffer`` bounds each session's outgoing buffer;
    ``overflow_policy`` picks what happens to a slow consumer whose
    buffer fills: ``"disconnect"`` (default) severs it, ``"drop"``
    discards the overflowing message and keeps the session.
    """

    #: Whether SUBSCRIBE packets are honoured.
    allow_subscribe = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 1883,
        authenticator: Callable[[str, str | None, bytes | None], bool] | None = None,
        metrics: MetricsRegistry | None = None,
        trace_sample_every: int = 1,
        fault_injector=None,
        max_write_buffer: int = 1 << 20,
        overflow_policy: str = "disconnect",
        spans: SpanRecorder | None = None,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._authenticator = authenticator
        # Optional chaos hook (repro.faults.BrokerFaultInjector or any
        # object with on_data(client_id, bytes) -> None | "drop" |
        # "disconnect" | "stall" | ("stall", seconds)), consulted once
        # per recv chunk on the event loop.  None in production: the
        # check is one attribute load per chunk.
        self._fault_injector = fault_injector
        self.max_write_buffer = max_write_buffer
        self.overflow_policy = overflow_policy
        self._server_sock: socket.socket | None = None
        self._loop: EventLoop | None = None
        self._keepalive_timer = None
        self._sessions: dict[int, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._subs = SubscriptionTree()
        self._subs_lock = threading.Lock()
        self._retained: dict[str, pkt.Publish] = {}
        self._hooks: list[PublishHook] = []
        self._running = False
        self._stopping = False
        # Registry-backed counters: publishers on the loop thread race
        # metric scrapes, so these must not be bare attributes.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._messages_received = self.metrics.counter(
            "dcdb_broker_messages_received_total", "PUBLISH packets accepted"
        )
        self._messages_delivered = self.metrics.counter(
            "dcdb_broker_messages_delivered_total", "PUBLISH packets routed to subscribers"
        )
        self._bytes_received = self.metrics.counter(
            "dcdb_broker_bytes_received_total", "Raw bytes read from client sockets"
        )
        self._keepalive_disconnects = self.metrics.counter(
            "dcdb_broker_keepalive_disconnects_total",
            "Sessions disconnected for exceeding 1.5x their keepalive",
        )
        self._write_overflows = self.metrics.counter(
            "dcdb_broker_write_overflow_total",
            "Messages hitting a full per-session write buffer",
        )
        self.metrics.gauge(
            "dcdb_broker_connected_clients", "Currently connected MQTT sessions"
        ).set_function(lambda: self.connected_clients)
        self.metrics.gauge(
            "dcdb_broker_connections", "Open transport connections (pre- and post-CONNECT)"
        ).set_function(lambda: self.connected_clients)
        self.metrics.gauge(
            "dcdb_broker_write_buffer_bytes",
            "Bytes queued in per-session outgoing write buffers",
        ).set_function(self._write_buffer_bytes)
        self.tracer = PipelineTracer(self.metrics, sample_every=trace_sample_every)
        self.spans = spans if spans is not None else default_recorder()
        self._lag_probe: EventLoopLagProbe | None = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Bind, listen and start the event loop."""
        if self._running:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(512)
        sock.setblocking(False)
        self._server_sock = sock
        self.port = sock.getsockname()[1]
        self._stopping = False
        self._running = True
        loop = EventLoop(name=f"mqtt-broker-{self.port}")
        self._loop = loop
        loop.start()
        self._lag_probe = EventLoopLagProbe(
            loop, self.metrics, name=f"broker-{self.port}"
        )
        self._lag_probe.start()
        loop.call_soon(self._install_listener)

    def _install_listener(self) -> None:
        loop, sock = self._loop, self._server_sock
        if loop is None or sock is None or not self._running:
            return
        try:
            loop._selector.register(sock, selectors.EVENT_READ, self._on_accept)
        except (ValueError, KeyError, OSError):
            pass
        self._keepalive_timer = loop.call_later(KEEPALIVE_TICK_S, self._keepalive_tick)

    def stop(self) -> None:
        """Close the listener and all client connections.

        Idempotent and silent: sessions are torn down from the loop
        thread with their last-wills suppressed (a broker shutting
        down is not a client crash), so no spurious will deliveries
        and no bad-file-descriptor noise from half-closed sockets.
        """
        if not self._running:
            return
        self._running = False
        self._stopping = True
        if self._lag_probe is not None:
            self._lag_probe.stop()
            self._lag_probe = None
        loop = self._loop
        if loop is not None and loop.running:
            done = threading.Event()

            def _teardown() -> None:
                try:
                    if self._keepalive_timer is not None:
                        self._keepalive_timer.cancel()
                        self._keepalive_timer = None
                    sock = self._server_sock
                    if sock is not None:
                        try:
                            loop._selector.unregister(sock)
                        except (ValueError, KeyError, OSError):
                            pass
                    with self._sessions_lock:
                        sessions = list(self._sessions.values())
                    for session in sessions:
                        session.will = None  # shutdown suppresses wills
                        session.conn.close()
                finally:
                    done.set()

            loop.call_soon(_teardown)
            done.wait(timeout=2.0)
            loop.stop(join=True)
        self._loop = None
        if self._server_sock is not None:
            try:
                self._server_sock.close()
            except OSError:
                pass
            self._server_sock = None
        # Belt and braces: anything the loop did not get to.
        with self._sessions_lock:
            leftovers = list(self._sessions.values())
            self._sessions.clear()
        for session in leftovers:
            session.will = None
            try:
                session.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "MQTTBroker":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- hooks --------------------------------------------------------

    def add_publish_hook(self, hook: PublishHook) -> None:
        """Register a callback invoked for every accepted PUBLISH.

        This is how the Collect Agent attaches its storage writer.
        """
        self._hooks.append(hook)

    def set_fault_injector(self, injector) -> None:
        """Attach (or with None, remove) a socket-level fault injector."""
        self._fault_injector = injector
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            self._wire_filter(session)

    @property
    def connected_clients(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    @property
    def transport_threads(self) -> int:
        """Threads serving transport I/O — 1 (the loop), however many
        clients are connected."""
        return 1 if self._loop is not None and self._loop.running else 0

    # Backward-compatible counter views over the registry.

    @property
    def messages_received(self) -> int:
        return int(self._messages_received.value)

    @property
    def messages_delivered(self) -> int:
        return int(self._messages_delivered.value)

    @property
    def bytes_received(self) -> int:
        return int(self._bytes_received.value)

    @property
    def keepalive_disconnects(self) -> int:
        return int(self._keepalive_disconnects.value)

    def _write_buffer_bytes(self) -> int:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        return sum(s.conn.outbuf_len for s in sessions)

    # -- event-loop handlers ----------------------------------------------

    def _on_accept(self, mask: int) -> None:
        sock = self._server_sock
        loop = self._loop
        if sock is None or loop is None or not self._running:
            return
        while True:
            try:
                client_sock, addr = sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            client_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = Connection(
                loop,
                client_sock,
                on_packet=self._on_packet,
                on_close=self._on_conn_close,
                on_bytes=self._on_bytes,
                on_error=self._on_protocol_error,
                on_overflow=self._on_overflow,
                max_write_buffer=self.max_write_buffer,
                overflow_policy=self.overflow_policy,
                label=f"broker-session-{addr[1]}",
            )
            session = _Session(conn, addr)
            conn.owner = session  # type: ignore[attr-defined]
            self._wire_filter(session)
            with self._sessions_lock:
                self._sessions[id(session)] = session
            conn.attach()

    def _wire_filter(self, session: _Session) -> None:
        injector = self._fault_injector
        if injector is None:
            session.conn.data_filter = None
        else:
            # client_id is read at call time: injectors keyed on the id
            # see None before CONNECT, exactly as the per-chunk hook in
            # the threaded revision did.
            session.conn.data_filter = lambda conn, data: injector.on_data(
                session.client_id, data
            )

    def _on_bytes(self, conn: Connection, n: int) -> None:
        self._bytes_received.inc(n)

    def _on_overflow(self, conn: Connection) -> None:
        self._write_overflows.inc()
        session = getattr(conn, "owner", None)
        if session is not None:
            logger.warning(
                "write buffer full for client %s (%d bytes queued, policy=%s)",
                session.client_id,
                conn.outbuf_len,
                self.overflow_policy,
            )

    def _on_protocol_error(self, conn: Connection, exc: Exception) -> None:
        session = getattr(conn, "owner", None)
        if not self._stopping:
            addr = session.addr if session is not None else "?"
            logger.warning("protocol error from %s: %s", addr, exc)

    def _on_packet(self, conn: Connection, packet: pkt.Packet) -> None:
        session: _Session = conn.owner  # type: ignore[attr-defined]
        if not session.connected:
            if not isinstance(packet, pkt.Connect):
                raise TransportError("first packet must be CONNECT")
            self._handle_connect(session, packet)
            return
        if isinstance(packet, pkt.Publish):
            self._handle_publish(session, packet)
        elif isinstance(packet, pkt.Subscribe):
            self._handle_subscribe(session, packet)
        elif isinstance(packet, pkt.Unsubscribe):
            self._handle_unsubscribe(session, packet)
        elif isinstance(packet, pkt.PingReq):
            session.send(pkt.PingResp().encode())
        elif isinstance(packet, pkt.Disconnect):
            session.will = None  # clean close: will discarded
            conn.close()
        else:
            raise TransportError(
                f"unexpected packet {type(packet).__name__} from client"
            )

    def _keepalive_tick(self) -> None:
        loop = self._loop
        if loop is None or not self._running:
            return
        now = time.monotonic()
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            if session.keepalive <= 0 or session.conn.closed:
                continue
            # MQTT 3.1.1 [3.1.2.10]: the server may disconnect a
            # client silent for 1.5x its keepalive.  PINGREQs (or any
            # traffic) reset last_rx naturally.
            if now - session.conn.last_rx > session.keepalive * 1.5:
                logger.info(
                    "client %s exceeded keepalive, disconnecting",
                    session.client_id,
                )
                self._keepalive_disconnects.inc()
                session.conn.close()  # abnormal close: the will fires
        self._keepalive_timer = loop.call_later(KEEPALIVE_TICK_S, self._keepalive_tick)

    # -- packet handlers --------------------------------------------------

    def _handle_connect(self, session: _Session, packet: pkt.Connect) -> None:
        if self._authenticator is not None and not self._authenticator(
            packet.client_id, packet.username, packet.password
        ):
            session.send(
                pkt.ConnAck(return_code=pkt.CONNACK_REFUSED_BAD_CREDENTIALS).encode()
            )
            session.conn.close()  # no will: none registered yet
            return
        session.client_id = packet.client_id
        session.keepalive = packet.keepalive
        if packet.will_topic is not None:
            session.will = pkt.Publish(
                topic=packet.will_topic,
                payload=packet.will_payload,
                qos=min(packet.will_qos, 1),
                retain=packet.will_retain,
                packet_id=1 if packet.will_qos else None,
            )
        session.connected = True
        session.send(pkt.ConnAck(session_present=False).encode())

    def _handle_publish(self, session: _Session, packet: pkt.Publish) -> None:
        validate_topic(packet.topic)
        self._messages_received.inc()
        trace_id = None
        if not packet.topic.startswith("$"):
            trace_id = payload_mod.trace_id_of(packet.payload)
            if trace_id is not None:
                # Wire-traced message: the sampling decision was made at
                # the pusher; stamp with the exemplar unconditionally.
                self.tracer.stamp_payload("dispatch", packet.payload, trace_id=trace_id)
            elif self.tracer.should_sample():
                self.tracer.stamp_payload("dispatch", packet.payload)
        start_ns = now_ns() if trace_id is not None else 0
        if packet.retain:
            if packet.payload:
                self._retained[packet.topic] = packet
            else:
                self._retained.pop(packet.topic, None)
        for hook in self._hooks:
            hook(session.client_id or "", packet)
        # Ack after the hooks: a QoS 1 PUBACK means the reading was
        # handed to storage, not merely parsed.
        if packet.qos == 1:
            session.send(pkt.PubAck(packet_id=packet.packet_id).encode())
        self._route(packet)
        if trace_id is not None:
            self.spans.record(
                trace_id,
                "dispatch",
                "broker",
                start_ns,
                now_ns(),
                topic=packet.topic,
                qos=packet.qos,
                client=session.client_id or "",
            )

    def _route(self, packet: pkt.Publish) -> None:
        with self._subs_lock:
            targets = self._subs.match(packet.topic)
        if not targets:
            return
        for sub_key, granted_qos in targets.items():
            with self._sessions_lock:
                target = self._sessions.get(sub_key)
            if target is None or target.conn.closed:
                continue
            out_qos = min(packet.qos, granted_qos)
            out = pkt.Publish(
                topic=packet.topic,
                payload=packet.payload,
                qos=out_qos,
                retain=False,
                packet_id=packet.packet_id if out_qos else None,
            )
            if target.send(out.encode()):
                self._messages_delivered.inc()

    def _handle_subscribe(self, session: _Session, packet: pkt.Subscribe) -> None:
        codes: list[int] = []
        for topic, qos in packet.topics:
            if not self.allow_subscribe:
                codes.append(pkt.SUBACK_FAILURE)
                continue
            try:
                with self._subs_lock:
                    self._subs.subscribe(topic, id(session), min(qos, 1))
                codes.append(min(qos, 1))
            except TransportError:
                codes.append(pkt.SUBACK_FAILURE)
        session.send(
            pkt.SubAck(packet_id=packet.packet_id, return_codes=tuple(codes)).encode()
        )
        if not self.allow_subscribe:
            return
        # Deliver retained messages matching the new filters.
        for topic, qos in packet.topics:
            for rtopic, retained in list(self._retained.items()):
                if topic_matches(topic, rtopic):
                    out = pkt.Publish(
                        topic=retained.topic,
                        payload=retained.payload,
                        qos=0,
                        retain=True,
                    )
                    session.send(out.encode())

    def _handle_unsubscribe(self, session: _Session, packet: pkt.Unsubscribe) -> None:
        with self._subs_lock:
            for topic in packet.topics:
                self._subs.unsubscribe(topic, id(session))
        session.send(pkt.UnsubAck(packet_id=packet.packet_id).encode())

    def _on_conn_close(self, conn: Connection) -> None:
        session = getattr(conn, "owner", None)
        if session is None:
            return
        with self._sessions_lock:
            self._sessions.pop(id(session), None)
        with self._subs_lock:
            self._subs.remove_subscriber(id(session))
        # Abnormal disconnect with a registered will: publish it.
        # Shutdown clears wills first, so a stopping broker never
        # fabricates client deaths.
        if session.will is not None and not self._stopping:
            will = session.will
            session.will = None
            for hook in self._hooks:
                hook(session.client_id or "", will)
            self._route(will)


class PublishOnlyBroker(MQTTBroker):
    """The Collect Agent's minimal broker.

    Only the publish interface of the MQTT standard is supported
    (paper section 4.2): SUBSCRIBE requests are answered with a failure
    return code for every filter, so well-behaved clients learn that
    this endpoint is ingest-only.  All readings reach consumers through
    :meth:`MQTTBroker.add_publish_hook`.
    """

    allow_subscribe = False
