"""MQTT 3.1.1 control-packet codec.

Implements the wire format from the OASIS MQTT 3.1.1 specification for
the packets DCDB needs: CONNECT/CONNACK for session setup, PUBLISH and
PUBACK (QoS 0 and 1) for sensor readings, SUBSCRIBE/SUBACK and
UNSUBSCRIBE/UNSUBACK for consumers, PINGREQ/PINGRESP keepalives and
DISCONNECT.  QoS 2 is deliberately unsupported, matching DCDB's use of
the protocol (telemetry tolerates at-least-once delivery; the exactly-
once handshake would double the per-reading round trips).

Every packet is a frozen dataclass with ``encode()`` producing the full
wire bytes (fixed header included).  :func:`decode_packet` parses one
complete packet from a buffer; :class:`StreamDecoder` incrementally
parses a TCP byte stream, which is how the broker and client consume
sockets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.common.errors import TransportError

# Packet type numbers (MQTT 3.1.1 table 2.1).
CONNECT = 1
CONNACK = 2
PUBLISH = 3
PUBACK = 4
SUBSCRIBE = 8
SUBACK = 9
UNSUBSCRIBE = 10
UNSUBACK = 11
PINGREQ = 12
PINGRESP = 13
DISCONNECT = 14

# CONNACK return codes.
CONNACK_ACCEPTED = 0
CONNACK_REFUSED_PROTOCOL = 1
CONNACK_REFUSED_IDENTIFIER = 2
CONNACK_REFUSED_UNAVAILABLE = 3
CONNACK_REFUSED_BAD_CREDENTIALS = 4
CONNACK_REFUSED_NOT_AUTHORIZED = 5

SUBACK_FAILURE = 0x80

_MAX_REMAINING_LENGTH = 268_435_455  # 4 varint bytes


def encode_remaining_length(length: int) -> bytes:
    """Encode the MQTT variable-length 'remaining length' field."""
    if not 0 <= length <= _MAX_REMAINING_LENGTH:
        raise TransportError(f"remaining length {length} out of range")
    out = bytearray()
    while True:
        digit = length % 128
        length //= 128
        if length > 0:
            out.append(digit | 0x80)
        else:
            out.append(digit)
            return bytes(out)


def decode_remaining_length(buf: bytes, offset: int) -> tuple[int, int]:
    """Decode a remaining-length varint starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`IndexError` if the
    buffer is too short (the stream decoder catches this to wait for
    more bytes) and :class:`TransportError` on a malformed encoding.
    """
    multiplier = 1
    value = 0
    for i in range(4):
        byte = buf[offset + i]
        value += (byte & 0x7F) * multiplier
        if not byte & 0x80:
            return value, offset + i + 1
        multiplier *= 128
    raise TransportError("malformed remaining length (more than 4 bytes)")


def _encode_string(s: str) -> bytes:
    data = s.encode("utf-8")
    if len(data) > 0xFFFF:
        raise TransportError("MQTT string exceeds 65535 bytes")
    return struct.pack("!H", len(data)) + data


def _decode_string(buf: bytes, offset: int) -> tuple[str, int]:
    if offset + 2 > len(buf):
        raise TransportError("truncated MQTT string length")
    (length,) = struct.unpack_from("!H", buf, offset)
    end = offset + 2 + length
    if end > len(buf):
        raise TransportError("truncated MQTT string body")
    return buf[offset + 2 : end].decode("utf-8"), end


def _fixed_header(ptype: int, flags: int, remaining: int) -> bytes:
    return bytes([(ptype << 4) | (flags & 0x0F)]) + encode_remaining_length(remaining)


@dataclass(frozen=True, slots=True)
class Connect:
    """CONNECT — client session request.

    ``keepalive`` is in seconds; 0 disables the server-side timeout.
    Will messages are supported because DCDB Pushers can register a
    'last will' so the Collect Agent notices dead collectors.
    """

    client_id: str
    keepalive: int = 60
    clean_session: bool = True
    username: str | None = None
    password: bytes | None = None
    will_topic: str | None = None
    will_payload: bytes = b""
    will_qos: int = 0
    will_retain: bool = False

    def encode(self) -> bytes:
        flags = 0
        if self.clean_session:
            flags |= 0x02
        payload = _encode_string(self.client_id)
        if self.will_topic is not None:
            flags |= 0x04 | (self.will_qos << 3)
            if self.will_retain:
                flags |= 0x20
            payload += _encode_string(self.will_topic)
            payload += struct.pack("!H", len(self.will_payload)) + self.will_payload
        if self.username is not None:
            flags |= 0x80
            payload += _encode_string(self.username)
        if self.password is not None:
            if self.username is None:
                raise TransportError("password without username is invalid in MQTT 3.1.1")
            flags |= 0x40
            payload += struct.pack("!H", len(self.password)) + self.password
        var = _encode_string("MQTT") + bytes([4, flags]) + struct.pack("!H", self.keepalive)
        body = var + payload
        return _fixed_header(CONNECT, 0, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "Connect":
        name, off = _decode_string(body, 0)
        if name not in ("MQTT", "MQIsdp"):
            raise TransportError(f"unknown protocol name {name!r}")
        if off + 4 > len(body):
            raise TransportError("truncated CONNECT variable header")
        level = body[off]
        cflags = body[off + 1]
        if level != 4 and name == "MQTT":
            raise TransportError(f"unsupported protocol level {level}")
        if cflags & 0x01:
            raise TransportError("CONNECT reserved flag must be zero")
        (keepalive,) = struct.unpack_from("!H", body, off + 2)
        off += 4
        client_id, off = _decode_string(body, off)
        will_topic = None
        will_payload = b""
        will_qos = 0
        will_retain = False
        if cflags & 0x04:
            will_topic, off = _decode_string(body, off)
            (wlen,) = struct.unpack_from("!H", body, off)
            will_payload = body[off + 2 : off + 2 + wlen]
            off += 2 + wlen
            will_qos = (cflags >> 3) & 0x03
            will_retain = bool(cflags & 0x20)
        username = None
        password = None
        if cflags & 0x80:
            username, off = _decode_string(body, off)
        if cflags & 0x40:
            (plen,) = struct.unpack_from("!H", body, off)
            password = body[off + 2 : off + 2 + plen]
            off += 2 + plen
        return cls(
            client_id=client_id,
            keepalive=keepalive,
            clean_session=bool(cflags & 0x02),
            username=username,
            password=password,
            will_topic=will_topic,
            will_payload=will_payload,
            will_qos=will_qos,
            will_retain=will_retain,
        )


@dataclass(frozen=True, slots=True)
class ConnAck:
    """CONNACK — broker response to CONNECT."""

    session_present: bool = False
    return_code: int = CONNACK_ACCEPTED

    def encode(self) -> bytes:
        body = bytes([1 if self.session_present else 0, self.return_code])
        return _fixed_header(CONNACK, 0, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "ConnAck":
        if len(body) != 2:
            raise TransportError("CONNACK body must be 2 bytes")
        return cls(session_present=bool(body[0] & 0x01), return_code=body[1])


@dataclass(frozen=True, slots=True)
class Publish:
    """PUBLISH — one message on one topic.

    In DCDB the topic identifies a sensor and the payload carries one
    or more (timestamp, value) readings (see
    :mod:`repro.core.collectagent.payload` for the framing).
    """

    topic: str
    payload: bytes = b""
    qos: int = 0
    retain: bool = False
    dup: bool = False
    packet_id: int | None = None

    def __post_init__(self) -> None:
        if self.qos not in (0, 1):
            raise TransportError(f"unsupported QoS {self.qos} (only 0 and 1)")
        if self.qos > 0 and self.packet_id is None:
            raise TransportError("QoS>0 PUBLISH requires a packet id")

    def encode(self) -> bytes:
        flags = (self.qos << 1) | (0x08 if self.dup else 0) | (0x01 if self.retain else 0)
        var = _encode_string(self.topic)
        if self.qos > 0:
            var += struct.pack("!H", self.packet_id)
        body = var + self.payload
        return _fixed_header(PUBLISH, flags, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "Publish":
        qos = (flags >> 1) & 0x03
        if qos == 3:
            raise TransportError("PUBLISH with invalid QoS 3")
        topic, off = _decode_string(body, 0)
        packet_id = None
        if qos > 0:
            if off + 2 > len(body):
                raise TransportError("truncated PUBLISH packet id")
            (packet_id,) = struct.unpack_from("!H", body, off)
            off += 2
        return cls(
            topic=topic,
            payload=body[off:],
            qos=qos,
            retain=bool(flags & 0x01),
            dup=bool(flags & 0x08),
            packet_id=packet_id,
        )


@dataclass(frozen=True, slots=True)
class PubAck:
    """PUBACK — QoS 1 acknowledgement."""

    packet_id: int

    def encode(self) -> bytes:
        body = struct.pack("!H", self.packet_id)
        return _fixed_header(PUBACK, 0, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "PubAck":
        if len(body) != 2:
            raise TransportError("PUBACK body must be 2 bytes")
        return cls(packet_id=struct.unpack("!H", body)[0])


@dataclass(frozen=True, slots=True)
class Subscribe:
    """SUBSCRIBE — request delivery for a list of topic filters."""

    packet_id: int
    topics: tuple[tuple[str, int], ...] = field(default_factory=tuple)

    def encode(self) -> bytes:
        if not self.topics:
            raise TransportError("SUBSCRIBE requires at least one topic filter")
        body = struct.pack("!H", self.packet_id)
        for topic, qos in self.topics:
            if qos not in (0, 1):
                raise TransportError(f"unsupported requested QoS {qos}")
            body += _encode_string(topic) + bytes([qos])
        return _fixed_header(SUBSCRIBE, 0x02, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "Subscribe":
        if flags != 0x02:
            raise TransportError("SUBSCRIBE fixed-header flags must be 0b0010")
        (packet_id,) = struct.unpack_from("!H", body, 0)
        off = 2
        topics: list[tuple[str, int]] = []
        while off < len(body):
            topic, off = _decode_string(body, off)
            if off >= len(body) + 1:
                raise TransportError("truncated SUBSCRIBE QoS byte")
            qos = body[off]
            off += 1
            topics.append((topic, qos))
        if not topics:
            raise TransportError("SUBSCRIBE with empty topic list")
        return cls(packet_id=packet_id, topics=tuple(topics))


@dataclass(frozen=True, slots=True)
class SubAck:
    """SUBACK — per-filter grant results for a SUBSCRIBE."""

    packet_id: int
    return_codes: tuple[int, ...] = field(default_factory=tuple)

    def encode(self) -> bytes:
        body = struct.pack("!H", self.packet_id) + bytes(self.return_codes)
        return _fixed_header(SUBACK, 0, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "SubAck":
        (packet_id,) = struct.unpack_from("!H", body, 0)
        return cls(packet_id=packet_id, return_codes=tuple(body[2:]))


@dataclass(frozen=True, slots=True)
class Unsubscribe:
    """UNSUBSCRIBE — drop a list of topic filters."""

    packet_id: int
    topics: tuple[str, ...] = field(default_factory=tuple)

    def encode(self) -> bytes:
        if not self.topics:
            raise TransportError("UNSUBSCRIBE requires at least one topic filter")
        body = struct.pack("!H", self.packet_id)
        for topic in self.topics:
            body += _encode_string(topic)
        return _fixed_header(UNSUBSCRIBE, 0x02, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "Unsubscribe":
        if flags != 0x02:
            raise TransportError("UNSUBSCRIBE fixed-header flags must be 0b0010")
        (packet_id,) = struct.unpack_from("!H", body, 0)
        off = 2
        topics: list[str] = []
        while off < len(body):
            topic, off = _decode_string(body, off)
            topics.append(topic)
        return cls(packet_id=packet_id, topics=tuple(topics))


@dataclass(frozen=True, slots=True)
class UnsubAck:
    """UNSUBACK — acknowledgement of an UNSUBSCRIBE."""

    packet_id: int

    def encode(self) -> bytes:
        body = struct.pack("!H", self.packet_id)
        return _fixed_header(UNSUBACK, 0, len(body)) + body

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "UnsubAck":
        return cls(packet_id=struct.unpack("!H", body)[0])


@dataclass(frozen=True, slots=True)
class PingReq:
    """PINGREQ — client keepalive probe."""

    def encode(self) -> bytes:
        return _fixed_header(PINGREQ, 0, 0)

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "PingReq":
        return cls()


@dataclass(frozen=True, slots=True)
class PingResp:
    """PINGRESP — broker keepalive answer."""

    def encode(self) -> bytes:
        return _fixed_header(PINGRESP, 0, 0)

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "PingResp":
        return cls()


@dataclass(frozen=True, slots=True)
class Disconnect:
    """DISCONNECT — clean session teardown."""

    def encode(self) -> bytes:
        return _fixed_header(DISCONNECT, 0, 0)

    @classmethod
    def decode(cls, flags: int, body: bytes) -> "Disconnect":
        return cls()


Packet = (
    Connect
    | ConnAck
    | Publish
    | PubAck
    | Subscribe
    | SubAck
    | Unsubscribe
    | UnsubAck
    | PingReq
    | PingResp
    | Disconnect
)

_DECODERS = {
    CONNECT: Connect.decode,
    CONNACK: ConnAck.decode,
    PUBLISH: Publish.decode,
    PUBACK: PubAck.decode,
    SUBSCRIBE: Subscribe.decode,
    SUBACK: SubAck.decode,
    UNSUBSCRIBE: Unsubscribe.decode,
    UNSUBACK: UnsubAck.decode,
    PINGREQ: PingReq.decode,
    PINGRESP: PingResp.decode,
    DISCONNECT: Disconnect.decode,
}


def encode_packet(packet: Packet) -> bytes:
    """Encode any packet object to wire bytes."""
    return packet.encode()


def decode_packet(data: bytes) -> tuple[Packet, int]:
    """Decode one complete packet from the head of ``data``.

    Returns ``(packet, bytes_consumed)``.  Raises
    :class:`TransportError` on malformed or unsupported input, and
    :class:`IndexError` if ``data`` does not yet hold a full packet.
    """
    first = data[0]
    ptype = first >> 4
    flags = first & 0x0F
    remaining, body_off = decode_remaining_length(data, 1)
    end = body_off + remaining
    if end > len(data):
        raise IndexError("incomplete packet")
    decoder = _DECODERS.get(ptype)
    if decoder is None:
        raise TransportError(f"unsupported packet type {ptype}")
    try:
        packet = decoder(flags, bytes(data[body_off:end]))
    except (struct.error, UnicodeDecodeError) as exc:
        raise TransportError(f"malformed packet body (type {ptype}): {exc}") from exc
    return packet, end


class StreamDecoder:
    """Incremental decoder for a TCP byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete packets come back
    in order.  Partial packets are buffered internally.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[Packet]:
        """Append ``data`` and return all packets now complete."""
        self._buf.extend(data)
        packets: list[Packet] = []
        while self._buf:
            try:
                packet, consumed = decode_packet(bytes(self._buf))
            except IndexError:
                break
            del self._buf[:consumed]
            packets.append(packet)
        return packets

    @property
    def pending_bytes(self) -> int:
        """Number of buffered bytes not yet forming a full packet."""
        return len(self._buf)
