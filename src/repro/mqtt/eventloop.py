"""Single-threaded ``selectors``-based event loop for the MQTT stack.

The transport concurrency model of the reproduction (paper section
4.2: one Collect Agent broker fans in thousands of Pusher
connections).  A thread-per-client layout caps out on context-switch
and GIL churn long before the hardware does, so both brokers and the
client run their socket I/O on ONE :class:`EventLoop` thread:

* :class:`EventLoop` — a ``selectors.DefaultSelector`` wrapped with
  thread-safe ``call_soon``/``call_later`` scheduling and a
  self-pipe wakeup, so any thread can hand work to the loop.
* :class:`Connection` — a non-blocking socket with the shared
  read/write state machine: incremental MQTT packet decoding on
  reads, a bounded outgoing write buffer with a ``drop`` or
  ``disconnect`` overflow policy for slow consumers, per-connection
  read stalling (the fault-injection seam), and idempotent teardown.

The same two classes back :class:`~repro.mqtt.broker.MQTTBroker`
(one loop for the listener plus every session — O(1) transport
threads, not O(n) readers) and :class:`~repro.mqtt.client.MQTTClient`
(one loop replacing the old reader + ping thread pair; keepalive and
reconnect backoff are loop timers).
"""

from __future__ import annotations

import heapq
import itertools
import logging
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable

from repro.common.errors import TransportError
from repro.mqtt import packets as pkt

logger = logging.getLogger(__name__)

__all__ = ["EventLoop", "Timer", "Connection", "DROP", "DISCONNECT", "STALL"]

#: Actions a ``data_filter`` (fault-injection seam) may return.
DROP = "drop"
DISCONNECT = "disconnect"
STALL = "stall"

#: Default pause applied by a bare ``"stall"`` action.
DEFAULT_STALL_S = 0.05

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE


class Timer:
    """Handle for a ``call_later`` callback; ``cancel()`` is thread-safe."""

    __slots__ = ("deadline", "callback", "cancelled")

    def __init__(self, deadline: float, callback: Callable[[], None]) -> None:
        self.deadline = deadline
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """A selector loop on one daemon thread.

    All selector mutations and handler callbacks happen on the loop
    thread; other threads communicate exclusively through
    :meth:`call_soon`/:meth:`call_later`, which append under a lock and
    wake the selector through a socketpair.
    """

    def __init__(self, name: str = "mqtt-loop") -> None:
        self.name = name
        self._selector = selectors.DefaultSelector()
        wake_r, wake_w = socket.socketpair()
        wake_r.setblocking(False)
        wake_w.setblocking(False)
        self._wake_r = wake_r
        self._wake_w = wake_w
        self._selector.register(wake_r, _READ, self._drain_wake)
        self._lock = threading.Lock()
        self._ready: deque[Callable[[], None]] = deque()
        self._timers: list[tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._thread: threading.Thread | None = None
        self._running = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def on_loop_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def start(self) -> None:
        if self._running or self._closed:
            return
        self._running = True
        self._thread = threading.Thread(target=self._run, name=self.name, daemon=True)
        self._thread.start()

    def stop(self, join: bool = True) -> None:
        """Stop the loop; idempotent, safe from any thread."""
        if self._closed:
            return
        if not self._running:
            # Never started: release the selector infrastructure here
            # (a started loop closes it on exit from _run).
            self._dispose()
            return
        self._running = False
        self.wake()
        thread = self._thread
        if join and thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    # -- scheduling -----------------------------------------------------

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` on the loop thread as soon as possible."""
        with self._lock:
            self._ready.append(callback)
        self.wake()

    def call_later(self, delay_s: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` on the loop thread after ``delay_s`` seconds."""
        timer = Timer(time.monotonic() + max(0.0, delay_s), callback)
        with self._lock:
            heapq.heappush(self._timers, (timer.deadline, next(self._seq), timer))
        self.wake()
        return timer

    def wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, InterruptedError):
            pass  # pipe already full: the loop will wake anyway
        except OSError:
            pass  # loop torn down concurrently

    # -- internals ------------------------------------------------------

    def _drain_wake(self, mask: int) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def _next_timeout(self) -> float | None:
        with self._lock:
            if self._ready:
                return 0.0
            if self._timers:
                return max(0.0, self._timers[0][0] - time.monotonic())
        return None

    def _run(self) -> None:
        try:
            while self._running:
                timeout = self._next_timeout()
                try:
                    events = self._selector.select(timeout)
                except OSError:
                    events = []
                for key, mask in events:
                    handler = key.data
                    try:
                        handler(mask)
                    except Exception:  # noqa: BLE001 - loop must survive handlers
                        logger.exception("unhandled error in %s handler", self.name)
                self._run_ready()
                self._run_timers()
        finally:
            self._dispose()

    def _run_ready(self) -> None:
        while True:
            with self._lock:
                if not self._ready:
                    return
                callback = self._ready.popleft()
            try:
                callback()
            except Exception:  # noqa: BLE001
                logger.exception("unhandled error in %s callback", self.name)

    def _run_timers(self) -> None:
        now = time.monotonic()
        while True:
            with self._lock:
                if not self._timers or self._timers[0][0] > now:
                    return
                _, _, timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            try:
                timer.callback()
            except Exception:  # noqa: BLE001
                logger.exception("unhandled error in %s timer", self.name)

    def _dispose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._running = False
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass


class Connection:
    """One non-blocking MQTT connection driven by an :class:`EventLoop`.

    Owners (broker session / client) provide callbacks:

    * ``on_packet(conn, packet)`` — one decoded MQTT packet, loop
      thread.  Raising :class:`TransportError` marks a protocol
      violation: the connection is closed after ``on_error``.
    * ``on_close(conn)`` — invoked exactly once when the connection is
      torn down, whatever the cause.
    * ``on_bytes(conn, n)`` — raw receive accounting (optional).
    * ``on_error(conn, exc)`` — protocol-error logging (optional).

    ``data_filter(conn, data)`` is the fault-injection seam: consulted
    once per recv chunk before decoding, it may return ``None``
    (process), ``"drop"`` (the chunk vanishes), ``"disconnect"``
    (half-close the socket mid-stream, as a severed link), or
    ``"stall"`` / ``("stall", seconds)`` (keep the connection but stop
    reading from it for a while — a wedged peer or congested path).

    Writes are thread-safe and buffered: ``write()`` appends to the
    outgoing buffer and the loop drains it as the socket allows.  With
    ``max_write_buffer > 0``, a full buffer triggers the
    ``overflow_policy``: ``"drop"`` discards the offending message,
    ``"disconnect"`` severs the slow consumer.
    """

    def __init__(
        self,
        loop: EventLoop,
        sock: socket.socket,
        *,
        on_packet: Callable[["Connection", pkt.Packet], None],
        on_close: Callable[["Connection"], None] | None = None,
        on_bytes: Callable[["Connection", int], None] | None = None,
        on_error: Callable[["Connection", Exception], None] | None = None,
        on_overflow: Callable[["Connection"], None] | None = None,
        max_write_buffer: int = 0,
        overflow_policy: str = "disconnect",
        label: str = "",
    ) -> None:
        if overflow_policy not in ("disconnect", "drop"):
            raise ValueError(f"unknown overflow policy {overflow_policy!r}")
        sock.setblocking(False)
        self.loop = loop
        self.sock = sock
        self.label = label
        self.on_packet = on_packet
        self.on_close = on_close
        self.on_bytes = on_bytes
        self.on_error = on_error
        self.on_overflow = on_overflow
        self.data_filter: Callable[["Connection", bytes], object] | None = None
        self.max_write_buffer = max_write_buffer
        self.overflow_policy = overflow_policy
        self.overflow_drops = 0
        self.last_rx = time.monotonic()
        self._decoder = pkt.StreamDecoder()
        self._outbuf = bytearray()
        self._outlock = threading.Lock()
        self._closed = False
        self._close_notified = False
        self._registered = False
        self._want_write = False
        self._paused = False
        self._resume_timer: Timer | None = None

    # -- introspection --------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def outbuf_len(self) -> int:
        return len(self._outbuf)

    def fileno(self) -> int:
        return self.sock.fileno()

    # -- lifecycle ------------------------------------------------------

    def attach(self) -> None:
        """Register with the loop (from any thread)."""
        if self.loop.on_loop_thread():
            self._register()
        else:
            self.loop.call_soon(self._register)

    def close(self) -> None:
        """Tear down; idempotent, safe from any thread."""
        if self._closed:
            return
        if self.loop.on_loop_thread() or not self.loop.running:
            self._finish_close()
        else:
            self.loop.call_soon(self._finish_close)

    def _register(self) -> None:
        if self._closed:
            return
        try:
            self.loop._selector.register(self.sock, _READ, self._on_events)
        except (ValueError, KeyError, OSError):
            self._finish_close()
            return
        self._registered = True
        if self._outbuf:
            self._flush()

    def _finish_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._resume_timer is not None:
            self._resume_timer.cancel()
            self._resume_timer = None
        if self._registered:
            try:
                self.loop._selector.unregister(self.sock)
            except (ValueError, KeyError, OSError):
                pass
            self._registered = False
        # Best-effort flush of anything already queued (DISCONNECT,
        # final acks) before the FIN.
        with self._outlock:
            pending = bytes(self._outbuf)
            self._outbuf.clear()
        if pending:
            try:
                self.sock.send(pending)
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass
        if self.on_close is not None and not self._close_notified:
            self._close_notified = True
            try:
                self.on_close(self)
            except Exception:  # noqa: BLE001
                logger.exception("on_close handler failed for %s", self.label)

    # -- reading --------------------------------------------------------

    def pause_reading(self, seconds: float) -> None:
        """Stop reading from the socket for ``seconds`` (loop thread)."""
        if self._closed or self._paused:
            return
        self._paused = True
        self._sync_interest()
        self._resume_timer = self.loop.call_later(seconds, self._resume_reading)

    def _resume_reading(self) -> None:
        self._resume_timer = None
        if self._closed or not self._paused:
            return
        self._paused = False
        self._sync_interest()

    def _on_events(self, mask: int) -> None:
        if mask & _WRITE:
            self._flush()
        if mask & _READ and not self._closed and not self._paused:
            self._on_readable()

    def _on_readable(self) -> None:
        try:
            data = self.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self.close()
            return
        if not data:
            self.close()
            return
        self.last_rx = time.monotonic()
        filt = self.data_filter
        if filt is not None:
            action = filt(self, data)
            if action is not None:
                name, arg = action if isinstance(action, tuple) else (action, None)
                if name == DROP:
                    return
                if name == DISCONNECT:
                    self.close()
                    return
                if name == STALL:
                    # The chunk itself is still processed — a stall
                    # delays subsequent reads, it does not eat data.
                    self.pause_reading(arg if arg else DEFAULT_STALL_S)
        if self.on_bytes is not None:
            self.on_bytes(self, len(data))
        try:
            packets = self._decoder.feed(data)
        except TransportError as exc:
            self._protocol_error(exc)
            return
        for packet in packets:
            if self._closed:
                break
            try:
                self.on_packet(self, packet)
            except TransportError as exc:
                self._protocol_error(exc)
                return
            except Exception:  # noqa: BLE001 - a broken handler must
                # not wedge the loop; the connection is sacrificed.
                logger.exception("packet handler failed for %s", self.label)
                self.close()
                return

    def _protocol_error(self, exc: Exception) -> None:
        if self.on_error is not None:
            try:
                self.on_error(self, exc)
            except Exception:  # noqa: BLE001
                logger.exception("on_error handler failed for %s", self.label)
        self.close()

    # -- writing --------------------------------------------------------

    def write(self, data: bytes) -> bool:
        """Queue ``data`` for sending; thread-safe.

        Returns False when the connection is closed or the write buffer
        overflowed (``"drop"`` policy: the message is discarded;
        ``"disconnect"`` policy: the connection is being severed).
        """
        overflowed = False
        with self._outlock:
            if self._closed:
                return False
            if (
                self.max_write_buffer
                and self._outbuf
                and len(self._outbuf) + len(data) > self.max_write_buffer
            ):
                self.overflow_drops += 1
                overflowed = True
            else:
                self._outbuf += data
        if overflowed:
            if self.on_overflow is not None:
                try:
                    self.on_overflow(self)
                except Exception:  # noqa: BLE001
                    logger.exception("on_overflow handler failed for %s", self.label)
            if self.overflow_policy == "disconnect":
                self.close()
            return False
        if self.loop.on_loop_thread():
            self._flush()
        else:
            self.loop.call_soon(self._flush)
        return True

    def _flush(self) -> None:
        if self._closed:
            return
        while True:
            with self._outlock:
                if not self._outbuf:
                    break
                chunk = bytes(self._outbuf[:65536])
            try:
                sent = self.sock.send(chunk)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError:
                self.close()
                return
            if sent:
                with self._outlock:
                    del self._outbuf[:sent]
            if sent < len(chunk):
                break
        with self._outlock:
            pending = bool(self._outbuf)
        if pending != self._want_write:
            self._want_write = pending
            self._sync_interest()

    # -- selector interest ----------------------------------------------

    def _sync_interest(self) -> None:
        if self._closed:
            return
        events = 0
        if not self._paused:
            events |= _READ
        if self._want_write:
            events |= _WRITE
        try:
            if events == 0:
                if self._registered:
                    self.loop._selector.unregister(self.sock)
                    self._registered = False
            elif self._registered:
                self.loop._selector.modify(self.sock, events, self._on_events)
            else:
                self.loop._selector.register(self.sock, events, self._on_events)
                self._registered = True
        except (ValueError, KeyError, OSError):
            self.close()
