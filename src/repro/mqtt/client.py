"""Event-loop MQTT client with automatic reconnection.

This is the Pusher side of the transport (paper section 4.1: the MQTT
Client component "periodically extracts the data from the sensors in
each plugin and pushes it to the associated Collect Agent").  It
supports:

* QoS 0 fire-and-forget publishing (DCDB's default for readings);
* QoS 1 publishing with a bounded in-flight window and PUBACK
  tracking, for configurations that need at-least-once delivery;
* subscriptions with per-message callbacks (used by tests and by
  third-party consumers against the full broker);
* keepalive PINGREQs as an event-loop timer (the dedicated ping
  thread of the previous revision is gone);
* automatic reconnection with capped exponential backoff and session
  re-establishment — subscriptions are replayed and unacked QoS-1
  publishes are re-sent with the DUP flag, so a Collect Agent restart
  costs a Pusher nothing but the outage window.

All socket I/O runs on one :class:`~repro.mqtt.eventloop.EventLoop`
thread per client.  The public API stays blocking and thread-safe:
multiple plugin threads may publish concurrently; writes go through
the connection's buffered non-blocking writer.

Reconnect semantics for publishers:

* QoS 1 publishes issued while the connection is down (but the client
  has connected before and auto-reconnect is on) are QUEUED into the
  bounded in-flight window and replayed on session re-establishment,
  instead of raising as the previous revision did.
* QoS 0 publishes in the same window still raise
  :class:`TransportError` (callers like the Pusher count failures on
  it) but are additionally counted in
  ``dcdb_client_qos0_drops_total`` — fire-and-forget readings lost to
  the outage are visible on /metrics.

``on_reconnect`` (if set) is invoked from the event-loop thread after
every successful automatic re-establishment; the Pusher uses it to
re-announce sensor metadata.
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import Callable

from repro.common.errors import TransportError
from repro.mqtt import packets as pkt
from repro.mqtt.eventloop import Connection, EventLoop, Timer
from repro.mqtt.topics import topic_matches, validate_filter, validate_topic
from repro.observability import MetricsRegistry

logger = logging.getLogger(__name__)

MessageCallback = Callable[[str, bytes], None]

#: How long a reconnect attempt waits for the TCP connect + CONNACK
#: before giving up and backing off again.
RECONNECT_ATTEMPT_TIMEOUT_S = 2.0
CONNACK_GUARD_S = 5.0


class _Inflight:
    """One QoS-1 publish awaiting its PUBACK (or a connection)."""

    __slots__ = ("packet_id", "topic", "payload", "retain", "event", "sent")

    def __init__(self, packet_id: int, topic: str, payload: bytes, retain: bool) -> None:
        self.packet_id = packet_id
        self.topic = topic
        self.payload = payload
        self.retain = retain
        self.event = threading.Event()
        self.sent = False  # written to some connection at least once


class MQTTClient:
    """A synchronous MQTT 3.1.1 client on an event loop.

    Parameters mirror the subset of Mosquitto options DCDB uses.  The
    object may be used as a context manager; ``connect`` must be called
    before any publish/subscribe operation.  With ``reconnect=True``
    (the default) a lost connection is re-established automatically
    with exponential backoff between ``reconnect_min_delay_s`` and
    ``reconnect_max_delay_s``.
    """

    def __init__(
        self,
        client_id: str,
        host: str = "127.0.0.1",
        port: int = 1883,
        keepalive: int = 60,
        username: str | None = None,
        password: bytes | None = None,
        max_inflight: int = 64,
        metrics: MetricsRegistry | None = None,
        reconnect: bool = True,
        reconnect_min_delay_s: float = 0.1,
        reconnect_max_delay_s: float = 5.0,
    ) -> None:
        self.client_id = client_id
        self.host = host
        self.port = port
        self.keepalive = keepalive
        self.username = username
        self.password = password
        self.max_inflight = max_inflight
        self.auto_reconnect = reconnect
        self.reconnect_min_delay_s = reconnect_min_delay_s
        self.reconnect_max_delay_s = reconnect_max_delay_s
        #: Set once the first session is established; gates both the
        #: reconnect machinery and the QoS-1 queueing window.
        self.ever_connected = False
        #: Invoked (loop thread) after each automatic re-establishment.
        self.on_reconnect: Callable[[], None] | None = None
        self._loop: EventLoop | None = None
        self._conn: Connection | None = None
        self._connack = threading.Event()
        self._connack_code: int | None = None
        self._connected = False  # CONNACK accepted on the current conn
        self._closing = False
        self._reconnect_pending = False
        self._reconnect_delay_s = reconnect_min_delay_s
        self._ping_timer: Timer | None = None
        self._reconnect_timer: Timer | None = None
        self._connack_guard: Timer | None = None
        self._next_packet_id = 1
        self._id_lock = threading.Lock()
        self._inflight: dict[int, _Inflight] = {}  # insertion-ordered
        self._inflight_lock = threading.Lock()
        self._inflight_sem = threading.Semaphore(max_inflight)
        self._suback_events: dict[int, threading.Event] = {}
        self._suback_codes: dict[int, tuple[int, ...]] = {}
        self._subs: dict[str, int] = {}  # pattern -> qos, for resubscribe
        self._callbacks: list[tuple[str, MessageCallback]] = []
        self.on_message: MessageCallback | None = None
        # Registry counters: several plugin threads publish through
        # one client concurrently.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._messages_sent = self.metrics.counter(
            "dcdb_client_messages_sent_total", "MQTT messages published by this client"
        )
        self._bytes_sent = self.metrics.counter(
            "dcdb_client_bytes_sent_total", "Encoded bytes written to the broker socket"
        )
        self._reconnects_counter = self.metrics.counter(
            "dcdb_client_reconnects_total",
            "Automatic broker reconnections completed by this client",
        )
        self._qos0_drops = self.metrics.counter(
            "dcdb_client_qos0_drops_total",
            "QoS 0 publishes dropped while disconnected",
        )

    @property
    def messages_sent(self) -> int:
        return int(self._messages_sent.value)

    @property
    def bytes_sent(self) -> int:
        return int(self._bytes_sent.value)

    @property
    def reconnects(self) -> int:
        return int(self._reconnects_counter.value)

    @property
    def qos0_drops(self) -> int:
        return int(self._qos0_drops.value)

    # -- lifecycle ------------------------------------------------------

    def connect(self, timeout: float = 5.0) -> None:
        """Open the TCP connection and perform the MQTT handshake."""
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closing = False
        self._connack.clear()
        self._connack_code = None
        self._reconnect_delay_s = self.reconnect_min_delay_s
        loop = self._loop
        if loop is None or not loop.running:
            loop = EventLoop(name=f"mqtt-client-{self.client_id}")
            self._loop = loop
            loop.start()
        conn = self._make_connection(loop, sock)
        self._conn = conn
        conn.attach()
        self._send_connect(conn)
        if not self._connack.wait(timeout):
            self.close()
            raise TransportError("timed out waiting for CONNACK")
        if self._connack_code != pkt.CONNACK_ACCEPTED:
            code = self._connack_code
            self.close()
            raise TransportError(f"connection refused (return code {code})")

    def disconnect(self) -> None:
        """Send DISCONNECT and close the connection."""
        # Flag intent before the handshake: the broker closes the socket
        # on DISCONNECT, and that close racing ahead of ours must not be
        # mistaken for a lost connection (which would schedule a
        # reconnect attempt).
        self._closing = True
        conn = self._conn
        if conn is not None and self._connected:
            conn.write(pkt.Disconnect().encode())
        self.close()

    def close(self) -> None:
        """Tear down the connection without the DISCONNECT handshake.

        The client stays reusable: a later ``connect()`` builds a fresh
        event loop.  Pending QoS-1 publishes are abandoned and their
        waiters unblocked.
        """
        self._closing = True
        self._connected = False
        for timer in (self._ping_timer, self._reconnect_timer, self._connack_guard):
            if timer is not None:
                timer.cancel()
        self._ping_timer = self._reconnect_timer = self._connack_guard = None
        loop = self._loop
        self._loop = None
        if loop is not None:
            loop.stop(join=True)
        conn = self._conn
        self._conn = None
        if conn is not None:
            conn.close()  # loop stopped: teardown runs inline
        with self._inflight_lock:
            abandoned = list(self._inflight.values())
            self._inflight.clear()
        for record in abandoned:
            record.event.set()
            self._inflight_sem.release()
        self._connack.set()  # unblock any connect() waiter

    @property
    def connected(self) -> bool:
        return self._conn is not None and self._connected and not self._closing

    def __enter__(self) -> "MQTTClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.disconnect()

    # -- publishing -----------------------------------------------------

    def publish(
        self,
        topic: str,
        payload: bytes,
        qos: int = 0,
        retain: bool = False,
        wait_ack: bool = False,
        timeout: float = 5.0,
    ) -> None:
        """Publish ``payload`` on ``topic``.

        With ``qos=1`` the message enters the bounded in-flight window;
        ``wait_ack=True`` additionally blocks until the broker's PUBACK
        arrives (or raises on timeout).  During a reconnect window,
        QoS-1 messages queue (replayed on re-establishment) while QoS-0
        messages raise and are counted as drops.
        """
        validate_topic(topic)
        if qos == 0:
            conn = self._conn
            if conn is None or not self._connected:
                if self.ever_connected:
                    self._qos0_drops.inc()
                raise TransportError("client is not connected")
            data = pkt.Publish(topic=topic, payload=payload, retain=retain).encode()
            if not conn.write(data):
                self._qos0_drops.inc()
                raise TransportError("client is not connected")
            self._bytes_sent.inc(len(data))
            self._messages_sent.inc()
            return
        in_reconnect_window = (
            self.auto_reconnect and self.ever_connected and not self._closing
        )
        if not self._connected and not in_reconnect_window:
            raise TransportError("client is not connected")
        self._inflight_sem.acquire()
        packet_id = self._allocate_packet_id()
        record = _Inflight(packet_id, topic, payload, retain)
        with self._inflight_lock:
            self._inflight[packet_id] = record
        conn = self._conn
        if self._connected and conn is not None:
            self._send_inflight(conn, record, dup=False)
        # else: queued; session re-establishment replays it.
        if wait_ack:
            if not record.event.wait(timeout):
                with self._inflight_lock:
                    still_mine = self._inflight.pop(packet_id, None)
                if still_mine is not None:
                    self._inflight_sem.release()
                raise TransportError(f"PUBACK timeout for packet {packet_id}")
            if self._closing:
                raise TransportError("client closed while awaiting PUBACK")

    def _send_inflight(self, conn: Connection, record: _Inflight, dup: bool) -> None:
        data = pkt.Publish(
            topic=record.topic,
            payload=record.payload,
            qos=1,
            retain=record.retain,
            dup=dup,
            packet_id=record.packet_id,
        ).encode()
        if conn.write(data):
            self._bytes_sent.inc(len(data))
            if not record.sent:
                record.sent = True
                self._messages_sent.inc()

    # -- subscriptions ----------------------------------------------------

    def subscribe(
        self,
        pattern: str,
        callback: MessageCallback | None = None,
        qos: int = 0,
        timeout: float = 5.0,
    ) -> int:
        """Subscribe to ``pattern``; returns the granted QoS.

        Raises :class:`TransportError` if the broker rejects the filter
        (as the Collect Agent's publish-only broker always does).
        Accepted subscriptions are replayed automatically after a
        reconnect.
        """
        validate_filter(pattern)
        packet_id = self._allocate_packet_id()
        event = threading.Event()
        self._suback_events[packet_id] = event
        # Register the callback before the broker can deliver anything:
        # retained messages may arrive immediately after the SUBACK,
        # racing a post-wait registration.
        if callback is not None:
            self._callbacks.append((pattern, callback))
        try:
            self._send(pkt.Subscribe(packet_id=packet_id, topics=((pattern, qos),)).encode())
            if not event.wait(timeout):
                raise TransportError("SUBACK timeout")
            codes = self._suback_codes.pop(packet_id, ())
            if not codes or codes[0] == pkt.SUBACK_FAILURE:
                raise TransportError(f"subscription to {pattern!r} rejected by broker")
        except TransportError:
            if callback is not None:
                self._callbacks.remove((pattern, callback))
            raise
        finally:
            self._suback_events.pop(packet_id, None)
        self._subs[pattern] = qos
        return codes[0]

    def unsubscribe(self, pattern: str) -> None:
        packet_id = self._allocate_packet_id()
        self._send(pkt.Unsubscribe(packet_id=packet_id, topics=(pattern,)).encode())
        self._subs.pop(pattern, None)
        self._callbacks = [(p, cb) for p, cb in self._callbacks if p != pattern]

    # -- internals --------------------------------------------------------

    def _allocate_packet_id(self) -> int:
        with self._id_lock:
            pid = self._next_packet_id
            self._next_packet_id = pid % 0xFFFF + 1
            return pid

    def _make_connection(self, loop: EventLoop, sock: socket.socket) -> Connection:
        return Connection(
            loop,
            sock,
            on_packet=self._on_packet,
            on_close=self._on_conn_close,
            on_error=self._on_protocol_error,
            label=f"client-{self.client_id}",
        )

    def _send_connect(self, conn: Connection) -> None:
        data = pkt.Connect(
            client_id=self.client_id,
            keepalive=self.keepalive,
            username=self.username,
            password=self.password,
        ).encode()
        if conn.write(data):
            self._bytes_sent.inc(len(data))

    def _send(self, data: bytes) -> None:
        conn = self._conn
        if conn is None or not self._connected:
            raise TransportError("client is not connected")
        if not conn.write(data):
            raise TransportError("client is not connected")
        self._bytes_sent.inc(len(data))

    # -- event-loop handlers ----------------------------------------------

    def _on_protocol_error(self, conn: Connection, exc: Exception) -> None:
        logger.warning("client %s: protocol error: %s", self.client_id, exc)

    def _on_packet(self, conn: Connection, packet: pkt.Packet) -> None:
        if isinstance(packet, pkt.ConnAck):
            self._handle_connack(conn, packet)
        elif isinstance(packet, pkt.PubAck):
            with self._inflight_lock:
                record = self._inflight.pop(packet.packet_id, None)
            if record is not None:
                record.event.set()
                self._inflight_sem.release()
        elif isinstance(packet, pkt.SubAck):
            self._suback_codes[packet.packet_id] = packet.return_codes
            event = self._suback_events.get(packet.packet_id)
            if event is not None:
                event.set()
        elif isinstance(packet, pkt.Publish):
            if packet.qos == 1 and packet.packet_id is not None:
                conn.write(pkt.PubAck(packet_id=packet.packet_id).encode())
            self._deliver(packet.topic, packet.payload)
        elif isinstance(packet, pkt.PingResp):
            pass
        else:
            logger.debug("client %s: ignoring %s", self.client_id, type(packet).__name__)

    def _handle_connack(self, conn: Connection, packet: pkt.ConnAck) -> None:
        self._connack_code = packet.return_code
        if self._connack_guard is not None:
            self._connack_guard.cancel()
            self._connack_guard = None
        if packet.return_code != pkt.CONNACK_ACCEPTED:
            was_reconnect = self._reconnect_pending
            self._reconnect_pending = False
            self._connack.set()
            if was_reconnect:
                logger.warning(
                    "client %s: reconnect refused (return code %d)",
                    self.client_id,
                    packet.return_code,
                )
                conn.close()  # on_close schedules the next backoff step
            return
        self._session_established(conn)

    def _session_established(self, conn: Connection) -> None:
        was_reconnect = self._reconnect_pending
        self._reconnect_pending = False
        self._connected = True
        self.ever_connected = True
        self._reconnect_delay_s = self.reconnect_min_delay_s
        self._start_ping_timer()
        self._connack.set()
        if was_reconnect:
            # Session re-establishment: subscriptions first, then the
            # unacked QoS-1 window in publish order (DUP set on
            # anything that already hit the wire once).
            for pattern, qos in list(self._subs.items()):
                pid = self._allocate_packet_id()
                conn.write(pkt.Subscribe(packet_id=pid, topics=((pattern, qos),)).encode())
            with self._inflight_lock:
                pending = list(self._inflight.values())
            for record in pending:
                self._send_inflight(conn, record, dup=record.sent)
            self._reconnects_counter.inc()
            logger.info(
                "client %s: reconnected to %s:%d (replayed %d in-flight)",
                self.client_id,
                self.host,
                self.port,
                len(pending),
            )
            callback = self.on_reconnect
            if callback is not None:
                try:
                    callback()
                except Exception:  # noqa: BLE001 - user hook
                    logger.exception("on_reconnect hook failed for %s", self.client_id)

    def _start_ping_timer(self) -> None:
        if self.keepalive <= 0:
            return
        loop = self._loop
        if loop is None or not loop.running:
            return
        interval = max(self.keepalive * 0.5, 1.0)

        def tick() -> None:
            if self._closing or not self._connected:
                return
            conn = self._conn
            if conn is not None:
                conn.write(pkt.PingReq().encode())
            self._ping_timer = loop.call_later(interval, tick)

        if self._ping_timer is not None:
            self._ping_timer.cancel()
        self._ping_timer = loop.call_later(interval, tick)

    def _on_conn_close(self, conn: Connection) -> None:
        if conn is not self._conn:
            return
        was_connected = self._connected
        self._connected = False
        if self._ping_timer is not None:
            self._ping_timer.cancel()
            self._ping_timer = None
        self._connack.set()  # unblock a connect() waiting on a dead socket
        if self._closing or not self.auto_reconnect or not self.ever_connected:
            return
        if was_connected:
            logger.warning(
                "client %s: connection to %s:%d lost, reconnecting",
                self.client_id,
                self.host,
                self.port,
            )
        self._schedule_reconnect()

    def _schedule_reconnect(self) -> None:
        loop = self._loop
        if loop is None or not loop.running or self._closing:
            return
        delay = self._reconnect_delay_s
        self._reconnect_delay_s = min(delay * 2, self.reconnect_max_delay_s)
        self._reconnect_timer = loop.call_later(delay, self._reconnect_attempt)

    def _reconnect_attempt(self) -> None:
        self._reconnect_timer = None
        if self._closing or self._connected:
            return
        loop = self._loop
        if loop is None or not loop.running:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=RECONNECT_ATTEMPT_TIMEOUT_S
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            self._schedule_reconnect()
            return
        self._reconnect_pending = True
        conn = self._make_connection(loop, sock)
        self._conn = conn
        conn.attach()
        self._send_connect(conn)

        def guard() -> None:
            self._connack_guard = None
            if not self._connected and conn is self._conn:
                conn.close()  # no CONNACK: back off and retry

        self._connack_guard = loop.call_later(CONNACK_GUARD_S, guard)

    def _deliver(self, topic: str, payload: bytes) -> None:
        delivered = False
        for pattern, callback in self._callbacks:
            if topic_matches(pattern, topic):
                callback(topic, payload)
                delivered = True
        if not delivered and self.on_message is not None:
            self.on_message(topic, payload)
