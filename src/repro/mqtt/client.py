"""Blocking MQTT client with a background receive loop.

This is the Pusher side of the transport (paper section 4.1: the MQTT
Client component "periodically extracts the data from the sensors in
each plugin and pushes it to the associated Collect Agent").  It
supports:

* QoS 0 fire-and-forget publishing (DCDB's default for readings);
* QoS 1 publishing with a bounded in-flight window and PUBACK
  tracking, for configurations that need at-least-once delivery;
* subscriptions with per-message callbacks (used by tests and by
  third-party consumers against the full broker);
* automatic PINGREQ keepalives.

The client is thread-safe: multiple plugin threads may publish
concurrently; socket writes are serialized with a lock.
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import Callable

from repro.common.errors import TransportError
from repro.mqtt import packets as pkt
from repro.mqtt.topics import validate_filter, validate_topic
from repro.observability import MetricsRegistry

logger = logging.getLogger(__name__)

MessageCallback = Callable[[str, bytes], None]


class MQTTClient:
    """A synchronous MQTT 3.1.1 client.

    Parameters mirror the subset of Mosquitto options DCDB uses.  The
    object may be used as a context manager; ``connect`` must be called
    before any publish/subscribe operation.
    """

    def __init__(
        self,
        client_id: str,
        host: str = "127.0.0.1",
        port: int = 1883,
        keepalive: int = 60,
        username: str | None = None,
        password: bytes | None = None,
        max_inflight: int = 64,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.client_id = client_id
        self.host = host
        self.port = port
        self.keepalive = keepalive
        self.username = username
        self.password = password
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._reader: threading.Thread | None = None
        self._pinger: threading.Thread | None = None
        self._stop = threading.Event()
        self._connack = threading.Event()
        self._connack_code: int | None = None
        self._next_packet_id = 1
        self._id_lock = threading.Lock()
        self._inflight: dict[int, threading.Event] = {}
        self._inflight_sem = threading.Semaphore(max_inflight)
        self._suback_events: dict[int, threading.Event] = {}
        self._suback_codes: dict[int, tuple[int, ...]] = {}
        self._callbacks: list[tuple[str, MessageCallback]] = []
        self.on_message: MessageCallback | None = None
        # Registry counters: several plugin threads publish through
        # one client concurrently.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._messages_sent = self.metrics.counter(
            "dcdb_client_messages_sent_total", "MQTT messages published by this client"
        )
        self._bytes_sent = self.metrics.counter(
            "dcdb_client_bytes_sent_total", "Encoded bytes written to the broker socket"
        )

    @property
    def messages_sent(self) -> int:
        return int(self._messages_sent.value)

    @property
    def bytes_sent(self) -> int:
        return int(self._bytes_sent.value)

    # -- lifecycle ------------------------------------------------------

    def connect(self, timeout: float = 5.0) -> None:
        """Open the TCP connection and perform the MQTT handshake."""
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        self._sock = sock
        self._stop.clear()
        self._connack.clear()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"mqtt-client-{self.client_id}", daemon=True
        )
        self._reader.start()
        self._send(
            pkt.Connect(
                client_id=self.client_id,
                keepalive=self.keepalive,
                username=self.username,
                password=self.password,
            ).encode()
        )
        if not self._connack.wait(timeout):
            self.close()
            raise TransportError("timed out waiting for CONNACK")
        if self._connack_code != pkt.CONNACK_ACCEPTED:
            code = self._connack_code
            self.close()
            raise TransportError(f"connection refused (return code {code})")
        if self.keepalive > 0:
            self._pinger = threading.Thread(
                target=self._ping_loop, name=f"mqtt-ping-{self.client_id}", daemon=True
            )
            self._pinger.start()

    def disconnect(self) -> None:
        """Send DISCONNECT and close the socket."""
        if self._sock is not None:
            try:
                self._send(pkt.Disconnect().encode())
            except OSError:
                pass
        self.close()

    def close(self) -> None:
        """Tear down the connection without the DISCONNECT handshake."""
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        # Unblock any publishers waiting on PUBACKs.
        for event in list(self._inflight.values()):
            event.set()

    @property
    def connected(self) -> bool:
        return self._sock is not None and self._connack.is_set() and not self._stop.is_set()

    def __enter__(self) -> "MQTTClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.disconnect()

    # -- publishing -----------------------------------------------------

    def publish(
        self,
        topic: str,
        payload: bytes,
        qos: int = 0,
        retain: bool = False,
        wait_ack: bool = False,
        timeout: float = 5.0,
    ) -> None:
        """Publish ``payload`` on ``topic``.

        With ``qos=1`` the message enters the bounded in-flight window;
        ``wait_ack=True`` additionally blocks until the broker's PUBACK
        arrives (or raises on timeout).
        """
        validate_topic(topic)
        if qos == 0:
            self._send(pkt.Publish(topic=topic, payload=payload, retain=retain).encode())
            self._messages_sent.inc()
            return
        self._inflight_sem.acquire()
        packet_id = self._allocate_packet_id()
        acked = threading.Event()
        self._inflight[packet_id] = acked
        try:
            self._send(
                pkt.Publish(
                    topic=topic, payload=payload, qos=1, retain=retain, packet_id=packet_id
                ).encode()
            )
            self._messages_sent.inc()
            if wait_ack and not acked.wait(timeout):
                raise TransportError(f"PUBACK timeout for packet {packet_id}")
        finally:
            if wait_ack or acked.is_set():
                self._inflight.pop(packet_id, None)
                self._inflight_sem.release()
            # Otherwise the ack handler releases when PUBACK arrives.

    # -- subscriptions ----------------------------------------------------

    def subscribe(
        self,
        pattern: str,
        callback: MessageCallback | None = None,
        qos: int = 0,
        timeout: float = 5.0,
    ) -> int:
        """Subscribe to ``pattern``; returns the granted QoS.

        Raises :class:`TransportError` if the broker rejects the filter
        (as the Collect Agent's publish-only broker always does).
        """
        validate_filter(pattern)
        packet_id = self._allocate_packet_id()
        event = threading.Event()
        self._suback_events[packet_id] = event
        # Register the callback before the broker can deliver anything:
        # retained messages may arrive immediately after the SUBACK,
        # racing a post-wait registration.
        if callback is not None:
            self._callbacks.append((pattern, callback))
        try:
            self._send(pkt.Subscribe(packet_id=packet_id, topics=((pattern, qos),)).encode())
            if not event.wait(timeout):
                raise TransportError("SUBACK timeout")
            codes = self._suback_codes.pop(packet_id, ())
            if not codes or codes[0] == pkt.SUBACK_FAILURE:
                raise TransportError(f"subscription to {pattern!r} rejected by broker")
        except TransportError:
            if callback is not None:
                self._callbacks.remove((pattern, callback))
            raise
        finally:
            self._suback_events.pop(packet_id, None)
        return codes[0]

    def unsubscribe(self, pattern: str) -> None:
        packet_id = self._allocate_packet_id()
        self._send(pkt.Unsubscribe(packet_id=packet_id, topics=(pattern,)).encode())
        self._callbacks = [(p, cb) for p, cb in self._callbacks if p != pattern]

    # -- internals --------------------------------------------------------

    def _allocate_packet_id(self) -> int:
        with self._id_lock:
            pid = self._next_packet_id
            self._next_packet_id = pid % 0xFFFF + 1
            return pid

    def _send(self, data: bytes) -> None:
        sock = self._sock
        if sock is None:
            raise TransportError("client is not connected")
        with self._send_lock:
            sock.sendall(data)
        self._bytes_sent.inc(len(data))

    def _read_loop(self) -> None:
        decoder = pkt.StreamDecoder()
        while not self._stop.is_set():
            sock = self._sock
            if sock is None:
                break
            try:
                data = sock.recv(65536)
            except OSError:
                break
            if not data:
                break
            try:
                received = decoder.feed(data)
            except TransportError as exc:
                logger.warning("client %s: protocol error: %s", self.client_id, exc)
                break
            for packet in received:
                self._dispatch(packet)
        self._stop.set()
        self._connack.set()  # unblock a connect() waiting on a dead socket

    def _dispatch(self, packet: pkt.Packet) -> None:
        if isinstance(packet, pkt.ConnAck):
            self._connack_code = packet.return_code
            self._connack.set()
        elif isinstance(packet, pkt.PubAck):
            event = self._inflight.pop(packet.packet_id, None)
            if event is not None:
                event.set()
                self._inflight_sem.release()
        elif isinstance(packet, pkt.SubAck):
            self._suback_codes[packet.packet_id] = packet.return_codes
            event = self._suback_events.get(packet.packet_id)
            if event is not None:
                event.set()
        elif isinstance(packet, pkt.Publish):
            if packet.qos == 1 and packet.packet_id is not None:
                try:
                    self._send(pkt.PubAck(packet_id=packet.packet_id).encode())
                except (TransportError, OSError):
                    pass
            self._deliver(packet.topic, packet.payload)
        elif isinstance(packet, pkt.PingResp):
            pass
        else:
            logger.debug("client %s: ignoring %s", self.client_id, type(packet).__name__)

    def _deliver(self, topic: str, payload: bytes) -> None:
        from repro.mqtt.topics import topic_matches

        delivered = False
        for pattern, callback in self._callbacks:
            if topic_matches(pattern, topic):
                callback(topic, payload)
                delivered = True
        if not delivered and self.on_message is not None:
            self.on_message(topic, payload)

    def _ping_loop(self) -> None:
        interval = max(self.keepalive * 0.5, 1.0)
        while not self._stop.wait(interval):
            try:
                self._send(pkt.PingReq().encode())
            except (TransportError, OSError):
                break
