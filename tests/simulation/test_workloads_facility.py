"""Tests for the workload models (Fig 10) and cooling circuit (Fig 9)."""

import numpy as np
import pytest

from repro.analysis import distribution_modes
from repro.common.timeutil import NS_PER_SEC
from repro.devices.model import DeviceModel
from repro.simulation.facility import CoolingCircuitModel, WATER_CP, WATER_DENSITY
from repro.simulation.workloads import AMG, CORAL2_APPS, HPL, KRIPKE, LAMMPS, QUICKSILVER


class TestApplicationTraces:
    def test_trace_deterministic(self):
        a = KRIPKE.trace(60, 100, seed=3)
        b = KRIPKE.trace(60, 100, seed=3)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_trace_seed_sensitive(self):
        a = LAMMPS.trace(60, 100, seed=1)[1]
        b = LAMMPS.trace(60, 100, seed=2)[1]
        assert not np.array_equal(a, b)

    def test_trace_shapes(self):
        ts, instr, power = AMG.trace(30, 100, seed=0)
        assert ts.size == instr.size == power.size == 300
        assert (np.diff(ts) == 100_000_000).all()

    def test_values_physical(self):
        _, instr, power = QUICKSILVER.trace(60, 100, seed=0)
        assert (instr >= 0).all()
        assert (power > 0).all()
        assert power.mean() < 400  # a node, not a rack

    def test_hpl_steady(self):
        _, instr, _ = HPL.trace(120, 100, seed=0)
        assert instr.std() / instr.mean() < 0.1  # single steady phase


class TestIpwDistributions:
    """The Figure 10 discriminators."""

    def test_ordering_kripke_quicksilver_high(self):
        means = {
            name: app.ipw_series(300, 100, seed=1).mean()
            for name, app in CORAL2_APPS.items()
        }
        assert means["kripke"] > means["lammps"]
        assert means["kripke"] > means["amg"]
        assert means["quicksilver"] > means["lammps"]
        assert means["quicksilver"] > means["amg"]

    def test_range_matches_figure_axis(self):
        # Figure 10's x-axis spans 0 .. 4.5e5 instructions/W.
        for app in CORAL2_APPS.values():
            ipw = app.ipw_series(300, 100, seed=1)
            assert 0 <= ipw.min() and ipw.max() < 4.5e5

    def test_kripke_quicksilver_unimodal(self):
        for app in (KRIPKE, QUICKSILVER):
            modes = distribution_modes(app.ipw_series(600, 100, seed=1))
            assert len(modes) == 1, f"{app.name}: {modes}"

    def test_lammps_amg_multimodal(self):
        for app in (LAMMPS, AMG):
            modes = distribution_modes(app.ipw_series(600, 100, seed=1))
            assert len(modes) >= 2, f"{app.name}: {modes}"

    def test_amg_most_communication_sensitive(self):
        assert AMG.comm_sensitivity == max(
            app.comm_sensitivity for app in CORAL2_APPS.values()
        )
        assert AMG.comm_sensitivity > 5 * LAMMPS.comm_sensitivity


class TestPerfRateFn:
    def test_rate_fn_feeds_perfevents_source(self):
        from repro.plugins.perfevents import SyntheticPerfSource

        source = SyntheticPerfSource(rate_fn=LAMMPS.perf_rate_fn(seed=1))
        c1 = source.read(0, "instructions", NS_PER_SEC)
        c2 = source.read(0, "instructions", 2 * NS_PER_SEC)
        assert c2 > c1 > 0

    def test_rate_fn_event_scaling(self):
        rate = KRIPKE.perf_rate_fn(seed=0)
        assert rate(0, "cycles", 0) > rate(0, "instructions", 0)
        assert rate(0, "cache-misses", 0) < rate(0, "instructions", 0)


class TestCoolingCircuit:
    @pytest.fixture(scope="class")
    def trace(self):
        return CoolingCircuitModel(seed=11).trace(interval_s=300)

    def test_efficiency_near_90_percent(self, trace):
        ratio = trace["heat_w"] / trace["power_w"]
        assert ratio.mean() == pytest.approx(0.90, abs=0.01)

    def test_efficiency_independent_of_inlet_temperature(self, trace):
        # The paper's headline: the ratio does not degrade as inlet
        # temperature sweeps upward -> negligible correlation.
        ratio = trace["heat_w"] / trace["power_w"]
        corr = np.corrcoef(trace["inlet_c"], ratio)[0, 1]
        assert abs(corr) < 0.2

    def test_power_in_paper_band(self, trace):
        assert trace["power_w"].min() > 9_000
        assert trace["power_w"].max() < 36_000

    def test_inlet_sweep(self, trace):
        assert trace["inlet_c"][0] < 32
        assert trace["inlet_c"][-1] > 55
        assert (np.diff(trace["inlet_c"]) >= 0).all()

    def test_outlet_heat_balance_consistent(self):
        # Computing heat from flow * rho * cp * dT recovers the model's
        # heat output — the virtual-sensor computation of Figure 9.
        model = CoolingCircuitModel(seed=2)
        t = 7 * 3600 * NS_PER_SEC
        flow_m3s = model.flow_m3h(t) / 3600.0
        dt = model.outlet_temp_c(t) - model.inlet_temp_c(t)
        heat = flow_m3s * WATER_DENSITY * WATER_CP * dt
        assert heat == pytest.approx(model.heat_removed_w(t), rel=1e-9)

    def test_install_channels_scaled(self):
        model = CoolingCircuitModel(seed=3)
        device = DeviceModel(clock=lambda: 3600 * NS_PER_SEC)
        model.install(device)
        assert set(device.channels()) == {
            "rack0_power",
            "rack1_power",
            "rack2_power",
            "flow",
            "inlet_temp",
            "outlet_temp",
        }
        t = 3600 * NS_PER_SEC
        assert device.read("inlet_temp") == int(round(model.inlet_temp_c(t) * 100))
        assert device.read("flow") == int(round(model.flow_m3h(t) * 1000))

    def test_deterministic(self):
        a = CoolingCircuitModel(seed=5).trace(interval_s=600)
        b = CoolingCircuitModel(seed=5).trace(interval_s=600)
        assert np.array_equal(a["power_w"], b["power_w"])
