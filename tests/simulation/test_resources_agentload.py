"""Tests for the CPU-load/memory models (Figs 6-7) and agent load (Fig 8)."""

import numpy as np
import pytest

from repro.simulation.agentload import AgentLoadModel
from repro.simulation.architectures import ARCHITECTURES, HASWELL, KNL, SKYLAKE
from repro.simulation.resources import (
    BYTES_PER_READING,
    ResourceModel,
    eq1_interpolate,
    fit_load_curve,
)


class TestCpuLoadModel:
    def test_fig7_anchors(self):
        # Peak loads at 100k readings/s: Skylake ~3%, KNL ~8%.
        assert ResourceModel(SKYLAKE).cpu_load_pct(10_000, 100) == pytest.approx(3.0, abs=0.2)
        assert ResourceModel(KNL).cpu_load_pct(10_000, 100) == pytest.approx(8.0, abs=0.4)

    def test_below_one_percent_at_1000_rate(self):
        # Paper: "CPU load is below 1% for configurations with a
        # sensor rate of 1,000 or less" on all architectures.
        for arch in ARCHITECTURES.values():
            assert ResourceModel(arch).cpu_load_pct(1000, 1000) < 1.0

    def test_linearity(self):
        model = ResourceModel(HASWELL)
        assert model.cpu_load_pct(2000, 1000) == pytest.approx(
            2 * model.cpu_load_pct(1000, 1000)
        )

    def test_measured_noise_is_deterministic(self):
        a = ResourceModel(SKYLAKE, seed=1).cpu_load_measured(500, 1000)
        b = ResourceModel(SKYLAKE, seed=1).cpu_load_measured(500, 1000)
        assert a == b

    def test_measured_close_to_expected(self):
        model = ResourceModel(SKYLAKE)
        expected = model.cpu_load_pct(10_000, 100)
        measured = model.cpu_load_measured(10_000, 100)
        assert measured == pytest.approx(expected, rel=0.25)


class TestMemoryModel:
    def test_fig6b_peak_anchor(self):
        # ~350 MB at 10,000 sensors / 100 ms on Skylake.
        assert ResourceModel(SKYLAKE).memory_mb(10_000, 100) == pytest.approx(350, abs=25)

    def test_production_configs_below_50mb(self):
        # Paper: "well below 50MB for typical production configurations".
        assert ResourceModel(SKYLAKE).memory_mb(1000, 1000) < 50

    def test_haswell_production_anchor(self):
        # Table 1 production: 750 sensors at 1 s -> ~25 MB average.
        assert ResourceModel(HASWELL).memory_mb(750, 1000) == pytest.approx(25, abs=4)

    def test_knl_production_anchor(self):
        # 3176 sensors at 1 s -> ~72 MB average.
        assert ResourceModel(KNL).memory_mb(3176, 1000) == pytest.approx(72, abs=6)

    def test_memory_scales_with_cache_window(self):
        model = ResourceModel(SKYLAKE)
        small = model.memory_mb(1000, 1000, cache_ms=60_000)
        large = model.memory_mb(1000, 1000, cache_ms=240_000)
        assert large > small
        delta = large - small
        assert delta == pytest.approx(1000 * 180 * BYTES_PER_READING / 1e6, rel=0.01)


class TestEq1:
    def test_exact_on_linear_data(self):
        # Equation 1 is exact when the true curve is linear — the
        # paper's justification for recommending it.
        model = ResourceModel(SKYLAKE)
        rate_a, rate_b, target = 1000.0, 100_000.0, 42_000.0
        predicted = eq1_interpolate(
            rate_a,
            model.cpu_load_pct(1000, 1000),
            rate_b,
            model.cpu_load_pct(10_000, 100),
            target,
        )
        assert predicted == pytest.approx(model.cpu_load_pct(42_000, 1000), rel=1e-9)

    def test_extrapolation(self):
        assert eq1_interpolate(0, 0.0, 10, 1.0, 20) == pytest.approx(2.0)

    def test_degenerate_anchors_rejected(self):
        with pytest.raises(ValueError):
            eq1_interpolate(5, 1.0, 5, 2.0, 7)


class TestFitLoadCurve:
    def test_r2_near_one_on_model_output(self):
        # The Figure 7 claim: "distinctly linear scaling curve".
        model = ResourceModel(KNL)
        configs = [(10, 1000), (100, 1000), (1000, 1000), (5000, 1000), (10_000, 100)]
        rates = np.array([s * 1000 / i for s, i in configs])
        loads = np.array([model.cpu_load_measured(s, i) for s, i in configs])
        slope, intercept, r2 = fit_load_curve(rates, loads)
        assert r2 > 0.99
        assert slope == pytest.approx(KNL.cpu_load_coeff, rel=0.15)


class TestAgentLoadModel:
    def test_fig8_worst_case_anchor(self):
        # 50 hosts x 10,000 sensors at 1 s -> ~900% (9 cores).
        model = AgentLoadModel()
        assert model.cpu_load_pct(50, 10_000) == pytest.approx(900, abs=40)
        assert model.saturated_cores(50, 10_000) == pytest.approx(9.0, abs=0.5)

    def test_single_core_saturation_at_50_hosts_1000_sensors(self):
        model = AgentLoadModel()
        load = model.cpu_load_pct(50, 1000)
        assert 90 <= load <= 130  # about one full core

    def test_small_configs_light(self):
        model = AgentLoadModel()
        assert model.cpu_load_pct(1, 10) < 2.0

    def test_monotone_in_hosts_and_sensors(self):
        model = AgentLoadModel()
        assert model.cpu_load_pct(2, 100) > model.cpu_load_pct(1, 100)
        assert model.cpu_load_pct(2, 200) > model.cpu_load_pct(2, 100)

    def test_insert_rate(self):
        assert AgentLoadModel().insert_rate(50, 10_000) == 500_000

    def test_measured_deterministic(self):
        assert AgentLoadModel(seed=1).cpu_load_measured(10, 100) == AgentLoadModel(
            seed=1
        ).cpu_load_measured(10, 100)
