"""Tests for the Pusher interference model and measurement protocol."""

import pytest

from repro.simulation.architectures import ARCHITECTURES, HASWELL, KNL, SKYLAKE
from repro.simulation.overhead import MeasurementProtocol, OverheadModel, PusherSetup
from repro.simulation.workloads import AMG, CORAL2_APPS, KRIPKE, LAMMPS, QUICKSILVER


class TestPusherSetup:
    def test_rate(self):
        assert PusherSetup(sensors=1000, interval_ms=1000).rate == 1000.0
        assert PusherSetup(sensors=10_000, interval_ms=100).rate == 100_000.0


class TestComputeOverhead:
    @pytest.mark.parametrize("arch", list(ARCHITECTURES.values()), ids=lambda a: a.name)
    def test_table1_anchor_reproduced(self, arch):
        model = OverheadModel(arch)
        setup = PusherSetup(
            sensors=arch.production_sensors, interval_ms=1000, mode="production"
        )
        assert model.compute_overhead_pct(setup) == pytest.approx(
            arch.reported_overhead_pct, abs=0.05
        )

    def test_fig5_corner_anchors(self):
        # Tester-only overhead at 100k readings/s (Fig. 5 top-right cells).
        corner = PusherSetup(sensors=10_000, interval_ms=100)
        assert OverheadModel(SKYLAKE).compute_overhead_pct(corner) == pytest.approx(0.65, abs=0.05)
        assert OverheadModel(HASWELL).compute_overhead_pct(corner) == pytest.approx(1.8, abs=0.1)
        assert OverheadModel(KNL).compute_overhead_pct(corner) == pytest.approx(3.5, abs=0.2)

    def test_linear_in_rate(self):
        model = OverheadModel(SKYLAKE)
        o1 = model.compute_overhead_pct(PusherSetup(1000, 1000))
        o2 = model.compute_overhead_pct(PusherSetup(2000, 1000))
        assert o2 == pytest.approx(2 * o1)

    def test_production_exceeds_tester(self):
        model = OverheadModel(SKYLAKE)
        tester = model.compute_overhead_pct(PusherSetup(2477, 1000, mode="tester"))
        production = model.compute_overhead_pct(PusherSetup(2477, 1000, mode="production"))
        assert production > tester

    def test_architecture_ordering(self):
        # KNL (weak single-thread) worst, Skylake best (paper section 6.2.2).
        setup = PusherSetup(5000, 100)
        o = {
            name: OverheadModel(arch).compute_overhead_pct(setup)
            for name, arch in ARCHITECTURES.items()
        }
        assert o["skylake"] < o["haswell"] < o["knl"]

    def test_sub_one_percent_for_typical_configs(self):
        # Paper: "in all configurations with 1,000 sensors or less ...
        # it is below 1%".
        for arch in ARCHITECTURES.values():
            model = OverheadModel(arch)
            assert model.compute_overhead_pct(PusherSetup(1000, 1000)) < 1.0


class TestMpiOverhead:
    def test_amg_linear_in_nodes(self):
        model = OverheadModel(SKYLAKE)
        setup = PusherSetup(2477, 1000, mode="production")
        o = [model.mpi_overhead_pct(setup, AMG, n) for n in (128, 256, 512, 1024)]
        assert o[-1] > 8.0  # ~9% at 1024 in the paper
        diffs = [o[i + 1] - o[i] for i in range(3)]
        assert diffs[2] > diffs[1] > diffs[0] > 0  # doubling nodes -> growing steps

    def test_insensitive_apps_stay_low_and_flat(self):
        model = OverheadModel(SKYLAKE)
        setup = PusherSetup(2477, 1000, mode="production")
        for app in (LAMMPS, KRIPKE, QUICKSILVER):
            o128 = model.mpi_overhead_pct(setup, app, 128)
            o1024 = model.mpi_overhead_pct(setup, app, 1024)
            assert o1024 < 3.0
            assert o1024 - o128 < 1.0

    def test_core_config_dominates_amg_overhead(self):
        # Paper: "in AMG [network interference] causes most of the
        # total overhead" — tester-only ~ production for AMG.
        model = OverheadModel(SKYLAKE)
        total = model.mpi_overhead_pct(
            PusherSetup(2477, 1000, mode="production"), AMG, 1024
        )
        core = model.mpi_overhead_pct(PusherSetup(2477, 1000, mode="tester"), AMG, 1024)
        assert core / total > 0.75

    def test_burst_mode_helps_amg(self):
        model = OverheadModel(SKYLAKE)
        continuous = model.mpi_overhead_pct(
            PusherSetup(2477, 1000, send_mode="continuous"), AMG, 1024
        )
        burst = model.mpi_overhead_pct(
            PusherSetup(2477, 1000, send_mode="burst"), AMG, 1024
        )
        assert burst < continuous

    def test_burst_mode_negligible_for_insensitive_apps(self):
        model = OverheadModel(SKYLAKE)
        continuous = model.mpi_overhead_pct(
            PusherSetup(2477, 1000, send_mode="continuous"), KRIPKE, 1024
        )
        burst = model.mpi_overhead_pct(
            PusherSetup(2477, 1000, send_mode="burst"), KRIPKE, 1024
        )
        assert continuous - burst < 0.3


class TestMeasurementProtocol:
    def test_deterministic_per_label(self):
        a = MeasurementProtocol(seed=1).measure(1.0, "cell/1")
        b = MeasurementProtocol(seed=1).measure(1.0, "cell/1")
        assert a == b

    def test_clamped_at_zero(self):
        protocol = MeasurementProtocol(noise_pct=1.0, seed=3)
        measured = [protocol.measure(0.0, f"zero/{i}") for i in range(100)]
        assert min(measured) == 0.0

    def test_low_true_overhead_often_reads_zero(self):
        # The paper's Figure 5 zeros: tiny true overheads disappear
        # under run-to-run noise.
        protocol = MeasurementProtocol(seed=5)
        measured = [protocol.measure(0.02, f"tiny/{i}") for i in range(50)]
        assert sum(1 for m in measured if m == 0.0) > 5

    def test_large_overhead_recovered(self):
        protocol = MeasurementProtocol(seed=7)
        measured = [protocol.measure(5.0, f"big/{i}") for i in range(20)]
        mean = sum(measured) / len(measured)
        assert mean == pytest.approx(5.0, abs=0.5)

    def test_all_coral2_apps_modeled(self):
        assert set(CORAL2_APPS) == {"kripke", "quicksilver", "lammps", "amg"}
