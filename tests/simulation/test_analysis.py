"""Tests for the analysis helpers (KDE, regression)."""

import numpy as np
import pytest

from repro.analysis import distribution_modes, kde_pdf, linear_fit
from repro.common.errors import QueryError


class TestKde:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, 2000)
        grid, density = kde_pdf(samples)
        area = np.trapezoid(density, grid) if hasattr(np, "trapezoid") else np.trapz(density, grid)
        assert area == pytest.approx(1.0, abs=0.02)

    def test_peak_near_mean(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(5.0, 1.0, 2000)
        grid, density = kde_pdf(samples)
        assert grid[np.argmax(density)] == pytest.approx(5.0, abs=0.3)

    def test_custom_grid(self):
        rng = np.random.default_rng(2)
        grid = np.linspace(0, 10, 50)
        out_grid, density = kde_pdf(rng.normal(5, 1, 500), grid=grid)
        assert out_grid is grid and density.size == 50

    def test_too_few_samples_rejected(self):
        with pytest.raises(QueryError):
            kde_pdf(np.array([1.0, 2.0]))

    def test_constant_series_rejected(self):
        with pytest.raises(QueryError):
            kde_pdf(np.full(100, 3.0))


class TestModes:
    def test_unimodal(self):
        rng = np.random.default_rng(3)
        modes = distribution_modes(rng.normal(10, 1, 3000))
        assert len(modes) == 1
        assert modes[0] == pytest.approx(10.0, abs=0.5)

    def test_bimodal(self):
        rng = np.random.default_rng(4)
        samples = np.concatenate([rng.normal(0, 1, 1500), rng.normal(8, 1, 1500)])
        modes = distribution_modes(samples)
        assert len(modes) == 2

    def test_minor_wiggles_filtered(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(0, 1, 300)  # noisy KDE but one real mode
        modes = distribution_modes(samples, min_prominence=0.2)
        assert len(modes) == 1


class TestLinearFit:
    def test_perfect_line(self):
        x = np.arange(10, dtype=np.float64)
        fit = linear_fit(x, 3.0 * x + 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert fit.predict(3.0) == pytest.approx(6.0)

    def test_noisy_r2_below_one(self):
        rng = np.random.default_rng(6)
        x = np.linspace(0, 10, 100)
        y = x + rng.normal(0, 2.0, 100)
        fit = linear_fit(x, y)
        assert 0.5 < fit.r2 < 1.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            linear_fit(np.array([1.0]), np.array([1.0]))
