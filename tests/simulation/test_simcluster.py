"""Tests for the simulated-deployment helper."""

import pytest

from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster
from repro.storage import MemoryBackend, StorageCluster


class TestSimulatedCluster:
    def test_default_topology(self):
        sim = SimulatedCluster(SimClusterConfig(hosts=2, sensors_per_host=5))
        assert sim.total_sensors == 10
        assert sim.run(3) == sim.expected_readings(3) == 30

    def test_subsecond_interval(self):
        sim = SimulatedCluster(
            SimClusterConfig(hosts=1, sensors_per_host=4, interval_ms=250)
        )
        assert sim.run(2) == 2 * 4 * 4  # four cycles per second

    def test_repeated_runs_accumulate(self):
        sim = SimulatedCluster(SimClusterConfig(hosts=1, sensors_per_host=3))
        sim.run(5)
        sim.run(5)
        assert sim.agent.readings_stored == 30

    def test_multi_node_storage_with_replication(self):
        sim = SimulatedCluster(
            SimClusterConfig(
                hosts=4, sensors_per_host=10, storage_nodes=2, replication=2
            )
        )
        sim.run(5)
        assert isinstance(sim.backend, StorageCluster)
        assert len(sim.backend.nodes) == 2
        # Replication 2 over 2 nodes: every reading twice.
        assert sim.backend.row_count == 2 * sim.agent.readings_stored

    def test_memory_backend_flag(self):
        sim = SimulatedCluster(
            SimClusterConfig(hosts=1, sensors_per_host=2, use_memory_backend=True)
        )
        assert isinstance(sim.backend, MemoryBackend)
        sim.run(2)
        assert len(sim.backend.sids()) == 2

    def test_all_sensor_series_complete(self):
        sim = SimulatedCluster(SimClusterConfig(hosts=3, sensors_per_host=4))
        sim.run(10)
        for sid in sim.backend.sids():
            ts, _ = sim.backend.query(sid, 0, 1 << 62)
            assert ts.size == 10
