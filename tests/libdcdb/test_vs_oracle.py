"""Property test: virtual-sensor evaluation vs a direct numpy oracle.

Generates random arithmetic expressions over sensors sharing one time
grid and compares the evaluator's output against computing the same
expression directly on the raw arrays.  Shared grids remove the
interpolation degree of freedom, so any mismatch is an evaluator bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.timeutil import NS_PER_SEC
from repro.core.sid import SidMapper
from repro.libdcdb.api import DCDBClient, SensorConfig
from repro.libdcdb.virtualsensors import Evaluator, parse_expression
from repro.storage.memory import MemoryBackend

N_SENSORS = 3
N_POINTS = 20


def build_env(values: np.ndarray):
    """Backend with N_SENSORS series on a shared 1 s grid."""
    backend = MemoryBackend()
    mapper = SidMapper()
    client = DCDBClient(backend)
    for i in range(N_SENSORS):
        topic = f"/o/s{i}"
        sid = mapper.sid_for_topic(topic)
        backend.put_metadata(f"sidmap{topic}", sid.hex())
        client.set_sensor_config(SensorConfig(topic=topic, unit="count"))
        backend.insert_batch(
            (sid, (t + 1) * NS_PER_SEC, int(values[i, t]), 0) for t in range(N_POINTS)
        )
    return client


@st.composite
def expressions(draw, depth=0):
    """Random expression text plus a numpy-evaluating oracle."""
    choice = draw(
        st.sampled_from(
            ["sensor", "const"] if depth >= 3 else ["sensor", "const", "binop", "neg"]
        )
    )
    if choice == "sensor":
        idx = draw(st.integers(0, N_SENSORS - 1))
        return f"</o/s{idx}>", lambda vals: vals[idx].astype(np.float64), True
    if choice == "const":
        value = draw(st.integers(1, 9))
        return str(value), lambda vals, v=value: float(v), False
    if choice == "neg":
        text, fn, has_sensor = draw(expressions(depth=depth + 1))
        return f"-({text})", lambda vals: -fn(vals), has_sensor
    op = draw(st.sampled_from(["+", "-", "*"]))
    lt, lf, ls = draw(expressions(depth=depth + 1))
    rt, rf, rs = draw(expressions(depth=depth + 1))
    return (
        f"({lt} {op} {rt})",
        lambda vals: {
            "+": lambda: lf(vals) + rf(vals),
            "-": lambda: lf(vals) - rf(vals),
            "*": lambda: lf(vals) * rf(vals),
        }[op](),
        ls or rs,
    )


class TestEvaluatorOracle:
    @settings(max_examples=80, deadline=None)
    @given(
        expr=expressions(),
        data=st.lists(
            st.lists(st.integers(-1000, 1000), min_size=N_POINTS, max_size=N_POINTS),
            min_size=N_SENSORS,
            max_size=N_SENSORS,
        ),
    )
    def test_matches_numpy(self, expr, data):
        text, oracle, has_sensor = expr
        if not has_sensor:
            return  # constant expressions are rejected by design
        values = np.asarray(data, dtype=np.int64)
        client = build_env(values)
        evaluator = Evaluator(client._evaluator.resolver)
        ts, out, _unit = evaluator.evaluate(
            parse_expression(text), NS_PER_SEC, N_POINTS * NS_PER_SEC
        )
        expected = oracle(values)
        expected_arr = (
            np.full(N_POINTS, expected) if np.isscalar(expected) else expected
        )
        assert ts.size == N_POINTS
        assert np.allclose(out, expected_arr)
