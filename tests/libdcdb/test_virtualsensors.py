"""Tests for virtual-sensor evaluation: units, interpolation, caching."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.core.sid import SidMapper
from repro.libdcdb.api import DCDBClient, SensorConfig
from repro.libdcdb.virtualsensors import VirtualSensorDef
from repro.storage.memory import MemoryBackend


@pytest.fixture
def env():
    """Backend pre-loaded with two power sensors and one temp sensor."""
    backend = MemoryBackend()
    mapper = SidMapper()
    client = DCDBClient(backend)

    def load(topic, unit, scale, points):
        sid = mapper.sid_for_topic(topic)
        backend.put_metadata(f"sidmap{topic}", sid.hex())
        client.set_sensor_config(SensorConfig(topic=topic, unit=unit, scale=scale))
        for t, v in points:
            backend.insert(sid, t, v)

    # 1 Hz power sensor in W.
    load(
        "/hpc/n0/power",
        "W",
        1.0,
        [(t * NS_PER_SEC, 200) for t in range(1, 61)],
    )
    # 1 Hz power sensor reported in mW (tests unit conversion).
    load(
        "/hpc/n1/power",
        "mW",
        1.0,
        [(t * NS_PER_SEC, 300_000) for t in range(1, 61)],
    )
    # 2 Hz temperature (tests interpolation of differing rates).
    load(
        "/hpc/n0/temp",
        "C",
        1.0,
        [(t * NS_PER_SEC // 2, 40 + (t % 2)) for t in range(2, 122)],
    )
    return client, backend


class TestEvaluation:
    def test_sum_with_automatic_unit_conversion(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(
                name="total",
                expression="</hpc/n0/power> + </hpc/n1/power>",
                unit="W",
            )
        )
        ts, vals = client.query("/virtual/total", NS_PER_SEC, 60 * NS_PER_SEC)
        # 200 W + 300,000 mW = 500 W.
        assert vals[0] == pytest.approx(500.0, abs=0.01)

    def test_incompatible_units_rejected_at_query(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(
                name="nonsense", expression="</hpc/n0/power> + </hpc/n0/temp>"
            )
        )
        with pytest.raises(QueryError, match="incompatible units"):
            client.query("/virtual/nonsense", NS_PER_SEC, 10 * NS_PER_SEC)

    def test_aggregation_over_prefix(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="agg", expression="sum(</hpc/n0/power>)", unit="W")
        )
        ts, vals = client.query("/virtual/agg", NS_PER_SEC, 30 * NS_PER_SEC)
        assert vals[0] == pytest.approx(200.0, abs=0.01)

    def test_scalar_arithmetic(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(
                name="kw", expression="</hpc/n0/power> / 1000", unit="kW"
            )
        )
        _, vals = client.query("/virtual/kw", NS_PER_SEC, 30 * NS_PER_SEC)
        assert vals[0] == pytest.approx(0.2, abs=1e-3)

    def test_ratio_of_sensors(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(
                name="ratio",
                expression="</hpc/n0/power> / </hpc/n1/power>",
                unit="ratio",
                scale=1e7,
            )
        )
        _, vals = client.query("/virtual/ratio", NS_PER_SEC, 30 * NS_PER_SEC)
        # Ratio uses raw (physical in own units): 200 W / 300000 mW.
        assert vals[0] == pytest.approx(200.0 / 300000.0, rel=1e-3)

    def test_differing_sampling_rates_interpolated(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(
                name="mix",
                expression="</hpc/n0/temp> * 0 + </hpc/n0/temp>",
                unit="C",
                interval_ns=NS_PER_SEC // 2,
            )
        )
        ts, vals = client.query("/virtual/mix", NS_PER_SEC, 10 * NS_PER_SEC)
        assert ts.size >= 18  # 2 Hz grid over 9+ seconds

    def test_constant_expression_rejected(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="const", expression="1 + 2")
        )
        with pytest.raises(QueryError, match="constant"):
            client.query("/virtual/const", 0, NS_PER_SEC)

    def test_empty_range_rejected(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="e", expression="</hpc/n0/power>", unit="W")
        )
        with pytest.raises(QueryError, match="no data"):
            client.evaluate_virtual("e", 10**18, 2 * 10**18)

    def test_division_by_zero_detected(self, env):
        client, backend = env
        mapper = SidMapper()
        sid = mapper.sid_for_topic("/z/zero")
        # Colliding numbering with the fixture topics is fine: we
        # register our own mapping key.
        sid = type(sid)(sid.value + 999)
        backend.put_metadata("sidmap/z/zero", sid.hex())
        backend.insert(sid, NS_PER_SEC, 0)
        backend.insert(sid, 2 * NS_PER_SEC, 0)
        client.define_virtual_sensor(
            VirtualSensorDef(name="divzero", expression="</hpc/n0/power> / </z/zero>")
        )
        with pytest.raises(QueryError, match="division by zero"):
            client.query("/virtual/divzero", NS_PER_SEC, 2 * NS_PER_SEC)


class TestNestingAndCycles:
    def test_virtual_sensor_referencing_virtual(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(
                name="total",
                expression="</hpc/n0/power> + </hpc/n1/power>",
                unit="W",
            )
        )
        client.define_virtual_sensor(
            VirtualSensorDef(
                name="total_kw", expression="<total> / 1000", unit="kW"
            )
        )
        _, vals = client.query("/virtual/total_kw", NS_PER_SEC, 30 * NS_PER_SEC)
        assert vals.size > 0

    def test_self_reference_rejected(self, env):
        client, _ = env
        with pytest.raises(QueryError, match="cycle|itself"):
            client.define_virtual_sensor(
                VirtualSensorDef(name="loop", expression="</virtual/loop> + 1")
            )

    def test_mutual_cycle_rejected(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="a", expression="</hpc/n0/power> + 0", unit="W")
        )
        # Redefine a to depend on b after b exists -> cycle check at define.
        client.define_virtual_sensor(
            VirtualSensorDef(name="b", expression="<a> + 1", unit="W")
        )
        with pytest.raises(QueryError, match="cycle"):
            client.define_virtual_sensor(
                VirtualSensorDef(name="a", expression="<b> + 1", unit="W")
            )


class TestCaching:
    def test_write_back_reused(self, env):
        client, backend = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="cached", expression="sum(</hpc/n0/power>)", unit="W")
        )
        ts1, vals1 = client.query("/virtual/cached", NS_PER_SEC, 30 * NS_PER_SEC)
        # Poison the underlying data: a cached re-query must not see it.
        sid = client.sid_of("/hpc/n0/power")
        backend.insert(sid, 5 * NS_PER_SEC, 999_999)
        ts2, vals2 = client.query("/virtual/cached", NS_PER_SEC, 30 * NS_PER_SEC)
        assert np.allclose(vals1, vals2)

    def test_uncovered_range_recomputed(self, env):
        client, _ = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="grow", expression="sum(</hpc/n0/power>)", unit="W")
        )
        ts1, _ = client.query("/virtual/grow", NS_PER_SEC, 10 * NS_PER_SEC)
        ts2, _ = client.query("/virtual/grow", NS_PER_SEC, 50 * NS_PER_SEC)
        assert ts2.size > ts1.size

    def test_definitions_persisted(self, env):
        client, backend = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="persist", expression="sum(</hpc/n1/power>)", unit="W")
        )
        # A fresh client over the same backend sees the definition.
        again = DCDBClient(backend)
        assert again.virtual_sensor("persist") is not None
        assert len(again.virtual_sensors()) >= 1

    def test_delete_removes_definition_and_cache(self, env):
        client, backend = env
        client.define_virtual_sensor(
            VirtualSensorDef(name="gone", expression="sum(</hpc/n0/power>)", unit="W")
        )
        client.query("/virtual/gone", NS_PER_SEC, 10 * NS_PER_SEC)
        client.delete_virtual_sensor("gone")
        assert client.virtual_sensor("gone") is None
        assert backend.get_metadata("vcache/gone") is None
