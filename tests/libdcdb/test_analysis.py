"""Tests for integrals, derivatives, and summaries."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.libdcdb.analysis import derivative, integral, summary


class TestIntegral:
    def test_constant_power_to_energy(self):
        # 100 W over 10 s = 1000 J.
        ts = np.arange(0, 11, dtype=np.int64) * NS_PER_SEC
        vals = np.full(11, 100.0)
        assert integral(ts, vals) == pytest.approx(1000.0)

    def test_linear_ramp(self):
        # 0..10 over 10 s: trapezoid = 50.
        ts = np.arange(0, 11, dtype=np.int64) * NS_PER_SEC
        vals = np.arange(0, 11, dtype=np.float64)
        assert integral(ts, vals) == pytest.approx(50.0)

    def test_single_point_raises(self):
        with pytest.raises(QueryError):
            integral(np.array([1], dtype=np.int64), np.array([1.0]))


class TestDerivative:
    def test_energy_to_power(self):
        # Energy meter gaining 100 J/s -> 100 W everywhere.
        ts = np.arange(0, 5, dtype=np.int64) * NS_PER_SEC
        vals = np.arange(0, 5, dtype=np.float64) * 100.0
        mid_ts, rates = derivative(ts, vals)
        assert rates.tolist() == pytest.approx([100.0] * 4)
        assert mid_ts.tolist() == [NS_PER_SEC // 2 + i * NS_PER_SEC for i in range(4)]

    def test_integral_of_derivative_round_trip(self):
        rng = np.random.default_rng(1)
        ts = np.arange(0, 100, dtype=np.int64) * NS_PER_SEC
        vals = np.cumsum(rng.uniform(0, 10, 100))
        mid_ts, rates = derivative(ts, vals)
        recovered = integral(mid_ts, rates)
        # integral(d/dt) over the midpoint series approximates the total change
        assert recovered == pytest.approx(vals[-1] - vals[0], rel=0.05)

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(QueryError):
            derivative(np.array([1, 1], dtype=np.int64), np.array([1.0, 2.0]))

    def test_too_short_rejected(self):
        with pytest.raises(QueryError):
            derivative(np.array([1], dtype=np.int64), np.array([1.0]))


class TestSummary:
    def test_statistics(self):
        ts = np.arange(0, 5, dtype=np.int64) * NS_PER_SEC
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        s = summary(ts, vals)
        assert s.count == 5
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.mean == 3.0
        assert s.span_seconds == 4.0

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            summary(np.empty(0, dtype=np.int64), np.empty(0))
