"""Tests for the libDCDB raw-series cache and batched reads.

Covers the TTL'd LRU cache on :meth:`DCDBClient.query_raw` (hit/miss
accounting, expiry, eviction, explicit and write-through
invalidation), the batched ``query_raw_many``/``prefetch_raw`` paths,
and the cache-coherence requirement that virtual-sensor evaluation is
bit-identical with the cache enabled and disabled.
"""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.core.sid import SidMapper
from repro.libdcdb.api import DCDBClient
from repro.libdcdb.virtualsensors import VirtualSensorDef
from repro.storage.memory import MemoryBackend

TOPICS = [
    "/hpc/rack0/node0/power",
    "/hpc/rack0/node1/power",
    "/hpc/rack1/node0/power",
]


def make_env(**client_kwargs):
    backend = MemoryBackend()
    mapper = SidMapper()
    for topic in TOPICS:
        sid = mapper.sid_for_topic(topic)
        backend.put_metadata(f"sidmap{topic}", sid.hex())
        for t in range(1, 11):
            backend.insert(sid, t * NS_PER_SEC, t * 100)
    client = DCDBClient(backend, **client_kwargs)
    return client, backend, mapper


def counters(client):
    hits = client.metrics.counter("dcdb_query_cache_hits_total").value
    misses = client.metrics.counter("dcdb_query_cache_misses_total").value
    return hits, misses


SPAN = (0, 20 * NS_PER_SEC)


class TestCacheBasics:
    def test_repeat_query_hits_cache(self):
        client, backend, _ = make_env()
        first = client.query_raw(TOPICS[0], *SPAN)
        backend.insert(client.sid_of(TOPICS[0]), 99 * NS_PER_SEC, 1)
        second = client.query_raw(TOPICS[0], *SPAN)  # served from cache
        assert second[0].tolist() == first[0].tolist()
        hits, misses = counters(client)
        assert hits == 1 and misses == 1

    def test_different_range_misses(self):
        client, _, _ = make_env()
        client.query_raw(TOPICS[0], *SPAN)
        client.query_raw(TOPICS[0], 0, 5 * NS_PER_SEC)
        assert counters(client) == (0, 2)

    def test_cached_arrays_are_read_only(self):
        client, _, _ = make_env()
        client.query_raw(TOPICS[0], *SPAN)
        ts, vals = client.query_raw(TOPICS[0], *SPAN)
        with pytest.raises(ValueError):
            ts[0] = 0
        with pytest.raises(ValueError):
            vals[0] = 0

    def test_disabled_cache_always_reads_backend(self):
        client, backend, _ = make_env(cache_size=0)
        client.query_raw(TOPICS[0], *SPAN)
        backend.insert(client.sid_of(TOPICS[0]), 15 * NS_PER_SEC, 7)
        ts, _ = client.query_raw(TOPICS[0], *SPAN)
        assert 15 * NS_PER_SEC in ts.tolist()
        assert counters(client) == (0, 0)  # no cache, no accounting


class TestTtlAndEviction:
    def test_entry_expires_after_ttl(self):
        now = [0.0]
        client, backend, _ = make_env(cache_ttl_s=5.0, cache_clock=lambda: now[0])
        client.query_raw(TOPICS[0], *SPAN)
        backend.insert(client.sid_of(TOPICS[0]), 15 * NS_PER_SEC, 7)
        now[0] = 4.9
        ts, _ = client.query_raw(TOPICS[0], *SPAN)
        assert 15 * NS_PER_SEC not in ts.tolist()  # still cached
        now[0] = 5.1
        ts, _ = client.query_raw(TOPICS[0], *SPAN)
        assert 15 * NS_PER_SEC in ts.tolist()  # expired: fresh read
        assert counters(client) == (1, 2)

    def test_lru_eviction_beyond_capacity(self):
        client, _, _ = make_env(cache_size=2)
        client.query_raw(TOPICS[0], *SPAN)
        client.query_raw(TOPICS[1], *SPAN)
        client.query_raw(TOPICS[0], *SPAN)  # refresh LRU order
        client.query_raw(TOPICS[2], *SPAN)  # evicts TOPICS[1]
        client.query_raw(TOPICS[0], *SPAN)  # hit
        client.query_raw(TOPICS[1], *SPAN)  # miss: was evicted
        hits, misses = counters(client)
        assert hits == 2 and misses == 4


class TestInvalidation:
    def test_explicit_invalidate_topic(self):
        client, backend, _ = make_env()
        client.query_raw(TOPICS[0], *SPAN)
        client.query_raw(TOPICS[1], *SPAN)
        assert client.invalidate_cache(TOPICS[0]) == 1
        backend.insert(client.sid_of(TOPICS[0]), 15 * NS_PER_SEC, 7)
        ts, _ = client.query_raw(TOPICS[0], *SPAN)
        assert 15 * NS_PER_SEC in ts.tolist()
        client.query_raw(TOPICS[1], *SPAN)  # untouched entry still hits
        assert counters(client)[0] == 1

    def test_invalidate_all(self):
        client, _, _ = make_env()
        client.query_raw(TOPICS[0], *SPAN)
        client.query_raw(TOPICS[1], *SPAN)
        assert client.invalidate_cache() == 2

    def test_register_topic_invalidates(self):
        client, _, mapper = make_env()
        client.query_raw(TOPICS[0], *SPAN)
        client.register_topic(TOPICS[0], mapper.sid_for_topic(TOPICS[0]))
        client.query_raw(TOPICS[0], *SPAN)
        assert counters(client)[0] == 0  # re-registration dropped the entry

    def test_delete_before_invalidates(self):
        # Regression: deleting through the client must drop the topic's
        # cached raw series — a TTL'd entry would otherwise keep
        # serving the deleted readings until expiry.
        client, _, _ = make_env()
        before, _ = client.query_raw(TOPICS[0], *SPAN)
        assert before.size == 10
        removed = client.delete_before(TOPICS[0], 6 * NS_PER_SEC)
        assert removed == 5
        ts, _ = client.query_raw(TOPICS[0], *SPAN)
        assert ts.tolist() == [t * NS_PER_SEC for t in range(6, 11)]
        client.query_raw(TOPICS[1], *SPAN)  # other topics keep their entries
        client.query_raw(TOPICS[1], *SPAN)
        assert counters(client)[0] == 1


class TestBatchedReads:
    def test_query_raw_many_matches_per_topic(self):
        client, _, _ = make_env(cache_size=0)
        bulk = client.query_raw_many(TOPICS, *SPAN)
        assert list(bulk) == TOPICS
        for topic in TOPICS:
            ts, vals = client.query_raw(topic, *SPAN)
            assert bulk[topic][0].tolist() == ts.tolist()
            assert bulk[topic][1].tolist() == vals.tolist()

    def test_query_raw_many_primes_cache(self):
        client, _, _ = make_env()
        client.query_raw_many(TOPICS, *SPAN)
        for topic in TOPICS:
            client.query_raw(topic, *SPAN)
        hits, misses = counters(client)
        assert hits == 3 and misses == 3

    def test_query_raw_many_unknown_topic_raises(self):
        client, _, _ = make_env()
        with pytest.raises(QueryError, match="unknown sensor topic"):
            client.query_raw_many([TOPICS[0], "/nope"], *SPAN)

    def test_prefetch_skips_unknown_and_virtual(self):
        client, _, _ = make_env()
        client.define_virtual_sensor(
            VirtualSensorDef(name="v", expression=f"<{TOPICS[0]}> * 2")
        )
        primed = client.prefetch_raw(
            [TOPICS[0], "/nope", "/virtual/v", TOPICS[1]], *SPAN
        )
        assert primed == 2
        client.query_raw(TOPICS[0], *SPAN)
        client.query_raw(TOPICS[1], *SPAN)
        assert counters(client)[0] == 2  # both served from the prefetch

    def test_prefetch_noop_when_cache_disabled(self):
        client, _, _ = make_env(cache_size=0)
        assert client.prefetch_raw(TOPICS, *SPAN) == 0


class TestVirtualSensorCoherence:
    EXPR = (
        f"(sum(<{'/'.join(TOPICS[0].split('/')[:2])}>) + <{TOPICS[2]}>) / 1000"
    )

    def _eval(self, **client_kwargs):
        client, _, _ = make_env(**client_kwargs)
        client.define_virtual_sensor(
            VirtualSensorDef(name="total", expression=self.EXPR)
        )
        return client.evaluate_virtual("total", 0, 20 * NS_PER_SEC)

    def test_bit_identical_with_cache_on_and_off(self):
        ts_on, vals_on = self._eval()
        ts_off, vals_off = self._eval(cache_size=0)
        assert np.array_equal(ts_on, ts_off)
        assert np.array_equal(vals_on, vals_off)  # exact, not approximate

    def test_evaluation_uses_batched_reads(self):
        client, backend, _ = make_env()
        calls = {"query": 0, "query_many": 0}
        original_query, original_many = backend.query, backend.query_many

        def counting_query(*args):
            calls["query"] += 1
            return original_query(*args)

        def counting_many(*args):
            calls["query_many"] += 1
            return original_many(*args)

        backend.query = counting_query
        backend.query_many = counting_many
        client.define_virtual_sensor(
            VirtualSensorDef(name="total", expression="sum(</hpc>)")
        )
        client.evaluate_virtual("total", 0, 20 * NS_PER_SEC)
        assert calls["query_many"] == 1  # whole subtree in one bulk read
        assert calls["query"] == 0

    def test_write_back_invalidates_result_topic(self):
        client, backend, _ = make_env()
        client.define_virtual_sensor(
            VirtualSensorDef(name="total", expression="sum(</hpc>)")
        )
        client.query("/virtual/total", 0, 20 * NS_PER_SEC)  # evaluate + write back
        first = client.query_raw("/virtual/total", 0, 40 * NS_PER_SEC)  # cached
        for topic in TOPICS:
            backend.insert(client.sid_of(topic), 30 * NS_PER_SEC, 1000)
        # A wider query re-evaluates and writes back more rows; the
        # write-through invalidation must drop the stale cached series.
        client.query("/virtual/total", 0, 40 * NS_PER_SEC)
        second = client.query_raw("/virtual/total", 0, 40 * NS_PER_SEC)
        assert second[0].size > first[0].size
