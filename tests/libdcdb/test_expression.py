"""Tests for the virtual-sensor expression parser."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import QueryError
from repro.libdcdb.virtualsensors import (
    Agg,
    BinOp,
    Neg,
    Num,
    SensorRef,
    parse_expression,
    referenced_sensors,
)


class TestParser:
    def test_number(self):
        assert parse_expression("42") == Num(42.0)

    def test_float_and_exponent(self):
        assert parse_expression("2.5e3") == Num(2500.0)

    def test_sensor_ref(self):
        assert parse_expression("</a/b/c>") == SensorRef("/a/b/c")

    def test_addition(self):
        node = parse_expression("<a> + <b>")
        assert node == BinOp("+", SensorRef("a"), SensorRef("b"))

    def test_precedence_mul_over_add(self):
        node = parse_expression("<a> + <b> * 2")
        assert node == BinOp("+", SensorRef("a"), BinOp("*", SensorRef("b"), Num(2.0)))

    def test_left_associativity(self):
        node = parse_expression("<a> - <b> - <c>")
        assert node == BinOp(
            "-", BinOp("-", SensorRef("a"), SensorRef("b")), SensorRef("c")
        )

    def test_parentheses_override(self):
        node = parse_expression("(<a> + <b>) * 2")
        assert node == BinOp("*", BinOp("+", SensorRef("a"), SensorRef("b")), Num(2.0))

    def test_unary_minus(self):
        assert parse_expression("-<a>") == Neg(SensorRef("a"))

    def test_double_negation(self):
        assert parse_expression("--3") == Neg(Neg(Num(3.0)))

    @pytest.mark.parametrize("func", ["sum", "avg", "min", "max"])
    def test_aggregation_functions(self, func):
        assert parse_expression(f"{func}(</rack0>)") == Agg(func, "/rack0")

    def test_nested_expression(self):
        text = "(sum(</r0/power>) - <losses>) / (1000 * 1.5)"
        node = parse_expression(text)
        assert isinstance(node, BinOp) and node.op == "/"

    def test_whitespace_tolerant(self):
        assert parse_expression("  < a >  +  1 ") == BinOp(
            "+", SensorRef("a"), Num(1.0)
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<>",
            "<unterminated",
            "1 +",
            "(1",
            "1)",
            "frobnicate(<a>)",
            "sum(1)",
            "sum(<a>",
            "<a> $ <b>",
            "* 3",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_expression(bad)


class TestReferencedSensors:
    def test_collects_all(self):
        node = parse_expression("<a> + sum(<b>) * -<c>")
        assert referenced_sensors(node) == {"a", "b", "c"}

    def test_constants_have_none(self):
        assert referenced_sensors(parse_expression("1 + 2")) == set()


class TestArithmeticSemantics:
    """Evaluate constant-only expressions against Python's arithmetic."""

    def _eval_const(self, node):
        if isinstance(node, Num):
            return node.value
        if isinstance(node, Neg):
            return -self._eval_const(node.operand)
        if isinstance(node, BinOp):
            left = self._eval_const(node.left)
            right = self._eval_const(node.right)
            return {"+": lambda: left + right, "-": lambda: left - right,
                    "*": lambda: left * right, "/": lambda: left / right}[node.op]()
        raise AssertionError

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2 * 3", 7.0),
            ("(1 + 2) * 3", 9.0),
            ("10 / 4", 2.5),
            ("2 - 3 - 4", -5.0),
            ("-2 * -3", 6.0),
            ("100 / 10 / 2", 5.0),
        ],
    )
    def test_cases(self, text, expected):
        assert self._eval_const(parse_expression(text)) == pytest.approx(expected)

    @given(
        st.integers(min_value=1, max_value=99),
        st.integers(min_value=1, max_value=99),
        st.integers(min_value=1, max_value=99),
        st.sampled_from(["+", "-", "*", "/"]),
        st.sampled_from(["+", "-", "*", "/"]),
    )
    def test_matches_python_eval(self, a, b, c, op1, op2):
        text = f"{a} {op1} {b} {op2} {c}"
        assert self._eval_const(parse_expression(text)) == pytest.approx(
            eval(text)  # noqa: S307 - generated from safe tokens
        )
