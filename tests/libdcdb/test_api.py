"""Tests for the DCDBClient data-access API."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.common.units import Unit, get_converter, register_unit
from repro.core.sid import SidMapper
from repro.libdcdb.api import DCDBClient, SensorConfig, _covers, _merge_intervals
from repro.storage.memory import MemoryBackend


@pytest.fixture
def env():
    backend = MemoryBackend()
    mapper = SidMapper()
    client = DCDBClient(backend)
    topics = [
        "/hpc/rack0/node0/power",
        "/hpc/rack0/node1/power",
        "/hpc/rack1/node0/power",
        "/fac/cooling/flow",
    ]
    for topic in topics:
        sid = mapper.sid_for_topic(topic)
        backend.put_metadata(f"sidmap{topic}", sid.hex())
        for t in range(1, 11):
            backend.insert(sid, t * NS_PER_SEC, t * 100)
    return client, backend, mapper


class TestTopicResolution:
    def test_sid_of_resolves(self, env):
        client, _, mapper = env
        assert client.sid_of("/hpc/rack0/node0/power") == mapper.lookup_topic(
            "/hpc/rack0/node0/power"
        )

    def test_unknown_topic_raises(self, env):
        client, _, _ = env
        with pytest.raises(QueryError, match="unknown sensor topic"):
            client.sid_of("/nope")

    def test_topics_listing(self, env):
        client, _, _ = env
        assert len(client.topics()) == 4
        assert len(client.topics("/hpc/rack0")) == 2

    def test_register_topic(self, env):
        client, _, mapper = env
        sid = mapper.sid_for_topic("/new/sensor")
        client.register_topic("/new/sensor", sid)
        assert client.sid_of("/new/sensor") == sid


class TestHierarchy:
    def test_root_children(self, env):
        client, _, _ = env
        assert client.hierarchy_children("") == ["fac", "hpc"]

    def test_mid_level_children(self, env):
        client, _, _ = env
        assert client.hierarchy_children("/hpc") == ["rack0", "rack1"]
        assert client.hierarchy_children("/hpc/rack0") == ["node0", "node1"]

    def test_leaf_level(self, env):
        client, _, _ = env
        assert client.hierarchy_children("/hpc/rack0/node0") == ["power"]

    def test_unknown_prefix_empty(self, env):
        client, _, _ = env
        assert client.hierarchy_children("/mars") == []


class TestQueries:
    def test_raw_query(self, env):
        client, _, _ = env
        ts, vals = client.query_raw("/hpc/rack0/node0/power", 0, 20 * NS_PER_SEC)
        assert vals.tolist() == [t * 100 for t in range(1, 11)]

    def test_scaled_physical_query(self, env):
        client, _, _ = env
        client.set_sensor_config(
            SensorConfig(topic="/hpc/rack0/node0/power", unit="W", scale=100.0)
        )
        _, vals = client.query("/hpc/rack0/node0/power", 0, 20 * NS_PER_SEC)
        assert vals.tolist() == pytest.approx(list(range(1, 11)))

    def test_unit_conversion_on_query(self, env):
        client, _, _ = env
        client.set_sensor_config(
            SensorConfig(topic="/hpc/rack0/node0/power", unit="W", scale=1.0)
        )
        _, w = client.query("/hpc/rack0/node0/power", 0, 20 * NS_PER_SEC)
        _, kw = client.query("/hpc/rack0/node0/power", 0, 20 * NS_PER_SEC, unit="kW")
        assert kw.tolist() == pytest.approx((w / 1000.0).tolist())

    def test_latest(self, env):
        client, _, _ = env
        client.set_sensor_config(
            SensorConfig(topic="/fac/cooling/flow", unit="m3/h", scale=100.0)
        )
        ts, value = client.latest("/fac/cooling/flow")
        assert ts == 10 * NS_PER_SEC
        assert value == pytest.approx(10.0)

    def test_latest_empty(self, env):
        client, backend, mapper = env
        sid = mapper.sid_for_topic("/empty/sensor")
        backend.put_metadata("sidmap/empty/sensor", sid.hex())
        assert client.latest("/empty/sensor") is None


class TestAggregateUnitConversion:
    """Affine unit conversions must commute with the aggregation."""

    TOPIC = "/hpc/rack0/node0/power"

    def _celsius(self, client):
        client.set_sensor_config(
            SensorConfig(topic=self.TOPIC, unit="C", scale=100.0)
        )
        _, celsius = client.query(self.TOPIC, 0, 20 * NS_PER_SEC)
        return celsius

    def test_sum_offset_applied_per_reading(self, env):
        client, _, _ = env
        celsius = self._celsius(client)
        starts, got = client.query_aggregate(
            self.TOPIC, 0, 20 * NS_PER_SEC, "sum", 1, unit="F"
        )
        assert starts.size == 1
        # sum of the converted readings, NOT conversion of the sum:
        # the +32 offset lands once per reading.
        expected = float(np.sum(celsius * 9.0 / 5.0 + 32.0))
        assert got[0] == pytest.approx(expected)

    def test_avg_offset_applied_once(self, env):
        client, _, _ = env
        celsius = self._celsius(client)
        _, got = client.query_aggregate(
            self.TOPIC, 0, 20 * NS_PER_SEC, "avg", 1, unit="F"
        )
        assert got[0] == pytest.approx(float(np.mean(celsius)) * 9.0 / 5.0 + 32.0)

    def test_min_max_swap_under_negative_scale(self, env):
        client, _, _ = env
        register_unit(Unit("negC", "temperature", -1.0, 273.15))
        celsius = self._celsius(client)
        conv = get_converter("C", "negC")
        assert conv._scale < 0
        _, got_min = client.query_aggregate(
            self.TOPIC, 0, 20 * NS_PER_SEC, "min", 1, unit="negC"
        )
        _, got_max = client.query_aggregate(
            self.TOPIC, 0, 20 * NS_PER_SEC, "max", 1, unit="negC"
        )
        converted = [conv.convert(float(c)) for c in celsius]
        assert got_min[0] == pytest.approx(min(converted))
        assert got_max[0] == pytest.approx(max(converted))


class TestSensorConfig:
    def test_defaults_for_unknown(self, env):
        client, _, _ = env
        config = client.sensor_config("/hpc/rack0/node0/power")
        assert config.unit == "count" and config.scale == 1.0

    def test_persists(self, env):
        client, backend, _ = env
        client.set_sensor_config(
            SensorConfig(
                topic="/hpc/rack0/node0/power",
                unit="W",
                scale=2.0,
                integrable=True,
                ttl_s=3600,
                attributes={"rack": "0"},
            )
        )
        again = DCDBClient(backend).sensor_config("/hpc/rack0/node0/power")
        assert again.unit == "W"
        assert again.scale == 2.0
        assert again.integrable is True
        assert again.ttl_s == 3600
        assert again.attributes == {"rack": "0"}


class TestIntervalHelpers:
    def test_merge_overlapping(self):
        assert _merge_intervals([(0, 10), (5, 20), (30, 40)]) == [(0, 20), (30, 40)]

    def test_merge_adjacent(self):
        assert _merge_intervals([(0, 10), (11, 20)]) == [(0, 20)]

    def test_merge_empty(self):
        assert _merge_intervals([]) == []

    def test_covers(self):
        assert _covers([(0, 100)], 10, 50)
        assert not _covers([(0, 100)], 50, 150)
        assert not _covers([(0, 40), (60, 100)], 10, 90)
