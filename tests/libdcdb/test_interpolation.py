"""Tests for series resampling and grids."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import QueryError
from repro.libdcdb.interpolation import (
    downsample_mean,
    regular_grid,
    resample_linear,
    union_grid,
)


class TestUnionGrid:
    def test_merges_and_sorts(self):
        a = np.array([1, 3, 5], dtype=np.int64)
        b = np.array([2, 3, 4], dtype=np.int64)
        assert union_grid(a, b).tolist() == [1, 2, 3, 4, 5]

    def test_empty_inputs(self):
        assert union_grid().size == 0
        assert union_grid(np.empty(0, dtype=np.int64)).size == 0

    def test_single_array(self):
        a = np.array([5, 1], dtype=np.int64)
        assert union_grid(a).tolist() == [1, 5]


class TestRegularGrid:
    def test_inclusive_end(self):
        assert regular_grid(0, 10, 5).tolist() == [0, 5, 10]

    def test_non_divisible_end(self):
        assert regular_grid(0, 11, 5).tolist() == [0, 5, 10]

    def test_invalid_interval(self):
        with pytest.raises(QueryError):
            regular_grid(0, 10, 0)

    def test_end_before_start(self):
        with pytest.raises(QueryError):
            regular_grid(10, 0, 1)


class TestResampleLinear:
    def test_exact_points_preserved(self):
        ts = np.array([0, 10, 20], dtype=np.int64)
        vals = np.array([0.0, 100.0, 50.0])
        out = resample_linear(ts, vals, ts)
        assert out.tolist() == [0.0, 100.0, 50.0]

    def test_midpoint_interpolation(self):
        ts = np.array([0, 10], dtype=np.int64)
        vals = np.array([0.0, 100.0])
        grid = np.array([5], dtype=np.int64)
        assert resample_linear(ts, vals, grid)[0] == pytest.approx(50.0)

    def test_clamping_outside_span(self):
        ts = np.array([10, 20], dtype=np.int64)
        vals = np.array([1.0, 2.0])
        grid = np.array([0, 30], dtype=np.int64)
        out = resample_linear(ts, vals, grid)
        assert out.tolist() == [1.0, 2.0]

    def test_empty_series_raises(self):
        with pytest.raises(QueryError):
            resample_linear(np.empty(0, dtype=np.int64), np.empty(0), np.array([1]))

    def test_length_mismatch_raises(self):
        with pytest.raises(QueryError):
            resample_linear(np.array([1, 2]), np.array([1.0]), np.array([1]))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=2,
            max_size=30,
            unique_by=lambda p: p[0],
        )
    )
    def test_interpolation_bounded_property(self, points):
        points.sort()
        ts = np.array([p[0] for p in points], dtype=np.int64)
        vals = np.array([p[1] for p in points])
        grid = np.linspace(ts[0], ts[-1], 17).astype(np.int64)
        out = resample_linear(ts, vals, grid)
        assert out.min() >= vals.min() - 1e-9
        assert out.max() <= vals.max() + 1e-9


class TestDownsampleMean:
    def test_bucket_means(self):
        ts = np.array([0, 1, 2, 10, 11], dtype=np.int64)
        vals = np.array([1, 2, 3, 10, 20], dtype=np.float64)
        bucket_ts, means = downsample_mean(ts, vals, 10)
        assert bucket_ts.tolist() == [0, 10]
        assert means.tolist() == [2.0, 15.0]

    def test_gaps_not_filled(self):
        ts = np.array([0, 100], dtype=np.int64)
        vals = np.array([1.0, 2.0])
        bucket_ts, _ = downsample_mean(ts, vals, 10)
        assert bucket_ts.tolist() == [0, 100]

    def test_empty(self):
        ts = np.empty(0, dtype=np.int64)
        bucket_ts, means = downsample_mean(ts, np.empty(0), 10)
        assert bucket_ts.size == 0

    def test_invalid_bucket(self):
        with pytest.raises(QueryError):
            downsample_mean(np.array([1]), np.array([1.0]), 0)
