"""Tests for the streaming analytics layer."""

import pytest

from repro.analytics import (
    Aggregator,
    AnalyticsManager,
    EmaSmoother,
    MovingAverage,
    RateOfChange,
    StreamOperator,
    ThresholdAlarm,
    ZScoreDetector,
)
from repro.analytics.operator import OutputReading, sanitize_suffix
from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.sensor import SensorReading


def feed_series(operator, topic, values, t0=NS_PER_SEC, step=NS_PER_SEC):
    out = []
    for i, value in enumerate(values):
        out.extend(operator.process(topic, SensorReading(t0 + i * step, value)))
    return out


class TestOperatorBase:
    def test_pattern_matching(self):
        op = MovingAverage("ma", ["/hpc/+/power", "/fac/#"])
        assert op.matches("/hpc/n0/power")
        assert op.matches("/fac/cooling/flow")
        assert not op.matches("/hpc/n0/temp")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MovingAverage("bad/name", ["/x"])

    def test_invalid_pattern_rejected(self):
        from repro.common.errors import TransportError

        with pytest.raises(TransportError):
            MovingAverage("ma", ["/a/#/b"])

    def test_sanitize_suffix(self):
        assert sanitize_suffix("/hpc/rack0/node1/power") == "hpc_rack0_node1_power"


class TestMovingAverage:
    def test_emits_after_window_fills(self):
        op = MovingAverage("ma", ["/s"], window=3)
        out = feed_series(op, "/s", [10, 20, 30, 40])
        assert len(out) == 2
        assert out[0].reading.value == 20  # mean(10,20,30)
        assert out[1].reading.value == 30  # mean(20,30,40)

    def test_per_sensor_state(self):
        op = MovingAverage("ma", ["/a", "/b"], window=2)
        feed_series(op, "/a", [1, 3])
        out = feed_series(op, "/b", [10, 30])
        assert out[0].reading.value == 20

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            MovingAverage("ma", ["/s"], window=0)

    def test_reset(self):
        op = MovingAverage("ma", ["/s"], window=2)
        feed_series(op, "/s", [1, 2])
        op.reset()
        assert feed_series(op, "/s", [5]) == []


class TestEmaSmoother:
    def test_smoothing(self):
        op = EmaSmoother("ema", ["/s"], alpha=0.5)
        out = feed_series(op, "/s", [100, 0, 0])
        assert [o.reading.value for o in out] == [50, 25]

    def test_alpha_bounds(self):
        with pytest.raises(ConfigError):
            EmaSmoother("e", ["/s"], alpha=0.0)
        with pytest.raises(ConfigError):
            EmaSmoother("e", ["/s"], alpha=1.5)


class TestRateOfChange:
    def test_rate_units_per_second(self):
        op = RateOfChange("rate", ["/energy"])
        out = feed_series(op, "/energy", [1000, 1500, 2500])
        assert [o.reading.value for o in out] == [500, 1000]

    def test_non_monotonic_time_skipped(self):
        op = RateOfChange("rate", ["/s"])
        op.process("/s", SensorReading(2 * NS_PER_SEC, 10))
        assert op.process("/s", SensorReading(NS_PER_SEC, 20)) == []

    def test_scale(self):
        op = RateOfChange("rate", ["/s"], scale=1000.0)
        out = feed_series(op, "/s", [0, 1])
        assert out[0].reading.value == 1000


class TestAggregator:
    def test_sum_per_bucket(self):
        op = Aggregator("total", ["/rack/+/power"], output="rack_power", func="sum")
        t = NS_PER_SEC
        assert op.process("/rack/n0/power", SensorReading(t, 100)) == []
        assert op.process("/rack/n1/power", SensorReading(t, 150)) == []
        out = op.process("/rack/n0/power", SensorReading(2 * t, 110))
        assert len(out) == 1
        assert out[0].suffix == "rack_power"
        assert out[0].reading.value == 250
        assert out[0].reading.timestamp == 2 * t

    def test_last_value_per_sensor_wins_in_bucket(self):
        op = Aggregator("a", ["/s/#"], func="sum", bucket_ns=10 * NS_PER_SEC)
        op.process("/s/x", SensorReading(NS_PER_SEC, 1))
        op.process("/s/x", SensorReading(2 * NS_PER_SEC, 5))
        out = op.flush()
        assert out[0].reading.value == 5

    @pytest.mark.parametrize("func,expected", [("avg", 20), ("min", 10), ("max", 30)])
    def test_functions(self, func, expected):
        op = Aggregator("a", ["/s/#"], func=func)
        t = NS_PER_SEC
        op.process("/s/a", SensorReading(t, 10))
        op.process("/s/b", SensorReading(t, 30))
        out = op.flush()
        assert out[0].reading.value == expected

    def test_unknown_func_rejected(self):
        with pytest.raises(ConfigError):
            Aggregator("a", ["/s"], func="median")

    def test_sealed_flag_marks_partial_buckets(self):
        op = Aggregator("a", ["/s/#"], func="sum")
        t = NS_PER_SEC
        op.process("/s/a", SensorReading(t, 1))
        sealed = op.process("/s/a", SensorReading(2 * t, 2))
        assert sealed[0].sealed  # closed by a later reading
        partial = op.flush()
        assert partial and not partial[0].sealed  # force-emitted open bucket

    def test_emit_partial_false_suppresses_open_bucket(self):
        op = Aggregator("a", ["/s/#"], func="sum", emit_partial=False)
        op.process("/s/a", SensorReading(NS_PER_SEC, 1))
        assert op.flush() == []
        # State was discarded, not carried into the next bucket.
        assert op.process("/s/a", SensorReading(2 * NS_PER_SEC, 2)) == []


class TestZScoreDetector:
    def test_flags_outlier(self):
        op = ZScoreDetector("z", ["/s"], window=10, threshold=4.0)
        out = feed_series(op, "/s", [100, 102, 98, 101, 99, 100, 101, 99, 500])
        anomalies = [o for o in out if o.alarm]
        assert len(anomalies) == 1
        assert anomalies[0].reading.value == 1
        assert "sigma" in anomalies[0].message

    def test_steady_signal_quiet(self):
        op = ZScoreDetector("z", ["/s"], window=10)
        out = feed_series(op, "/s", [100, 101, 99, 100, 101, 99, 100, 101, 99, 100])
        assert out == []

    def test_anomaly_not_absorbed_into_stats(self):
        op = ZScoreDetector("z", ["/s"], window=8, threshold=4.0)
        feed_series(op, "/s", [100, 101, 99, 100, 101])
        first = feed_series(op, "/s", [500])
        second = feed_series(op, "/s", [500])
        assert first and second  # still anomalous the second time

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            ZScoreDetector("z", ["/s"], window=2)


class TestThresholdAlarm:
    def test_raise_and_clear_with_hysteresis(self):
        op = ThresholdAlarm("power_cap", ["/p"], high=1000, low=900)
        out = feed_series(op, "/p", [800, 950, 1100, 1050, 950, 880])
        assert [(o.reading.value, o.alarm) for o in out] == [(1, True), (0, True)]

    def test_no_flapping_between_thresholds(self):
        op = ThresholdAlarm("a", ["/p"], high=100, low=90)
        out = feed_series(op, "/p", [120, 95, 120, 95, 120])
        # Raised once at 120; values between low/high do not clear.
        assert len(out) == 1

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigError):
            ThresholdAlarm("a", ["/p"], high=100, low=200)


class TestManager:
    def test_routing_by_pattern(self):
        manager = AnalyticsManager()
        manager.add_operator(MovingAverage("ma", ["/hpc/#"], window=1))
        out = manager.feed("/hpc/n0/power", SensorReading(1, 10))
        assert out[0][0] == "/analytics/ma/hpc_n0_power_avg"
        assert manager.feed("/other", SensorReading(1, 10)) == []

    def test_no_feedback_loops(self):
        manager = AnalyticsManager()
        manager.add_operator(MovingAverage("ma", ["#"], window=1))
        out = manager.feed("/analytics/ma/somesensor_avg", SensorReading(1, 10))
        assert out == []

    def test_duplicate_operator_rejected(self):
        manager = AnalyticsManager()
        manager.add_operator(MovingAverage("ma", ["/s"], window=1))
        with pytest.raises(ValueError):
            manager.add_operator(EmaSmoother("ma", ["/s"]))

    def test_remove_operator(self):
        manager = AnalyticsManager()
        manager.add_operator(MovingAverage("ma", ["/s"], window=1))
        assert manager.remove_operator("ma") is True
        assert manager.remove_operator("ma") is False

    def test_failing_operator_isolated(self):
        class Broken(StreamOperator):
            def process(self, topic, reading):
                raise RuntimeError("boom")

        manager = AnalyticsManager()
        manager.add_operator(Broken("broken", ["#"]))
        manager.add_operator(MovingAverage("ma", ["#"], window=1))
        out = manager.feed("/s", SensorReading(1, 5))
        assert len(out) == 1  # the healthy operator still ran

    def test_alarm_log(self):
        manager = AnalyticsManager()
        manager.add_operator(ThresholdAlarm("cap", ["/p"], high=10))
        manager.feed("/p", SensorReading(NS_PER_SEC, 50))
        assert len(manager.alarms) == 1
        event = manager.alarms[0]
        assert event.operator == "cap" and event.topic == "/p" and event.value == 1

    def test_status(self):
        manager = AnalyticsManager()
        manager.add_operator(MovingAverage("ma", ["/s"], window=1))
        manager.feed("/s", SensorReading(1, 5))
        status = manager.status()
        assert status["readingsProcessed"] == 1
        assert status["outputsEmitted"] == 1
        assert status["operators"][0]["name"] == "ma"


class TestDaemonIntegration:
    def test_attached_to_agent_stores_derived_sensors(self):
        from repro.core.collectagent import CollectAgent
        from repro.core.pusher import Pusher, PusherConfig
        from repro.libdcdb.api import DCDBClient
        from repro.mqtt.inproc import InProcClient, InProcHub
        from repro.storage import MemoryBackend

        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub)
        manager = AnalyticsManager()
        manager.add_operator(
            Aggregator("nodepower", ["/an/n0/g/#"], output="total", func="sum")
        )
        manager.attach_to_agent(agent)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/an/n0"),
            client=InProcClient("p", hub),
            clock=SimClock(0),
        )
        pusher.load_plugin(
            "tester",
            "group g { interval 1000\n numSensors 4\n generator constant\n startValue 100 }",
        )
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(10 * NS_PER_SEC)
        # Derived sensor is stored and queryable via libDCDB.
        dcdb = DCDBClient(backend)
        ts, values = dcdb.query("/analytics/nodepower/total", 0, 20 * NS_PER_SEC)
        assert ts.size == 9  # buckets close when the next one opens
        assert values.tolist() == [400.0] * 9

    def test_attached_to_pusher_publishes_derived_sensors(self):
        from repro.core.collectagent import CollectAgent
        from repro.core.pusher import Pusher, PusherConfig
        from repro.mqtt.inproc import InProcClient, InProcHub
        from repro.storage import MemoryBackend

        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/pp/n0"),
            client=InProcClient("p", hub),
            clock=SimClock(0),
        )
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 1 }")
        manager = AnalyticsManager()
        manager.add_operator(EmaSmoother("sm", ["/pp/n0/#"], alpha=0.5))
        manager.attach_to_pusher(pusher)
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(5 * NS_PER_SEC)
        # Raw + smoothed both reached the agent.
        topics = agent.cached_topics()
        assert "/pp/n0/g/s0" in topics
        assert "/analytics/sm/pp_n0_g_s0_ema" in topics
        smoothed = agent.cache_of("/analytics/sm/pp_n0_g_s0_ema").snapshot()
        assert len(smoothed) == 4  # EMA starts from the second sample


class TestAggregatorPropertyBased:
    """Aggregator sums per bucket match a direct oracle."""

    def test_random_streams_vs_oracle(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=60, deadline=None)
        @given(
            events=st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),   # sensor id
                    st.integers(min_value=1, max_value=20),  # bucket (s)
                    st.integers(min_value=-100, max_value=100),
                ),
                min_size=1,
                max_size=60,
            )
        )
        def run(events):
            # Aggregator consumes events in time order (monotonic
            # buckets), like synchronized sensors produce them.
            events = sorted(events, key=lambda e: e[1])
            op = Aggregator("agg", ["/p/#"], func="sum", bucket_ns=NS_PER_SEC)
            emitted = {}
            for sensor, bucket, value in events:
                ts = bucket * NS_PER_SEC + 1  # strictly inside bucket
                for out in op.process(f"/p/s{sensor}", SensorReading(ts, value)):
                    emitted[out.reading.timestamp // NS_PER_SEC - 1] = (
                        out.reading.value
                    )
            for out in op.flush():
                emitted[out.reading.timestamp // NS_PER_SEC - 1] = out.reading.value
            # Oracle: last value per (sensor, bucket), summed per bucket.
            last = {}
            for sensor, bucket, value in events:
                last[(sensor, bucket)] = value
            oracle = {}
            for (sensor, bucket), value in last.items():
                oracle[bucket] = oracle.get(bucket, 0) + value
            assert emitted == oracle

        run()
