"""Tests for the Pusher daemon: sampling, publishing, lifecycle."""

import time

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub

TESTER_5 = "group g0 { interval 1000\n numSensors 5 }"


def make_pusher(hub=None, clock=None, **config_kwargs):
    hub = hub if hub is not None else InProcHub(allow_subscribe=False)
    clock = clock if clock is not None else SimClock(0)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/t/h0", **config_kwargs),
        client=InProcClient("p0", hub),
        clock=clock,
    )
    return pusher, hub, clock


class TestPluginLifecycle:
    def test_load_and_start(self):
        pusher, hub, _ = make_pusher()
        plugin = pusher.load_plugin("tester", TESTER_5)
        assert plugin.sensor_count == 5
        assert not plugin.running
        pusher.client.connect()
        pusher.start_plugin("tester")
        assert plugin.running

    def test_duplicate_load_rejected(self):
        pusher, _, _ = make_pusher()
        pusher.load_plugin("tester", TESTER_5)
        with pytest.raises(ConfigError, match="already loaded"):
            pusher.load_plugin("tester", TESTER_5)

    def test_alias_allows_two_instances(self):
        pusher, _, _ = make_pusher()
        pusher.load_plugin("tester", TESTER_5, plugin_alias="t1")
        pusher.load_plugin("tester", TESTER_5, plugin_alias="t2")
        assert pusher.sensor_count == 10

    def test_unload(self):
        pusher, _, _ = make_pusher()
        pusher.load_plugin("tester", TESTER_5)
        pusher.unload_plugin("tester")
        assert pusher.sensor_count == 0
        with pytest.raises(ConfigError, match="not loaded"):
            pusher.stop_plugin("tester")

    def test_stop_plugin_halts_collection(self):
        pusher, _, clock = make_pusher()
        pusher.load_plugin("tester", TESTER_5)
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(3 * NS_PER_SEC)
        collected = pusher.readings_collected
        pusher.stop_plugin("tester")
        pusher.advance_to(6 * NS_PER_SEC)
        assert pusher.readings_collected == collected

    def test_reload_swaps_configuration(self):
        pusher, _, _ = make_pusher()
        pusher.load_plugin("tester", TESTER_5)
        pusher.client.connect()
        pusher.start_plugin("tester")
        plugin = pusher.reload_plugin("tester", "group g0 { interval 1000\n numSensors 9 }")
        assert plugin.sensor_count == 9
        assert plugin.running  # was running, stays running
        pusher.advance_to(NS_PER_SEC)
        assert pusher.readings_collected == 9

    def test_unknown_plugin_name(self):
        pusher, _, _ = make_pusher()
        with pytest.raises(ConfigError, match="unknown plugin"):
            pusher.load_plugin("does_not_exist", "")


class TestSteppedSampling:
    def test_aligned_cycles(self):
        pusher, hub, _ = make_pusher()
        pusher.load_plugin("tester", TESTER_5)
        pusher.client.connect()
        pusher.start_plugin("tester")
        cycles = pusher.advance_to(10 * NS_PER_SEC)
        assert cycles == 10
        assert pusher.readings_collected == 50
        assert hub.messages_received == 50

    def test_topics_carry_prefix(self):
        pusher, hub, _ = make_pusher()
        topics = []
        hub.add_publish_hook(lambda cid, p: topics.append(p.topic))
        pusher.load_plugin("tester", TESTER_5)
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(NS_PER_SEC)
        assert sorted(topics) == [f"/t/h0/g0/s{i}" for i in range(5)]

    def test_reading_timestamps_are_interval_aligned(self):
        pusher, hub, _ = make_pusher()
        payloads = []
        hub.add_publish_hook(lambda cid, p: payloads.append(p.payload))
        pusher.load_plugin("tester", "group g0 { interval 250\n numSensors 1 }")
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(NS_PER_SEC)
        from repro.core.payload import decode_readings

        timestamps = [decode_readings(p)[0].timestamp for p in payloads]
        assert timestamps == [250_000_000, 500_000_000, 750_000_000, 1_000_000_000]

    def test_mixed_intervals_ordered(self):
        pusher, hub, _ = make_pusher()
        pusher.load_plugin("tester", "group fast { interval 500\n numSensors 1 }\ngroup slow { interval 1000\n numSensors 1 }")
        pusher.client.connect()
        pusher.start_plugin("tester")
        cycles = pusher.advance_to(2 * NS_PER_SEC)
        assert cycles == 4 + 2

    def test_min_values_batching(self):
        pusher, hub, _ = make_pusher()
        pusher.load_plugin(
            "tester", "group g0 { interval 1000\n minValues 3\n numSensors 1 }"
        )
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(2 * NS_PER_SEC)
        assert hub.messages_received == 0  # below threshold
        pusher.advance_to(3 * NS_PER_SEC)
        assert hub.messages_received == 1  # three readings in one message
        from repro.core.payload import decode_readings

    def test_sensor_cache_fills(self):
        pusher, _, _ = make_pusher()
        pusher.load_plugin("tester", TESTER_5)
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(5 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/t/h0/g0/s0")
        assert len(sensor.cache) == 5


class TestSendModes:
    def test_burst_mode_defers_until_flush(self):
        pusher, hub, _ = make_pusher(send_mode="burst")
        pusher.load_plugin("tester", TESTER_5)
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(10 * NS_PER_SEC)
        assert hub.messages_received == 0
        sent = pusher.flush()
        assert sent == 5  # one message per sensor, 10 readings each
        assert hub.messages_received == 5

    def test_burst_payload_batches_readings(self):
        pusher, hub, _ = make_pusher(send_mode="burst")
        payloads = []
        hub.add_publish_hook(lambda cid, p: payloads.append(p.payload))
        pusher.load_plugin("tester", "group g0 { interval 1000\n numSensors 1 }")
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(10 * NS_PER_SEC)
        pusher.flush()
        from repro.core.payload import decode_readings

        assert len(decode_readings(payloads[0])) == 10

    def test_invalid_send_mode_rejected(self):
        with pytest.raises(ConfigError):
            PusherConfig(send_mode="sideways")


class TestThreadedMode:
    def test_real_time_collection(self):
        # Real wall-clock mode: a fast group on real threads.
        hub = InProcHub(allow_subscribe=False)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/rt/h0", threads=2),
            client=InProcClient("rt", hub),
        )
        pusher.load_plugin("tester", "group g0 { interval 50\n numSensors 3 }")
        pusher.start_plugin("tester")
        pusher.start()
        try:
            deadline = time.monotonic() + 5.0
            while hub.messages_received < 9 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert hub.messages_received >= 9
        finally:
            pusher.stop()

    def test_stop_flushes_pending(self):
        hub = InProcHub(allow_subscribe=False)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/rt/h1", send_mode="burst"),
            client=InProcClient("rt1", hub),
        )
        pusher.load_plugin("tester", "group g0 { interval 50\n numSensors 1 }")
        pusher.start_plugin("tester")
        pusher.start()
        time.sleep(0.3)
        pusher.stop()
        assert hub.messages_received >= 1

    def test_status_snapshot(self):
        pusher, _, _ = make_pusher()
        pusher.load_plugin("tester", TESTER_5)
        status = pusher.status()
        assert status["plugins"]["tester"]["sensors"] == 5
        assert status["running"] is False


class TestFailureCounters:
    def test_publish_failures_and_reconnects_in_status(self):
        class DeadClient:
            connected = False

            def connect(self):
                raise OSError("no broker")

            def close(self):
                pass

            def publish(self, *a, **k):
                raise OSError("no broker")

        pusher = Pusher(PusherConfig(mqtt_prefix="/dead"), client=DeadClient(), clock=SimClock(0))
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 1 }")
        from repro.core.sensor import SensorReading

        sensor = pusher.plugins["tester"].groups[0].sensors[0]
        pusher._publish(sensor, [SensorReading(1, 1)])
        status = pusher.status()
        assert status["publishFailures"] == 1
        assert status["reconnects"] == 0
