"""Tests for sensor-metadata auto-publish (Pusher -> Collect Agent)."""

import json

import pytest

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.libdcdb.api import DCDBClient
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage import MemoryBackend

CONFIG = """
group power {
    interval 1000
    sensor p0 {
        mqttsuffix /p0
        unit W
        scale 10
        integrable true
    }
}
"""



def make_stack():
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/md/n0"),
        client=InProcClient("p", hub),
        clock=SimClock(0),
    )
    return pusher, agent, backend


class TestAnnouncement:
    def test_announce_persists_sensor_config(self):
        pusher, agent, backend = make_stack()
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 1 }")
        pusher.client.connect()
        sent = pusher.announce_metadata()
        assert sent == 1
        assert agent.metadata_announcements == 1
        config = DCDBClient(backend).sensor_config("/md/n0/g/s0")
        assert config.topic == "/md/n0/g/s0"

    def test_announced_unit_and_scale_applied_on_query(self):
        pusher, agent, backend = make_stack()
        # Use the mini config with explicit unit/scale via the tester
        # plugin's explicit sensor block support.
        pusher.load_plugin(
            "tester",
            """
            group power {
                interval 1000
                sensor p0 {
                    mqttsuffix /p0
                    unit W
                    scale 10
                    integrable true
                }
            }
            """,
        )
        pusher.client.connect()
        pusher.announce_metadata()
        pusher.start_plugin("tester")
        pusher.advance_to(5 * NS_PER_SEC)
        dcdb = DCDBClient(backend)
        config = dcdb.sensor_config("/md/n0/p0")
        assert config.unit == "W"
        assert config.scale == 10.0
        assert config.integrable is True
        # Queries decode with the announced scale automatically.
        ts, values = dcdb.query("/md/n0/p0", 0, 10 * NS_PER_SEC)
        raw_ts, raw = dcdb.query_raw("/md/n0/p0", 0, 10 * NS_PER_SEC)
        assert values.tolist() == pytest.approx((raw / 10.0).tolist())

    def test_metadata_not_stored_as_readings(self):
        pusher, agent, backend = make_stack()
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 2 }")
        pusher.client.connect()
        pusher.announce_metadata()
        assert agent.readings_stored == 0
        assert backend.sids() == []

    def test_malformed_announcement_counted(self):
        pusher, agent, backend = make_stack()
        pusher.client.connect()
        pusher.client.publish("$DCDB/metadata/x", b"this is not json")
        assert agent.decode_errors == 1

    def test_topic_mismatch_rejected(self):
        pusher, agent, backend = make_stack()
        pusher.client.connect()
        document = json.dumps({"topic": "/somewhere/else"}).encode()
        pusher.client.publish("$DCDB/metadata/md/n0/s", document)
        assert agent.decode_errors == 1
        assert agent.metadata_announcements == 0

    def test_wildcard_consumers_do_not_see_system_topics(self):
        # Metadata travels on a $-prefixed topic, which MQTT excludes
        # from wildcard subscriptions.
        from repro.mqtt.topics import topic_matches

        assert not topic_matches("#", "$DCDB/metadata/md/n0/s")

    def test_threaded_start_announces_automatically(self):
        import time

        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/auto/n0"),
            client=InProcClient("p", hub),
        )
        pusher.load_plugin("tester", "group g { interval 100\n numSensors 3 }")
        pusher.start_plugin("tester")
        pusher.start()
        try:
            deadline = time.monotonic() + 5
            while agent.metadata_announcements < 3 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert agent.metadata_announcements == 3
        finally:
            pusher.stop()
