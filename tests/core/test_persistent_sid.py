"""Tests for backend-coordinated SID mapping across Collect Agents."""

import pytest

from repro.common.errors import StorageError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.payload import encode_reading
from repro.core.pusher import Pusher, PusherConfig
from repro.core.sid import (
    SID_LEVELS,
    SID_RESERVED_DEEPEST_BASE,
    PersistentSidMapper,
    SensorId,
    SidMapper,
)
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage.memory import MemoryBackend


class TestPersistentSidMapper:
    def test_round_trip(self):
        backend = MemoryBackend()
        mapper = PersistentSidMapper(backend)
        sid = mapper.sid_for_topic("/a/b/c")
        assert mapper.topic_for_sid(sid) == "/a/b/c"

    def test_two_mappers_agree(self):
        backend = MemoryBackend()
        first = PersistentSidMapper(backend)
        second = PersistentSidMapper(backend)
        # Different topics, interleaved registration from two mappers.
        sid_a = first.sid_for_topic("/cluster0/node0/power")
        sid_b = second.sid_for_topic("/cluster1/node0/power")
        # No collision: distinct topics get distinct SIDs.
        assert sid_a != sid_b
        # And the same topic resolves identically from either.
        assert second.sid_for_topic("/cluster0/node0/power") == sid_a
        assert first.sid_for_topic("/cluster1/node0/power") == sid_b

    def test_survives_restart(self):
        backend = MemoryBackend()
        sid = PersistentSidMapper(backend).sid_for_topic("/x/y/z")
        fresh = PersistentSidMapper(backend)
        assert fresh.sid_for_topic("/x/y/z") == sid

    def test_deepest_level_allocation_capped_below_rollup_range(self):
        backend = MemoryBackend()
        mapper = PersistentSidMapper(backend)
        deep = SID_LEVELS - 1
        # Next free code at the deepest level sits on the reserved
        # rollup base: allocation must refuse, not mint a SID that
        # collides with another sensor's rollup series.
        backend.put_metadata(f"sidnext/{deep}", str(SID_RESERVED_DEEPEST_BASE))
        with pytest.raises(StorageError, match="exhausted"):
            mapper.sid_for_topic("/a/b/c/d/e/f/g/h")

    def test_component_codes_shared_across_levels_independently(self):
        backend = MemoryBackend()
        mapper = PersistentSidMapper(backend)
        a = mapper.sid_for_topic("/p/q")
        b = mapper.sid_for_topic("/q/p")
        # "q" appears at level 0 and level 1 with independent codes.
        assert a != b


class TestSidRestore:
    def test_restore_then_consistent_lookup(self):
        mapper = SidMapper()
        sid = SensorId.from_codes([5, 9])
        mapper.restore("/room/rack", sid)
        assert mapper.lookup_topic("/room/rack") == sid
        assert mapper.topic_for_sid(sid) == "/room/rack"

    def test_restore_conflicting_code_rejected(self):
        mapper = SidMapper()
        mapper.restore("/a/b", SensorId.from_codes([1, 1]))
        with pytest.raises(StorageError):
            mapper.restore("/a/c", SensorId.from_codes([2, 2]))  # 'a' already code 1

    def test_restore_code_held_by_other_component_rejected(self):
        mapper = SidMapper()
        mapper.restore("/a/b", SensorId.from_codes([1, 1]))
        with pytest.raises(StorageError):
            mapper.restore("/z/b", SensorId.from_codes([1, 1]))  # code 1 is 'a'


class TestMultiAgentDeployment:
    def test_two_agents_one_backend_no_collisions(self):
        """The paper's Figure 1 layout: several Collect Agents, one
        distributed Storage Backend."""
        backend = MemoryBackend()
        clock = SimClock(0)
        hubs = [InProcHub(allow_subscribe=False) for _ in range(2)]
        agents = [CollectAgent(backend, broker=hub) for hub in hubs]
        for idx, hub in enumerate(hubs):
            pusher = Pusher(
                PusherConfig(mqtt_prefix=f"/cluster{idx}/n0"),
                client=InProcClient(f"p{idx}", hub),
                clock=clock,
            )
            pusher.load_plugin("tester", "group g { interval 1000\n numSensors 5 }")
            pusher.client.connect()
            pusher.start_plugin("tester")
            pusher.advance_to(10 * NS_PER_SEC)
        # 2 clusters x 5 sensors x 10 cycles, all distinct SIDs.
        assert sum(a.readings_stored for a in agents) == 100
        assert len(backend.sids()) == 10
        # Cross-agent resolution: agent 0 resolves agent 1's topics.
        sid_via_0 = agents[0].sid_mapper.sid_for_topic("/cluster1/n0/g/s0")
        sid_via_1 = agents[1].sid_mapper.sid_for_topic("/cluster1/n0/g/s0")
        assert sid_via_0 == sid_via_1

    def test_agent_restart_preserves_mapping(self):
        backend = MemoryBackend()
        hub = InProcHub(allow_subscribe=False)
        agent = CollectAgent(backend, broker=hub)
        client = InProcClient("p", hub)
        client.connect()
        client.publish("/r/n0/s", encode_reading(1, 42))
        sid_before = agent.sid_mapper.sid_for_topic("/r/n0/s")
        # "Restart": a new agent over the same backend.
        hub2 = InProcHub(allow_subscribe=False)
        agent2 = CollectAgent(backend, broker=hub2)
        client2 = InProcClient("p", hub2)
        client2.connect()
        client2.publish("/r/n0/s", encode_reading(2, 43))
        assert agent2.sid_mapper.sid_for_topic("/r/n0/s") == sid_before
        ts, vals = backend.query(sid_before, 0, 10)
        assert vals.tolist() == [42, 43]
