"""Edge cases of the asynchronous batching writer (ingest staging)."""

import threading
import time

import pytest

from repro.common.errors import BackpressureError, ConfigError, StorageError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core import payload as payload_mod
from repro.core.collectagent import BatchingWriter, CollectAgent, WriterConfig
from repro.core.sid import SensorId
from repro.faults import FaultyBackend
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage import MemoryBackend

SID = SensorId.from_codes([1, 2, 3])
FOREVER_NS = 3600 * NS_PER_SEC


def items(*values, base_ts=0):
    return [(SID, base_ts + i, v, 0) for i, v in enumerate(values)]


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class BlockingBackend(MemoryBackend):
    """A backend whose insert_batch parks until released."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()

    def insert_batch(self, batch):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "test never released the backend"
        return super().insert_batch(batch)


class TestFlushTriggers:
    def test_flush_by_size(self):
        backend = MemoryBackend()
        writer = BatchingWriter(
            backend, WriterConfig(max_batch=10, max_delay_ns=FOREVER_NS)
        )
        writer.put(items(*range(10)))
        assert wait_for(lambda: backend.count(SID, 0, 100) == 10)
        writer.stop()

    def test_no_flush_below_size_and_age(self):
        backend = MemoryBackend()
        clock = SimClock(0)
        writer = BatchingWriter(
            backend,
            WriterConfig(max_batch=100, max_delay_ns=NS_PER_SEC, poll_interval_s=0.001),
            clock=clock,
        )
        writer.put(items(1, 2, 3))
        time.sleep(0.05)  # many poll cycles; sim clock never advanced
        assert backend.count(SID, 0, 100) == 0
        assert writer.depth == 3
        writer.stop()

    def test_flush_by_age_with_simclock(self):
        backend = MemoryBackend()
        clock = SimClock(0)
        writer = BatchingWriter(
            backend,
            WriterConfig(max_batch=100, max_delay_ns=NS_PER_SEC, poll_interval_s=0.001),
            clock=clock,
        )
        writer.put(items(1, 2, 3))
        clock.advance(2 * NS_PER_SEC)  # oldest entry is now over-age
        assert wait_for(lambda: backend.count(SID, 0, 100) == 3)
        writer.stop()

    def test_drain_on_stop_persists_everything(self):
        backend = MemoryBackend()
        writer = BatchingWriter(
            backend, WriterConfig(max_batch=1_000, max_delay_ns=FOREVER_NS)
        )
        for i in range(50):
            writer.put(items(i, base_ts=i * 10))
        writer.stop()
        assert backend.count(SID, 0, 10_000) == 50
        assert writer.flushed == 50

    def test_put_after_stop_raises(self):
        writer = BatchingWriter(MemoryBackend(), WriterConfig())
        writer.stop()
        with pytest.raises(BackpressureError):
            writer.put(items(1))

    def test_drain_forces_partial_batch(self):
        backend = MemoryBackend()
        writer = BatchingWriter(
            backend, WriterConfig(max_batch=1_000, max_delay_ns=FOREVER_NS)
        )
        writer.put(items(1, 2))
        assert writer.drain()
        assert backend.count(SID, 0, 100) == 2
        writer.stop()


class TestBackpressure:
    def make_blocked_writer(self, policy, capacity=10):
        backend = BlockingBackend()
        writer = BatchingWriter(
            backend,
            WriterConfig(
                max_batch=5,
                max_delay_ns=0,
                queue_capacity=capacity,
                policy=policy,
                poll_interval_s=0.001,
            ),
        )
        # Occupy the writer thread inside a flush, then fill the queue.
        writer.put(items(0))
        assert backend.entered.wait(timeout=5.0)
        return writer, backend

    def test_block_policy_waits_for_capacity(self):
        writer, backend = self.make_blocked_writer("block")
        writer.put(items(*range(10), base_ts=100))  # exactly at capacity
        unblocked = threading.Event()

        def producer():
            writer.put(items(99, base_ts=900))
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not unblocked.is_set(), "put returned despite a full queue"
        backend.release.set()
        assert unblocked.wait(timeout=5.0)
        writer.stop()
        thread.join(timeout=5.0)
        assert backend.count(SID, 0, 10_000) == 12
        assert writer.dropped == 0

    def test_drop_oldest_evicts_and_counts(self):
        writer, backend = self.make_blocked_writer("drop-oldest")
        writer.put(items(*range(10), base_ts=100))
        writer.put(items(7, 8, base_ts=900))  # evicts the 10-reading entry
        assert writer.dropped == 10
        backend.release.set()
        writer.stop()
        ts, _ = backend.query(SID, 0, 10_000)
        assert ts.tolist() == [0, 900, 901]  # in-flight + freshest survive

    def test_error_policy_raises_and_keeps_queue(self):
        writer, backend = self.make_blocked_writer("error")
        writer.put(items(*range(10), base_ts=100))
        with pytest.raises(BackpressureError):
            writer.put(items(5, base_ts=900))
        assert writer.dropped == 0
        backend.release.set()
        writer.stop()
        assert backend.count(SID, 0, 10_000) == 11

    def test_oversized_message_keeps_freshest_tail(self):
        backend = BlockingBackend()
        writer = BatchingWriter(
            backend,
            WriterConfig(
                max_batch=4, max_delay_ns=0, queue_capacity=4,
                policy="drop-oldest", poll_interval_s=0.001,
            ),
        )
        writer.put(items(0))
        assert backend.entered.wait(timeout=5.0)
        writer.put(items(*range(10), base_ts=100))
        assert writer.dropped == 6
        backend.release.set()
        writer.stop()
        ts, _ = backend.query(SID, 0, 10_000)
        assert ts.tolist() == [0, 106, 107, 108, 109]


class FailOnceRecordingBackend(MemoryBackend):
    """Fails the first insert_batch, then records every flushed batch."""

    def __init__(self):
        super().__init__()
        self.fail_first = True
        self.batches = []

    def insert_batch(self, batch):
        batch = list(batch)
        if self.fail_first:
            self.fail_first = False
            raise StorageError("injected flush failure")
        self.batches.append([item[1] for item in batch])
        return super().insert_batch(batch)


class TestFlushFailure:
    """A failed flush re-queues its batch instead of dropping it."""

    def make_writer(self, backend, policy="block", retries=4):
        return BatchingWriter(
            backend,
            WriterConfig(
                max_batch=5,
                max_delay_ns=0,
                queue_capacity=100,
                policy=policy,
                poll_interval_s=0.001,
                flush_retries=retries,
                retry_backoff_s=0.0,
            ),
        )

    @pytest.mark.parametrize("policy", ["block", "drop-oldest", "error"])
    def test_failed_flush_requeued_under_every_policy(self, policy):
        inner = MemoryBackend()
        backend = FaultyBackend(inner)
        backend.fail_next(1)
        writer = self.make_writer(backend, policy=policy)
        writer.put(items(*range(10)))
        assert wait_for(lambda: inner.count(SID, 0, 100) == 10)
        writer.stop()
        assert writer.requeued > 0
        assert writer.lost == 0
        assert writer.dropped == 0
        assert writer.status()["flushErrors"] == 1

    def test_requeue_preserves_reading_order(self):
        backend = FailOnceRecordingBackend()
        writer = self.make_writer(backend)
        writer.put(items(*range(5)))  # this flush fails and re-queues
        writer.put(items(*range(5), base_ts=100))
        assert wait_for(lambda: backend.count(SID, 0, 1000) == 10)
        writer.stop()
        flat = [t for batch in backend.batches for t in batch]
        # The re-queued batch goes back to the queue head: its readings
        # reach the backend before anything staged after the failure.
        assert flat[:5] == [0, 1, 2, 3, 4]

    def test_retries_exhausted_counts_lost(self):
        inner = MemoryBackend()
        backend = FaultyBackend(inner)
        backend.set_down(True)
        writer = self.make_writer(backend, retries=2)
        writer.put(items(*range(5)))
        assert wait_for(lambda: writer.lost == 5)
        backend.set_down(False)
        writer.stop()
        assert inner.count(SID, 0, 100) == 0  # abandoned after the cap
        assert writer.requeued == 2 * 5  # each retry re-stages the batch
        status = writer.status()
        assert status["lost"] == 5
        assert status["requeued"] == 10
        assert status["flushRetries"] == 2

    def test_drain_on_stop_survives_transient_failure(self):
        inner = MemoryBackend()
        backend = FaultyBackend(inner)
        writer = BatchingWriter(
            backend,
            WriterConfig(
                max_batch=1_000,
                max_delay_ns=FOREVER_NS,
                poll_interval_s=0.001,
                retry_backoff_s=0.0,
            ),
        )
        for i in range(50):
            writer.put(items(i, base_ts=i * 10))
        backend.fail_next(1)  # the shutdown flush itself fails once
        writer.stop()
        assert inner.count(SID, 0, 10_000) == 50
        assert writer.lost == 0


class TestWriterMetrics:
    def test_instrument_families_registered(self):
        writer = BatchingWriter(MemoryBackend(), WriterConfig())
        names = {
            "dcdb_writer_queue_depth",
            "dcdb_writer_queue_capacity",
            "dcdb_writer_batch_size",
            "dcdb_writer_flush_duration_seconds",
            "dcdb_writer_readings_dropped_total",
            "dcdb_writer_readings_enqueued_total",
            "dcdb_writer_readings_flushed_total",
            "dcdb_writer_flushes_total",
        }
        collected = {family.name for family in writer.metrics.collect()}
        assert names <= collected
        writer.stop()

    def test_batch_size_histogram_observes_coalesced_batches(self):
        backend = MemoryBackend()
        writer = BatchingWriter(
            backend, WriterConfig(max_batch=1_000, max_delay_ns=FOREVER_NS)
        )
        for i in range(20):
            writer.put(items(i, base_ts=i))
        writer.stop()
        # Drain coalesced all 20 staged messages into few flushes.
        flushes = writer.metrics.value("dcdb_writer_flushes_total")
        assert 1 <= flushes < 20
        hist = writer.metrics.get("dcdb_writer_batch_size")
        assert hist.percentile(0.99) > 1

    def test_status_document(self):
        writer = BatchingWriter(MemoryBackend(), WriterConfig(policy="drop-oldest"))
        writer.put(items(1, 2, 3))
        writer.drain()
        status = writer.status()
        assert status["policy"] == "drop-oldest"
        assert status["enqueued"] == 3
        assert status["flushed"] == 3
        assert status["queueDepth"] == 0
        writer.stop()


class TestConfigValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            WriterConfig(policy="panic")

    def test_capacity_below_batch_rejected(self):
        with pytest.raises(ConfigError):
            WriterConfig(max_batch=100, queue_capacity=10)


class TestAgentIntegration:
    def make_agent(self, **writer_kwargs):
        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(
            backend, broker=hub, writer_config=WriterConfig(**writer_kwargs)
        )
        client = InProcClient("p", hub)
        client.connect()
        return agent, backend, client

    def test_stop_drains_every_enqueued_reading(self):
        agent, backend, client = self.make_agent(
            max_batch=10_000, max_delay_ns=FOREVER_NS
        )
        for i in range(500):
            client.publish(f"/d/s{i % 20}", payload_mod.encode_reading(i * 1000, i))
        assert agent.readings_stored == 500
        agent.stop()
        stored = sum(backend.count(s, 0, 1 << 62) for s in backend.sids())
        assert stored == 500

    def test_cache_is_fresh_before_flush(self):
        agent, backend, client = self.make_agent(
            max_batch=10_000, max_delay_ns=FOREVER_NS
        )
        client.publish("/d/a", payload_mod.encode_reading(123, 7))
        # Not yet durable, but the agent-side cache already serves it.
        assert agent.latest("/d/a").value == 7
        agent.stop()
        sid = agent.sid_of("/d/a")
        assert backend.count(sid, 0, 1000) == 1

    def test_commit_hop_stamped_at_flush_completion(self):
        agent, backend, client = self.make_agent(
            max_batch=10_000, max_delay_ns=FOREVER_NS
        )
        client.publish("/d/a", payload_mod.encode_reading(1, 1))
        assert agent.metrics.value(
            "dcdb_pipeline_latency_seconds", {"hop": "insert"}
        ) == 1
        # commit only lands once the batch is flushed.
        assert agent.metrics.value(
            "dcdb_pipeline_latency_seconds", {"hop": "commit"}
        ) == 0
        agent.writer.drain()
        assert agent.metrics.value(
            "dcdb_pipeline_latency_seconds", {"hop": "commit"}
        ) == 1
        agent.stop()

    def test_status_includes_writer_block(self):
        agent, backend, client = self.make_agent()
        client.publish("/d/a", payload_mod.encode_reading(1, 1))
        agent.stop()
        status = agent.status()
        assert status["writer"]["enqueued"] == 1
        assert status["writer"]["flushed"] == 1
        assert status["writer"]["dropped"] == 0

    def test_synchronous_agent_status_has_no_writer(self):
        hub = InProcHub(allow_subscribe=False)
        agent = CollectAgent(MemoryBackend(), broker=hub)
        assert agent.writer is None
        assert agent.status()["writer"] is None
