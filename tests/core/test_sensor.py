"""Tests for the sensor data model and cache."""

import pytest
from hypothesis import given, strategies as st

from repro.common.timeutil import NS_PER_SEC
from repro.core.sensor import SensorCache, SensorMetadata, SensorReading


class TestSensorReading:
    def test_ordering_by_timestamp(self):
        assert SensorReading(1, 100) < SensorReading(2, 0)

    def test_scaled(self):
        assert SensorReading(0, 45000).scaled(1000.0) == 45.0

    def test_scaled_identity(self):
        assert SensorReading(0, 7).scaled(1.0) == 7.0


class TestSensorMetadata:
    def test_physical_round_trip(self):
        meta = SensorMetadata(name="t", scale=100.0)
        raw = meta.from_physical(45.67)
        assert meta.to_physical(SensorReading(0, raw)) == pytest.approx(45.67)

    def test_defaults(self):
        meta = SensorMetadata(name="s")
        assert meta.unit == "count"
        assert meta.publish is True
        assert meta.delta is False


class TestSensorCache:
    def test_store_and_latest(self):
        cache = SensorCache()
        cache.store(SensorReading(1, 10))
        cache.store(SensorReading(2, 20))
        assert cache.latest() == SensorReading(2, 20)

    def test_empty_latest(self):
        assert SensorCache().latest() is None

    def test_eviction_by_age(self):
        cache = SensorCache(maxage_ns=10 * NS_PER_SEC)
        for i in range(30):
            cache.store(SensorReading(i * NS_PER_SEC, i))
        readings = cache.snapshot()
        # Window is [latest - 10s, latest]: timestamps 19..29.
        assert readings[0].timestamp == 19 * NS_PER_SEC
        assert len(readings) == 11

    def test_two_minute_default_window(self):
        cache = SensorCache()
        assert cache.maxage_ns == 120 * NS_PER_SEC

    def test_view_range(self):
        cache = SensorCache()
        for i in range(10):
            cache.store(SensorReading(i, i * 10))
        view = cache.view(3, 6)
        assert [r.timestamp for r in view] == [3, 4, 5, 6]

    def test_average_all(self):
        cache = SensorCache()
        for v in (10, 20, 30):
            cache.store(SensorReading(v, v))
        assert cache.average() == 20.0

    def test_average_window(self):
        cache = SensorCache()
        for i in range(10):
            cache.store(SensorReading(i * NS_PER_SEC, i))
        # Last 2 seconds: values 7, 8, 9.
        assert cache.average(2 * NS_PER_SEC) == 8.0

    def test_average_empty(self):
        assert SensorCache().average() is None

    def test_len_and_clear(self):
        cache = SensorCache()
        cache.store(SensorReading(1, 1))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_memory_estimate_grows(self):
        cache = SensorCache()
        assert cache.memory_bytes == 0
        cache.store(SensorReading(1, 1))
        assert cache.memory_bytes > 0

    def test_invalid_maxage_rejected(self):
        with pytest.raises(ValueError):
            SensorCache(maxage_ns=0)

    @given(st.lists(st.integers(min_value=0, max_value=10**12), min_size=1, max_size=60))
    def test_window_invariant_property(self, timestamps):
        cache = SensorCache(maxage_ns=1000)
        for t in sorted(timestamps):
            cache.store(SensorReading(t, 0))
        readings = cache.snapshot()
        newest = readings[-1].timestamp
        assert all(newest - r.timestamp <= 1000 for r in readings)
        # The newest reading always survives.
        assert readings[-1].timestamp == max(timestamps)
