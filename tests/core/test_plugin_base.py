"""Tests for the plugin base classes: sensors, groups, configurators."""

import pytest

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.common.timeutil import NS_PER_SEC
from repro.core.pusher.plugin import (
    ConfiguratorBase,
    Entity,
    PluginSensor,
    SensorGroup,
)


class CountingGroup(SensorGroup):
    """Test double returning the cycle number for every sensor."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.cycles = 0

    def read_raw(self, timestamp):
        self.cycles += 1
        return [self.cycles * 10 + i for i in range(len(self.sensors))]


class FailingGroup(SensorGroup):
    def read_raw(self, timestamp):
        raise PluginError("device unreachable")


class WrongArityGroup(SensorGroup):
    def read_raw(self, timestamp):
        return [1, 2, 3]  # regardless of sensor count


class TestPluginSensor:
    def test_plain_processing_caches(self):
        sensor = PluginSensor("s", "/s")
        reading = sensor.process_raw(100, 42)
        assert reading.value == 42
        assert sensor.cache.latest() == reading
        assert sensor.readings_taken == 1

    def test_delta_first_sample_suppressed(self):
        sensor = PluginSensor("s", "/s")
        sensor.metadata.delta = True
        assert sensor.process_raw(1, 1000) is None
        reading = sensor.process_raw(2, 1500)
        assert reading.value == 500

    def test_delta_counter_wrap_suppressed(self):
        sensor = PluginSensor("s", "/s")
        sensor.metadata.delta = True
        sensor.process_raw(1, 1000)
        assert sensor.process_raw(2, 50) is None  # wrapped/reset
        reading = sensor.process_raw(3, 80)
        assert reading.value == 30

    def test_reset_delta(self):
        sensor = PluginSensor("s", "/s")
        sensor.metadata.delta = True
        sensor.process_raw(1, 1000)
        sensor.reset_delta()
        assert sensor.process_raw(2, 2000) is None  # re-seeding


class TestSensorGroup:
    def _group(self, n=3, **kwargs):
        group = CountingGroup("g", **kwargs)
        for i in range(n):
            group.add_sensor(PluginSensor(f"s{i}", f"/s{i}"))
        return group

    def test_collective_read(self):
        group = self._group()
        results = group.read(1000)
        assert len(results) == 3
        assert [r.value for _s, r in results] == [10, 11, 12]

    def test_unpublished_sensor_excluded(self):
        group = self._group()
        group.sensors[1].metadata.publish = False
        results = group.read(1000)
        assert len(results) == 2

    def test_read_error_counted_not_raised(self):
        group = FailingGroup("g")
        group.add_sensor(PluginSensor("s", "/s"))
        assert group.read(1) == []
        assert group.read_errors == 1

    def test_wrong_arity_counted(self):
        group = WrongArityGroup("g")
        group.add_sensor(PluginSensor("s", "/s"))
        assert group.read(1) == []
        assert group.read_errors == 1

    def test_interval_propagates_to_sensors(self):
        group = self._group(interval_ns=5 * NS_PER_SEC)
        assert all(s.metadata.interval_ns == 5 * NS_PER_SEC for s in group.sensors)

    def test_schedule_alignment(self):
        group = self._group(interval_ns=NS_PER_SEC)
        assert group.schedule_after(int(2.3 * NS_PER_SEC)) == 3 * NS_PER_SEC

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigError):
            SensorGroup("g", interval_ns=0)

    def test_start_resets_deltas(self):
        group = self._group()
        group.sensors[0].metadata.delta = True
        group.sensors[0].process_raw(1, 100)
        group.start()
        assert group.sensors[0]._last_raw is None


class MiniConfigurator(ConfiguratorBase):
    """A minimal concrete configurator for framework testing."""

    plugin_name = "mini"
    entity_key = "host"

    def build_group(self, name, config, entity):
        group = CountingGroup(entity=entity, **self.group_common(name, config))
        for sensor in self.sensors_from(config):
            group.add_sensor(sensor)
        return group

    def build_entity(self, name, config):
        entity = Entity(name)
        entity.addr = config.get("addr")
        return entity


class TestConfigurator:
    def test_builds_groups_and_sensors(self):
        plugin = MiniConfigurator().read_config(
            """
            group g0 {
                interval 500
                sensor a { mqttsuffix /a  unit W  scale 10 }
                sensor b { mqttsuffix /b  delta true }
            }
            """
        )
        assert len(plugin.groups) == 1
        group = plugin.groups[0]
        assert group.interval_ns == 500 * 1_000_000
        assert group.sensors[0].metadata.unit == "W"
        assert group.sensors[0].metadata.scale == 10.0
        assert group.sensors[1].metadata.delta is True

    def test_template_group_defaults(self):
        plugin = MiniConfigurator().read_config(
            """
            template_group fast { interval 100  minValues 5 }
            group g0 {
                default fast
                sensor a { }
            }
            group g1 {
                default fast
                interval 200
                sensor b { }
            }
            """
        )
        assert plugin.groups[0].interval_ns == 100 * 1_000_000
        assert plugin.groups[0].min_values == 5
        assert plugin.groups[1].interval_ns == 200 * 1_000_000  # override wins
        assert plugin.groups[1].min_values == 5

    def test_template_sensor_defaults(self):
        plugin = MiniConfigurator().read_config(
            """
            template_sensor watts { unit W  scale 1000 }
            group g0 {
                sensor a { default watts }
                sensor b { default watts  scale 1 }
            }
            """
        )
        sensors = plugin.groups[0].sensors
        assert sensors[0].metadata.unit == "W"
        assert sensors[0].metadata.scale == 1000.0
        assert sensors[1].metadata.scale == 1.0

    def test_unknown_template_raises(self):
        with pytest.raises(ConfigError, match="unknown template"):
            MiniConfigurator().read_config("group g { default nope }")

    def test_entity_wiring(self):
        plugin = MiniConfigurator().read_config(
            """
            host h0 { addr 10.0.0.1 }
            group g0 { entity h0
                       sensor a { } }
            """
        )
        assert plugin.groups[0].entity is plugin.entities[0]
        assert plugin.entities[0].addr == "10.0.0.1"

    def test_unknown_entity_raises(self):
        with pytest.raises(ConfigError, match="unknown entity"):
            MiniConfigurator().read_config("group g { entity ghost\n sensor a { } }")

    def test_cache_interval_from_global(self):
        configurator = MiniConfigurator()
        plugin = configurator.read_config(
            """
            global { cacheInterval 5000 }
            group g0 { sensor a { } }
            """
        )
        assert plugin.groups[0].sensors[0].cache.maxage_ns == 5000 * 1_000_000

    def test_default_mqtt_suffix(self):
        plugin = MiniConfigurator().read_config("group g0 { sensor foo { } }")
        assert plugin.groups[0].sensors[0].mqtt_suffix == "/foo"

    def test_sensor_count(self):
        plugin = MiniConfigurator().read_config(
            "group g0 { sensor a { }\n sensor b { } }\ngroup g1 { sensor c { } }"
        )
        assert plugin.sensor_count == 3
        assert len(plugin.all_sensors()) == 3

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            MiniConfigurator().read_config("group g { interval 0\n sensor a { } }")

    def test_accepts_pre_parsed_tree(self):
        tree = PropertyTree()
        group = tree.add("group", "g0")
        group.add("sensor", "a")
        plugin = MiniConfigurator().read_config(tree)
        assert plugin.sensor_count == 1
