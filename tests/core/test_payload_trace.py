"""Wire compatibility of the optional trace header.

The trace header is opt-in sugar on the flat 16-byte-record frame;
these tests pin the compatibility contract: headerless payloads decode
exactly as before, headered ones round-trip their trace id, and a
trace-aware agent ingests both shapes side by side (old pusher / new
pusher mixes feeding one Collect Agent).
"""

from __future__ import annotations

import pytest

from repro.common.errors import TransportError
from repro.core.payload import (
    RECORD_SIZE,
    TRACE_HEADER_SIZE,
    TRACE_MAGIC,
    decode_message,
    decode_readings,
    encode_reading,
    encode_readings,
    has_trace_header,
    trace_id_of,
)
from repro.core.sensor import SensorReading

READINGS = [SensorReading(1_000, 42), SensorReading(2_000, -7)]


class TestHeaderlessFrames:
    def test_encode_without_trace_id_is_legacy_frame(self):
        payload = encode_readings(READINGS)
        assert len(payload) == len(READINGS) * RECORD_SIZE
        assert not has_trace_header(payload)
        assert trace_id_of(payload) is None

    def test_decode_message_returns_none_trace(self):
        readings, trace_id = decode_message(encode_readings(READINGS))
        assert readings == READINGS
        assert trace_id is None

    def test_single_reading_unchanged(self):
        payload = encode_reading(123, 456)
        assert len(payload) == RECORD_SIZE
        assert decode_readings(payload) == [SensorReading(123, 456)]


class TestHeaderedFrames:
    def test_round_trip(self):
        payload = encode_readings(READINGS, trace_id=0xDEADBEEF)
        assert len(payload) % RECORD_SIZE == TRACE_HEADER_SIZE
        assert has_trace_header(payload)
        assert trace_id_of(payload) == 0xDEADBEEF
        readings, trace_id = decode_message(payload)
        assert readings == READINGS
        assert trace_id == 0xDEADBEEF

    def test_legacy_decoder_strips_header(self):
        # A decoder that does not care about tracing still gets the
        # readings out of a traced payload.
        payload = encode_readings(READINGS, trace_id=99)
        assert decode_readings(payload) == READINGS

    def test_empty_batch_with_header(self):
        payload = encode_readings([], trace_id=5)
        assert has_trace_header(payload)
        readings, trace_id = decode_message(payload)
        assert readings == []
        assert trace_id == 5

    def test_header_shape_cannot_alias_legacy_frame(self):
        # 12 mod 16 is unreachable for flat 16-byte records, and the
        # magic byte guards the (impossible) collision anyway.
        legacy = encode_readings(READINGS)
        assert len(legacy) % RECORD_SIZE == 0
        assert legacy[0] != TRACE_MAGIC or not has_trace_header(legacy)

    def test_wrong_magic_not_treated_as_header(self):
        payload = bytearray(encode_readings(READINGS, trace_id=7))
        payload[0] ^= 0xFF
        assert not has_trace_header(bytes(payload))
        # ... and the now-unrecognized 12-byte prefix makes the length
        # invalid for a flat frame: framing error, not silent garbage.
        with pytest.raises(TransportError):
            decode_readings(bytes(payload))

    def test_truncated_frame_rejected(self):
        with pytest.raises(TransportError):
            decode_readings(b"\x00" * 17)


class TestOldNewMixThroughAgent:
    def test_agent_ingests_both_shapes(self):
        from repro.core.collectagent import CollectAgent
        from repro.mqtt.inproc import InProcClient, InProcHub
        from repro.storage import MemoryBackend

        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub)
        old_pusher = InProcClient("old", hub)
        new_pusher = InProcClient("new", hub)
        old_pusher.connect()
        new_pusher.connect()
        old_pusher.publish("/mix/old/s0", encode_readings([SensorReading(1_000, 1)]))
        new_pusher.publish(
            "/mix/new/s0",
            encode_readings([SensorReading(2_000, 2)], trace_id=0xABC),
        )
        assert agent.readings_stored == 2
        sids = backend.sids()
        assert len(sids) == 2
        values = sorted(
            backend.query(sid, 0, 1 << 62)[1][0] for sid in sids
        )
        assert values == [1, 2]
