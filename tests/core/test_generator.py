"""Tests for the plugin skeleton generator."""

import os
import subprocess
import sys

import pytest

from repro.core.pusher.generator import generate, main


class TestGenerate:
    def test_writes_three_files(self, tmp_path):
        written = generate("mydevice", str(tmp_path))
        names = {os.path.basename(p) for p in written}
        assert names == {"mydevice.py", "mydevice.conf", "test_mydevice.py"}

    def test_refuses_overwrite(self, tmp_path):
        generate("mydevice", str(tmp_path))
        with pytest.raises(FileExistsError):
            generate("mydevice", str(tmp_path))

    def test_invalid_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            generate("My-Device", str(tmp_path))
        with pytest.raises(ValueError):
            generate("7name", str(tmp_path))

    def test_generated_plugin_is_importable_and_registers(self, tmp_path):
        generate("skeldev", str(tmp_path))
        sys.path.insert(0, str(tmp_path))
        try:
            import importlib

            importlib.import_module("skeldev")
            from repro.core.pusher.registry import create_configurator

            configurator = create_configurator("skeldev")
            plugin = configurator.read_config(
                "group g0 { interval 1000\n sensor s0 { } }"
            )
            assert plugin.sensor_count == 1
            # The skeleton's read_raw raises PluginError until filled
            # in; the framework must swallow it and count the failure.
            group = plugin.groups[0]
            assert group.read(1) == []
            assert group.read_errors == 1
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("skeldev", None)

    def test_generated_config_parses(self, tmp_path):
        generate("confdev", str(tmp_path))
        from repro.common.proptree import parse_info

        with open(tmp_path / "confdev.conf", encoding="utf-8") as handle:
            tree = parse_info(handle.read())
        assert tree.child("group") is not None

    def test_cli_main(self, tmp_path, capsys):
        rc = main(["clidev", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clidev.py" in out

    def test_cli_error_path(self, tmp_path, capsys):
        rc = main(["Bad-Name", str(tmp_path)])
        assert rc == 1
        assert "error" in capsys.readouterr().err
