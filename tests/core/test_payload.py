"""Tests for MQTT payload framing of sensor readings."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import TransportError
from repro.core.payload import RECORD_SIZE, decode_readings, encode_reading, encode_readings
from repro.core.sensor import SensorReading


class TestFraming:
    def test_single_reading_round_trip(self):
        payload = encode_reading(123456789, -42)
        assert decode_readings(payload) == [SensorReading(123456789, -42)]

    def test_multi_reading_round_trip(self):
        readings = [SensorReading(i * 1000, i * 7) for i in range(10)]
        assert decode_readings(encode_readings(readings)) == readings

    def test_record_size(self):
        assert RECORD_SIZE == 16
        assert len(encode_reading(0, 0)) == 16

    def test_empty_payload(self):
        assert decode_readings(b"") == []
        assert encode_readings([]) == b""

    def test_misaligned_payload_rejected(self):
        with pytest.raises(TransportError, match="multiple"):
            decode_readings(b"\x00" * 17)

    def test_negative_values_preserved(self):
        readings = [SensorReading(1, -(2**62))]
        assert decode_readings(encode_readings(readings)) == readings

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**63 - 1),
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
            ),
            max_size=100,
        )
    )
    def test_round_trip_property(self, pairs):
        readings = [SensorReading(t, v) for t, v in pairs]
        assert decode_readings(encode_readings(readings)) == readings
