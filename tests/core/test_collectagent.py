"""Tests for the Collect Agent ingest path."""

from repro.common.timeutil import NS_PER_SEC
from repro.core import payload as payload_mod
from repro.core.collectagent import CollectAgent
from repro.core.sensor import SensorReading
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage import MemoryBackend


def make_agent():
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    client = InProcClient("pusher", hub)
    client.connect()
    return agent, backend, client


def publish_reading(client, topic, timestamp, value):
    client.publish(topic, payload_mod.encode_reading(timestamp, value))


class TestIngest:
    def test_reading_stored_under_sid(self):
        agent, backend, client = make_agent()
        publish_reading(client, "/sys/r0/n0/power", 1000, 250)
        sid = agent.sid_of("/sys/r0/n0/power")
        ts, vals = backend.query(sid, 0, 10_000)
        assert ts.tolist() == [1000] and vals.tolist() == [250]

    def test_multi_reading_payload(self):
        agent, backend, client = make_agent()
        readings = [SensorReading(i, i * 2) for i in range(1, 6)]
        client.publish("/s/a", payload_mod.encode_readings(readings))
        assert agent.readings_stored == 5

    def test_topic_sid_mapping_persisted(self):
        agent, backend, client = make_agent()
        publish_reading(client, "/sys/r0/n0/power", 1, 1)
        stored_hex = backend.get_metadata("sidmap/sys/r0/n0/power")
        assert stored_hex == agent.sid_of("/sys/r0/n0/power").hex()

    def test_mapping_persisted_once(self):
        agent, backend, client = make_agent()
        publish_reading(client, "/s/a", 1, 1)
        first = backend.get_metadata("sidmap/s/a")
        publish_reading(client, "/s/a", 2, 2)
        assert backend.get_metadata("sidmap/s/a") == first

    def test_malformed_payload_counted(self):
        agent, backend, client = make_agent()
        client.publish("/s/bad", b"\x01\x02\x03")  # not a 16-byte multiple
        assert agent.decode_errors == 1
        assert agent.readings_stored == 0

    def test_empty_payload_ignored(self):
        agent, backend, client = make_agent()
        client.publish("/s/empty", b"")
        assert agent.readings_stored == 0
        assert agent.decode_errors == 0

    def test_too_deep_topic_counted_as_error(self):
        agent, backend, client = make_agent()
        deep = "/" + "/".join(f"l{i}" for i in range(9))
        client.publish(deep, payload_mod.encode_reading(1, 1))
        assert agent.decode_errors == 1

    def test_ttl_applied(self):
        hub = InProcHub(allow_subscribe=False)
        clock = lambda: 0  # noqa: E731 - frozen clock
        backend = MemoryBackend(clock=lambda: now[0])
        now = [0]
        agent = CollectAgent(backend, broker=hub, default_ttl_s=10)
        client = InProcClient("p", hub)
        client.connect()
        publish_reading(client, "/s/t", 1 * NS_PER_SEC, 5)
        sid = agent.sid_of("/s/t")
        now[0] = 5 * NS_PER_SEC
        assert backend.query(sid, 0, 100 * NS_PER_SEC)[0].size == 1
        now[0] = 12 * NS_PER_SEC
        assert backend.query(sid, 0, 100 * NS_PER_SEC)[0].size == 0


class TestCache:
    def test_latest_reading_cached(self):
        agent, backend, client = make_agent()
        publish_reading(client, "/s/a", 1, 10)
        publish_reading(client, "/s/a", 2, 20)
        assert agent.latest("/s/a") == SensorReading(2, 20)

    def test_unknown_topic_latest_none(self):
        agent, _, _ = make_agent()
        assert agent.latest("/never") is None

    def test_cached_topics_sorted(self):
        agent, backend, client = make_agent()
        publish_reading(client, "/s/b", 1, 1)
        publish_reading(client, "/s/a", 1, 1)
        assert agent.cached_topics() == ["/s/a", "/s/b"]

    def test_cache_of(self):
        agent, backend, client = make_agent()
        publish_reading(client, "/s/a", 1, 1)
        assert len(agent.cache_of("/s/a")) == 1
        assert agent.cache_of("/nope") is None


class TestStatus:
    def test_status_counters(self):
        agent, backend, client = make_agent()
        publish_reading(client, "/s/a", 1, 1)
        publish_reading(client, "/s/b", 1, 1)
        status = agent.status()
        assert status["readingsStored"] == 2
        assert status["knownSensors"] == 2
        assert status["messagesReceived"] == 2
        assert status["decodeErrors"] == 0
