"""Tests for 128-bit hierarchical sensor IDs."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import StorageError, TransportError
from repro.core.sid import (
    SID_LEVEL_MASK,
    SID_LEVELS,
    SID_RESERVED_DEEPEST_BASE,
    SensorId,
    SidMapper,
)


class TestSensorId:
    def test_from_codes_level_layout(self):
        sid = SensorId.from_codes([1, 2, 3])
        assert sid.level_code(0) == 1
        assert sid.level_code(1) == 2
        assert sid.level_code(2) == 3
        assert sid.level_code(3) == 0

    def test_depth(self):
        assert SensorId.from_codes([1, 2, 3]).depth() == 3
        assert SensorId.from_codes([]).depth() == 0
        assert SensorId.from_codes([1] * SID_LEVELS).depth() == SID_LEVELS

    def test_prefix_zeroes_lower_levels(self):
        sid = SensorId.from_codes([1, 2, 3, 4])
        assert SensorId(sid.prefix(2)) == SensorId.from_codes([1, 2])
        assert sid.prefix(0) == 0

    def test_subtree_shares_prefix(self):
        a = SensorId.from_codes([1, 2, 3])
        b = SensorId.from_codes([1, 2, 9])
        assert a.prefix(2) == b.prefix(2)
        assert a.prefix(3) != b.prefix(3)

    def test_ordering_groups_by_subtree(self):
        # Integer ordering clusters sensors under the same parent.
        parent1 = [SensorId.from_codes([1, 1, i]) for i in range(1, 4)]
        parent2 = [SensorId.from_codes([1, 2, i]) for i in range(1, 4)]
        assert max(parent1) < min(parent2)

    def test_hex_round_trip(self):
        sid = SensorId.from_codes([7, 77, 777])
        assert SensorId.from_hex(sid.hex()) == sid
        assert len(sid.hex()) == 32

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SensorId(1 << 128)
        with pytest.raises(ValueError):
            SensorId(-1)

    def test_too_many_levels_rejected(self):
        with pytest.raises(ValueError):
            SensorId.from_codes([1] * (SID_LEVELS + 1))

    def test_code_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SensorId.from_codes([SID_LEVEL_MASK + 1])

    def test_level_index_bounds(self):
        sid = SensorId.from_codes([1])
        with pytest.raises(IndexError):
            sid.level_code(SID_LEVELS)

    @given(st.lists(st.integers(min_value=0, max_value=SID_LEVEL_MASK), max_size=SID_LEVELS))
    def test_codes_round_trip_property(self, codes):
        sid = SensorId.from_codes(codes)
        for i, code in enumerate(codes):
            assert sid.level_code(i) == code


class TestSidMapper:
    def test_topic_round_trip(self):
        mapper = SidMapper()
        sid = mapper.sid_for_topic("/hpc/rack0/node1/power")
        assert mapper.topic_for_sid(sid) == "/hpc/rack0/node1/power"

    def test_mapping_is_stable(self):
        mapper = SidMapper()
        assert mapper.sid_for_topic("/a/b") == mapper.sid_for_topic("/a/b")

    def test_distinct_topics_distinct_sids(self):
        mapper = SidMapper()
        sids = {
            mapper.sid_for_topic(f"/sys/rack{r}/node{n}/s{s}")
            for r in range(3)
            for n in range(3)
            for s in range(3)
        }
        assert len(sids) == 27

    def test_leading_slash_canonicalized(self):
        mapper = SidMapper()
        assert mapper.sid_for_topic("/a/b") == mapper.sid_for_topic("a/b")

    def test_shared_components_share_codes(self):
        mapper = SidMapper()
        a = mapper.sid_for_topic("/hpc/rack0/n0")
        b = mapper.sid_for_topic("/hpc/rack0/n1")
        assert a.prefix(2) == b.prefix(2)

    def test_lookup_does_not_register(self):
        mapper = SidMapper()
        assert mapper.lookup_topic("/never/seen") is None
        assert len(mapper) == 0

    def test_lookup_after_register(self):
        mapper = SidMapper()
        sid = mapper.sid_for_topic("/x/y")
        assert mapper.lookup_topic("/x/y") == sid

    def test_unknown_sid_raises(self):
        mapper = SidMapper()
        with pytest.raises(StorageError, match="unknown code"):
            mapper.topic_for_sid(SensorId.from_codes([9, 9]))

    def test_too_deep_topic_rejected(self):
        mapper = SidMapper()
        deep = "/" + "/".join(f"l{i}" for i in range(SID_LEVELS + 1))
        with pytest.raises(TransportError, match="levels"):
            mapper.sid_for_topic(deep)

    def test_wildcard_topic_rejected(self):
        mapper = SidMapper()
        with pytest.raises(TransportError):
            mapper.sid_for_topic("/a/+/b")

    def test_deepest_level_never_allocates_rollup_codes(self):
        from repro.storage.rollup import is_rollup_sid

        mapper = SidMapper()
        deep = SID_LEVELS - 1
        # Exhaust the deepest level up to the reserved rollup range.
        mapper._forward[deep] = {
            f"c{i}": i + 1 for i in range(SID_RESERVED_DEEPEST_BASE - 2)
        }
        mapper._reverse[deep] = {
            code: name for name, code in mapper._forward[deep].items()
        }
        prefix = "/" + "/".join("abcdefg")
        sid = mapper.sid_for_topic(prefix + "/last")
        # The final allocatable code stays below the rollup base, so a
        # real sensor can never be misclassified as a rollup series.
        assert sid.level_code(deep) == SID_RESERVED_DEEPEST_BASE - 1
        assert not is_rollup_sid(sid)
        with pytest.raises(StorageError, match="exhausted"):
            mapper.sid_for_topic(prefix + "/overflow")

    def test_prefix_for_topic_prefix(self):
        mapper = SidMapper()
        sid = mapper.sid_for_topic("/hpc/rack0/node1/power")
        prefix, levels = mapper.prefix_for_topic_prefix("/hpc/rack0")
        assert levels == 2
        assert sid.prefix(2) == prefix

    def test_prefix_for_unknown_prefix(self):
        mapper = SidMapper()
        assert mapper.prefix_for_topic_prefix("/nope") is None

    def test_components_at_level(self):
        mapper = SidMapper()
        mapper.sid_for_topic("/hpc/r0/n0")
        mapper.sid_for_topic("/hpc/r1/n0")
        assert sorted(mapper.components_at_level(1)) == ["r0", "r1"]

    def test_known_topics(self):
        mapper = SidMapper()
        mapper.sid_for_topic("/a/b")
        mapper.sid_for_topic("/c/d")
        assert mapper.known_topics() == ["/a/b", "/c/d"]

    _components = st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=6
    )

    @given(st.lists(st.lists(_components, min_size=1, max_size=SID_LEVELS), min_size=1, max_size=30))
    def test_bijection_property(self, topic_levels):
        mapper = SidMapper()
        topics = ["/" + "/".join(levels) for levels in topic_levels]
        sids = {}
        for topic in topics:
            sids[topic] = mapper.sid_for_topic(topic)
        # 1:1 both ways.
        assert len(set(sids.values())) == len(set(topics))
        for topic, sid in sids.items():
            assert mapper.topic_for_sid(sid) == topic
