"""Tests for the Pusher and Collect Agent RESTful APIs over HTTP."""

import pytest

from repro.common.httpjson import http_json
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core import payload as payload_mod
from repro.core.collectagent import CollectAgent
from repro.core.collectagent.restapi import CollectAgentRestApi
from repro.core.pusher import Pusher, PusherConfig
from repro.core.pusher.restapi import PusherRestApi
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage import MemoryBackend


@pytest.fixture
def stack():
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    clock = SimClock(0)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/api/h0"),
        client=InProcClient("p0", hub),
        clock=clock,
    )
    pusher.load_plugin("tester", "group g0 { interval 1000\n numSensors 3 }")
    pusher.client.connect()
    pusher.start_plugin("tester")
    pusher.advance_to(5 * NS_PER_SEC)
    with PusherRestApi(pusher) as papi, CollectAgentRestApi(agent) as aapi:
        yield pusher, agent, papi, aapi


def url(api, path):
    return f"http://127.0.0.1:{api.port}{path}"


class TestPusherApi:
    def test_status(self, stack):
        pusher, _, papi, _ = stack
        status, body = http_json("GET", url(papi, "/status"))
        assert status == 200
        assert body["readingsCollected"] == 15
        assert body["plugins"]["tester"]["sensors"] == 3

    def test_plugins_listing(self, stack):
        _, _, papi, _ = stack
        _, body = http_json("GET", url(papi, "/plugins"))
        assert body["tester"]["groups"][0]["intervalMs"] == 1000

    def test_sensor_inventory(self, stack):
        _, _, papi, _ = stack
        _, body = http_json("GET", url(papi, "/plugins/tester/sensors"))
        topics = {s["topic"] for s in body}
        assert topics == {f"/api/h0/g0/s{i}" for i in range(3)}
        assert all(s["latest"] is not None for s in body)

    def test_sensor_inventory_unknown_plugin(self, stack):
        _, _, papi, _ = stack
        status, _ = http_json("GET", url(papi, "/plugins/ghost/sensors"))
        assert status == 404

    def test_cache_endpoint(self, stack):
        _, _, papi, _ = stack
        status, body = http_json(
            "GET", url(papi, "/cache?topic=/api/h0/g0/s0")
        )
        assert status == 200
        assert len(body) == 5
        assert body[-1]["timestamp"] == 5 * NS_PER_SEC

    def test_cache_missing_topic_param(self, stack):
        _, _, papi, _ = stack
        status, _ = http_json("GET", url(papi, "/cache"))
        assert status == 400

    def test_average_endpoint(self, stack):
        _, _, papi, _ = stack
        status, body = http_json(
            "GET", url(papi, "/average?topic=/api/h0/g0/s0")
        )
        assert status == 200
        assert body["average"] == pytest.approx(2.0)  # values 0..4

    def test_stop_start_via_api(self, stack):
        pusher, _, papi, _ = stack
        http_json("POST", url(papi, "/plugins/tester/stop"), body={})
        assert not pusher.plugins["tester"].running
        http_json("POST", url(papi, "/plugins/tester/start"), body={})
        assert pusher.plugins["tester"].running

    def test_reload_via_api(self, stack):
        pusher, _, papi, _ = stack
        import urllib.request

        request = urllib.request.Request(
            url(papi, "/plugins/tester/reload"),
            data=b"group g0 { interval 1000\n numSensors 7 }",
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
        assert pusher.plugins["tester"].sensor_count == 7


class TestAgentApi:
    def test_status(self, stack):
        _, agent, _, aapi = stack
        status, body = http_json("GET", url(aapi, "/status"))
        assert status == 200
        assert body["readingsStored"] == 15

    def test_topics(self, stack):
        _, _, _, aapi = stack
        _, body = http_json("GET", url(aapi, "/topics"))
        assert len(body) == 3

    def test_latest(self, stack):
        _, _, _, aapi = stack
        status, body = http_json(
            "GET", url(aapi, "/latest?topic=/api/h0/g0/s1")
        )
        assert status == 200
        assert body["timestamp"] == 5 * NS_PER_SEC

    def test_latest_unknown_topic(self, stack):
        _, _, _, aapi = stack
        status, _ = http_json("GET", url(aapi, "/latest?topic=/ghost"))
        assert status == 404

    def test_query_from_storage(self, stack):
        _, _, _, aapi = stack
        status, body = http_json(
            "GET",
            url(aapi, f"/query?topic=/api/h0/g0/s0&start=0&end={10 * NS_PER_SEC}"),
        )
        assert status == 200
        assert len(body["timestamps"]) == 5

    def test_cache_endpoint(self, stack):
        _, _, _, aapi = stack
        status, body = http_json("GET", url(aapi, "/cache?topic=/api/h0/g0/s2"))
        assert status == 200 and len(body) == 5


class TestAgentAnalyticsEndpoints:
    def test_no_manager_404(self, stack):
        _, _, _, aapi = stack
        status, _ = http_json("GET", url(aapi, "/analytics"))
        assert status == 404
        status, _ = http_json("GET", url(aapi, "/alarms"))
        assert status == 404

    def test_analytics_status_and_alarms(self):
        from repro.analytics import AnalyticsManager, ThresholdAlarm
        from repro.core.collectagent.restapi import CollectAgentRestApi
        from repro.core.sensor import SensorReading
        from repro.mqtt.inproc import InProcHub
        from repro.storage import MemoryBackend

        hub = InProcHub(allow_subscribe=False)
        agent = CollectAgent(MemoryBackend(), broker=hub)
        manager = AnalyticsManager()
        manager.add_operator(ThresholdAlarm("cap", ["/p/#"], high=100))
        manager.attach_to_agent(agent)
        agent.analytics = manager
        manager.feed("/p/n0", SensorReading(NS_PER_SEC, 500))
        with CollectAgentRestApi(agent) as api:
            status, body = http_json("GET", url(api, "/analytics"))
            assert status == 200
            assert body["operators"][0]["name"] == "cap"
            status, alarms = http_json("GET", url(api, "/alarms?limit=10"))
            assert status == 200
            assert len(alarms) == 1
            assert alarms[0]["operator"] == "cap"
            assert alarms[0]["value"] == 1
