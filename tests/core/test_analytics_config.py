"""Tests for configuration-file-driven analytics."""

import pytest

from repro.analytics import manager_from_config
from repro.analytics.operators import (
    Aggregator,
    EmaSmoother,
    MovingAverage,
    RateOfChange,
    ThresholdAlarm,
    ZScoreDetector,
)
from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.sensor import SensorReading

FULL_CONFIG = """
global { maxAlarms 50 }
operator rack_power {
    type    aggregator
    input   /hpc/rack0/+/power
    input   /hpc/rack1/+/power
    output  total
    func    sum
    bucket  1000
}
operator smooth {
    type   ema
    input  /hpc/#
    alpha  0.5
}
operator avg {
    type   movingavg
    input  /hpc/#
    window 4
}
operator overheat {
    type  threshold
    input /hpc/+/temp
    high  90
    low   80
}
operator weird {
    type      zscore
    input     /hpc/#
    window    30
    threshold 5.0
}
operator erate {
    type  rate
    input /hpc/+/energy
    scale 10
}
"""


class TestManagerFromConfig:
    def test_all_operator_types(self):
        manager = manager_from_config(FULL_CONFIG)
        by_name = {op.name: op for op in manager.operators()}
        assert isinstance(by_name["rack_power"], Aggregator)
        assert isinstance(by_name["smooth"], EmaSmoother)
        assert isinstance(by_name["avg"], MovingAverage)
        assert isinstance(by_name["overheat"], ThresholdAlarm)
        assert isinstance(by_name["weird"], ZScoreDetector)
        assert isinstance(by_name["erate"], RateOfChange)

    def test_parameters_applied(self):
        manager = manager_from_config(FULL_CONFIG)
        by_name = {op.name: op for op in manager.operators()}
        assert by_name["rack_power"].func == "sum"
        assert by_name["rack_power"].bucket_ns == NS_PER_SEC
        assert by_name["rack_power"].inputs == [
            "/hpc/rack0/+/power",
            "/hpc/rack1/+/power",
        ]
        assert by_name["smooth"].alpha == 0.5
        assert by_name["avg"].window == 4
        assert by_name["overheat"].high == 90 and by_name["overheat"].low == 80
        assert by_name["weird"].threshold == 5.0
        assert by_name["erate"].scale == 10.0
        assert manager.alarms.maxlen == 50

    def test_configured_manager_processes_events(self):
        manager = manager_from_config(FULL_CONFIG)
        out = manager.feed("/hpc/node9/temp", SensorReading(NS_PER_SEC, 95))
        # Threshold alarm fires immediately on the first hot reading.
        alarm_topics = [t for t, _ in out]
        assert "/analytics/overheat/hpc_node9_temp_alarm" in alarm_topics

    @pytest.mark.parametrize(
        "snippet,match",
        [
            ("operator x { input /a }", "no type"),
            ("operator x { type ema }", "no inputs"),
            ("operator x { type warp\n input /a }", "unknown type"),
            ("operator x { type threshold\n input /a }", "needs a high"),
            ("operator { type ema\n input /a }", "without a name"),
        ],
    )
    def test_malformed_configs(self, snippet, match):
        with pytest.raises(ConfigError, match=match):
            manager_from_config(snippet)

    def test_duplicate_names_rejected(self):
        text = (
            "operator x { type ema\n input /a }\n"
            "operator x { type ema\n input /b }"
        )
        with pytest.raises(ValueError, match="already registered"):
            manager_from_config(text)
