"""Release hygiene: the public API surface is importable and coherent."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.common",
    "repro.mqtt",
    "repro.storage",
    "repro.core",
    "repro.core.pusher",
    "repro.core.collectagent",
    "repro.observability",
    "repro.plugins",
    "repro.devices",
    "repro.libdcdb",
    "repro.tools",
    "repro.grafana",
    "repro.simulation",
    "repro.analysis",
    "repro.analytics",
]


class TestPublicApi:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize(
        "name",
        [
            "repro",
            "repro.common",
            "repro.mqtt",
            "repro.storage",
            "repro.libdcdb",
            "repro.observability",
            "repro.simulation",
            "repro.analysis",
            "repro.analytics",
        ],
    )
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        for name in (
            "ConfigError",
            "TransportError",
            "StorageError",
            "QueryError",
            "PluginError",
            "UnitError",
        ):
            exc_type = getattr(repro, name)
            assert issubclass(exc_type, repro.DCDBError)

    def test_quickstart_docstring_pipeline_runs(self):
        """The module docstring's quickstart is executable as written."""
        from repro import (
            CollectAgent,
            DCDBClient,
            InProcClient,
            InProcHub,
            MemoryBackend,
            NS_PER_SEC,
            Pusher,
            PusherConfig,
            SimClock,
        )

        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        CollectAgent(backend, broker=hub)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/hpc/rack0/node0"),
            client=InProcClient("p0", hub),
            clock=SimClock(0),
        )
        pusher.load_plugin("tester", "group g0 { interval 1000\n numSensors 8 }")
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(60 * NS_PER_SEC)
        client = DCDBClient(backend)
        ts, values = client.query("/hpc/rack0/node0/g0/s0", 0, 120 * NS_PER_SEC)
        assert ts.size == 60

    def test_every_paper_plugin_loadable(self):
        from repro.core.pusher.registry import global_registry

        known = global_registry().known_plugins()
        paper_plugins = {
            "tester", "procfs", "sysfs", "perfevents", "gpfs",
            "opa", "ipmi", "snmp", "rest", "bacnet",
        }
        future_work_plugins = {"nvml", "appinstr"}
        assert paper_plugins | future_work_plugins <= set(known)
