"""Tests for the single storage node: memtable, segments, compaction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.sid import SensorId
from repro.storage.node import StorageNode

SID_A = SensorId.from_codes([1, 1])
SID_B = SensorId.from_codes([1, 2])


class TestBasicOperations:
    def test_insert_and_query(self):
        node = StorageNode()
        node.insert(SID_A, 100, 1)
        node.insert(SID_A, 200, 2)
        ts, vals = node.query(SID_A, 0, 1000)
        assert ts.tolist() == [100, 200]
        assert vals.tolist() == [1, 2]

    def test_range_bounds_inclusive(self):
        node = StorageNode()
        for t in (1, 2, 3, 4, 5):
            node.insert(SID_A, t, t)
        ts, _ = node.query(SID_A, 2, 4)
        assert ts.tolist() == [2, 3, 4]

    def test_unknown_sid_empty(self):
        node = StorageNode()
        ts, vals = node.query(SID_A, 0, 100)
        assert ts.size == 0 and vals.size == 0

    def test_sensors_isolated(self):
        node = StorageNode()
        node.insert(SID_A, 1, 10)
        node.insert(SID_B, 1, 20)
        assert node.query(SID_A, 0, 10)[1].tolist() == [10]
        assert node.query(SID_B, 0, 10)[1].tolist() == [20]

    def test_out_of_order_inserts_sorted_on_read(self):
        node = StorageNode()
        for t in (5, 1, 3, 2, 4):
            node.insert(SID_A, t, t * 10)
        ts, vals = node.query(SID_A, 0, 10)
        assert ts.tolist() == [1, 2, 3, 4, 5]
        assert vals.tolist() == [10, 20, 30, 40, 50]

    def test_last_write_wins_in_memtable(self):
        node = StorageNode()
        node.insert(SID_A, 1, 10)
        node.insert(SID_A, 1, 99)
        _, vals = node.query(SID_A, 0, 10)
        assert vals.tolist() == [99]

    def test_sids_listing(self):
        node = StorageNode()
        node.insert(SID_B, 1, 1)
        node.insert(SID_A, 1, 1)
        assert node.sids() == [SID_A, SID_B]

    def test_insert_batch(self):
        node = StorageNode()
        count = node.insert_batch([(SID_A, t, t, 0) for t in range(100)])
        assert count == 100
        assert node.query(SID_A, 0, 1000)[0].size == 100


class TestFlushAndSegments:
    def test_automatic_flush_at_threshold(self):
        node = StorageNode(flush_threshold=10)
        for t in range(25):
            node.insert(SID_A, t, t)
        assert node.flushes >= 2
        assert node.query(SID_A, 0, 100)[0].size == 25

    def test_query_merges_memtable_and_segments(self):
        node = StorageNode()
        node.insert(SID_A, 1, 1)
        node.flush()
        node.insert(SID_A, 2, 2)
        ts, _ = node.query(SID_A, 0, 10)
        assert ts.tolist() == [1, 2]

    def test_last_write_wins_across_flush(self):
        node = StorageNode()
        node.insert(SID_A, 1, 10)
        node.flush()
        node.insert(SID_A, 1, 99)
        _, vals = node.query(SID_A, 0, 10)
        assert vals.tolist() == [99]

    def test_segment_count_tracked(self):
        node = StorageNode()
        node.insert(SID_A, 1, 1)
        node.flush()
        node.insert(SID_A, 2, 2)
        node.flush()
        assert node.segment_count == 2


class TestCompaction:
    def test_compaction_merges_segments(self):
        node = StorageNode()
        for i in range(5):
            node.insert(SID_A, i, i)
            node.flush()
        node.compact()
        assert node.segment_count == 1
        assert node.query(SID_A, 0, 100)[0].size == 5

    def test_auto_compaction_bounds_segments(self):
        node = StorageNode(max_segments_per_sensor=3)
        for i in range(10):
            node.insert(SID_A, i, i)
            node.flush()
        assert node.segment_count <= 4
        assert node.query(SID_A, 0, 100)[0].size == 10

    def test_compaction_deduplicates(self):
        node = StorageNode()
        node.insert(SID_A, 1, 10)
        node.flush()
        node.insert(SID_A, 1, 99)
        node.flush()
        node.compact()
        _, vals = node.query(SID_A, 0, 10)
        assert vals.tolist() == [99]
        assert node.row_count == 1

    def test_compaction_drops_expired(self):
        clock = SimClock(0)
        node = StorageNode(clock=clock)
        node.insert(SID_A, 0, 1, ttl_s=1)
        node.insert(SID_A, 1, 2, ttl_s=0)
        node.flush()
        clock.set(5 * NS_PER_SEC)
        node.compact()
        assert node.row_count == 1


class TestTtl:
    def test_expired_rows_invisible(self):
        clock = SimClock(0)
        node = StorageNode(clock=clock)
        node.insert(SID_A, 0, 1, ttl_s=10)
        assert node.query(SID_A, 0, NS_PER_SEC)[0].size == 1
        clock.set(11 * NS_PER_SEC)
        assert node.query(SID_A, 0, NS_PER_SEC)[0].size == 0

    def test_ttl_zero_is_forever(self):
        clock = SimClock(0)
        node = StorageNode(clock=clock)
        node.insert(SID_A, 0, 1, ttl_s=0)
        clock.set(10**15)
        assert node.query(SID_A, 0, NS_PER_SEC)[0].size == 1

    def test_ttl_in_segments(self):
        clock = SimClock(0)
        node = StorageNode(clock=clock)
        node.insert(SID_A, 0, 1, ttl_s=5)
        node.flush()
        clock.set(6 * NS_PER_SEC)
        assert node.query(SID_A, 0, NS_PER_SEC)[0].size == 0


class TestDeleteBefore:
    def test_deletes_from_memtable_and_segments(self):
        node = StorageNode()
        for t in range(10):
            node.insert(SID_A, t, t)
        node.flush()
        for t in range(10, 20):
            node.insert(SID_A, t, t)
        removed = node.delete_before(SID_A, 15)
        assert removed == 15
        ts, _ = node.query(SID_A, 0, 100)
        assert ts.tolist() == list(range(15, 20))

    def test_delete_unknown_sid(self):
        node = StorageNode()
        assert node.delete_before(SID_A, 100) == 0


class TestQueryPath:
    def _pruned(self, node):
        family = node.metrics.counter(
            "dcdb_storage_segments_pruned_total", labelnames=("node",)
        )
        return family.value

    def test_non_overlapping_segments_pruned(self):
        node = StorageNode()
        for base in (0, 1000, 2000):
            for t in range(base, base + 10):
                node.insert(SID_A, t, t)
            node.flush()
        assert node.segment_count == 3
        before = self._pruned(node)
        ts, _ = node.query(SID_A, 1000, 1009)
        assert ts.tolist() == list(range(1000, 1010))
        assert self._pruned(node) - before == 2  # first and last segment skipped

    def test_single_segment_query_returns_views(self):
        node = StorageNode()
        for t in range(100):
            node.insert(SID_A, t, t)
        node.flush()
        ts, vals = node.query(SID_A, 10, 20)
        assert ts.tolist() == list(range(10, 21))
        # The fast path must not copy: both arrays are views into the
        # frozen segment.
        assert ts.base is not None and vals.base is not None

    def test_fast_path_skipped_when_memtable_has_rows(self):
        node = StorageNode()
        for t in range(10):
            node.insert(SID_A, t, t)
        node.flush()
        node.insert(SID_A, 5, 99)  # memtable overwrite of a segment row
        ts, vals = node.query(SID_A, 0, 100)
        assert ts.tolist() == list(range(10))
        assert vals.tolist()[5] == 99  # LWW across segment + memtable

    def test_query_many_matches_per_sid_query(self):
        node = StorageNode()
        for t in (5, 1, 3, 1, 9):
            node.insert(SID_A, t, t * 10)
            node.insert(SID_B, t, -t)
        node.flush()
        node.insert(SID_A, 2, 22)  # memtable rows on top of a segment
        result = node.query_many([SID_A, SID_B], 0, 100)
        assert set(result) == {SID_A, SID_B}
        for sid in (SID_A, SID_B):
            ts, vals = node.query(sid, 0, 100)
            assert result[sid][0].tolist() == ts.tolist()
            assert result[sid][1].tolist() == vals.tolist()

    def test_query_many_unknown_sid_gets_empty_entry(self):
        node = StorageNode()
        node.insert(SID_A, 1, 1)
        result = node.query_many([SID_A, SID_B], 0, 10)
        assert result[SID_B][0].size == 0 and result[SID_B][1].size == 0

    def test_sids_cache_invalidated_by_new_sensor(self):
        node = StorageNode()
        node.insert(SID_B, 1, 1)
        assert node.sids() == [SID_B]
        node.insert(SID_B, 2, 2)  # same sensor: cached list still valid
        assert node.sids() == [SID_B]
        node.insert(SID_A, 1, 1)  # new sensor: cache must be rebuilt
        assert node.sids() == [SID_A, SID_B]

    def test_sids_cache_invalidated_by_batch(self):
        node = StorageNode()
        node.insert(SID_A, 1, 1)
        assert node.sids() == [SID_A]
        node.insert_batch([(SID_B, t, t, 0) for t in range(5)])
        assert node.sids() == [SID_A, SID_B]

    def test_flush_deduplicates_segment_timestamps(self):
        node = StorageNode()
        node.insert(SID_A, 1, 10)
        node.insert(SID_A, 1, 99)
        node.flush()
        assert node.row_count == 1  # LWW applied at freeze time
        _, vals = node.query(SID_A, 0, 10)
        assert vals.tolist() == [99]


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=-(10**9), max_value=10**9),
            ),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=50),
    )
    def test_node_matches_dict_oracle(self, inserts, flush_threshold):
        node = StorageNode(flush_threshold=flush_threshold, max_segments_per_sensor=3)
        oracle: dict[int, int] = {}
        for t, v in inserts:
            node.insert(SID_A, t, v)
            oracle[t] = v  # last write wins
        ts, vals = node.query(SID_A, 0, 2000)
        expected = sorted(oracle.items())
        assert ts.tolist() == [t for t, _ in expected]
        assert vals.tolist() == [v for _, v in expected]

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_range_query_property(self, timestamps, lo, hi):
        node = StorageNode(flush_threshold=7)
        for t in timestamps:
            node.insert(SID_A, t, t)
        ts, _ = node.query(SID_A, min(lo, hi), max(lo, hi))
        expected = sorted({t for t in timestamps if min(lo, hi) <= t <= max(lo, hi)})
        assert ts.tolist() == expected


class TestFlushAccounting:
    def test_empty_flush_not_counted(self):
        node = StorageNode()
        node.flush()
        assert node.flushes == 0
        node.insert(SID_A, 1, 1)
        node.flush()
        assert node.flushes == 1
        node.flush()  # memtable empty again: no segment frozen
        assert node.flushes == 1


class TestVectorizedBatch:
    def test_single_sensor_batch_with_uniform_ttl(self):
        node = StorageNode()
        node.insert_batch([(SID_A, t, t * 2, 0) for t in range(500)])
        ts, vals = node.query(SID_A, 0, 1000)
        assert ts.tolist() == list(range(500))
        assert vals.tolist() == [t * 2 for t in range(500)]

    def test_single_sensor_batch_with_mixed_ttl(self):
        clock = SimClock(0)
        node = StorageNode(clock=clock)
        node.insert_batch(
            [(SID_A, 1 * NS_PER_SEC, 1, 5), (SID_A, 2 * NS_PER_SEC, 2, 0)]
        )
        clock.set(60 * NS_PER_SEC)
        ts, _ = node.query(SID_A, 0, 100 * NS_PER_SEC)
        assert ts.tolist() == [2 * NS_PER_SEC]  # 5 s TTL row expired

    def test_mixed_sensor_batch_groups_per_sid(self):
        node = StorageNode()
        items = []
        for t in range(100):
            items.append((SID_A, t, t, 0))
            items.append((SID_B, t, -t, 0))
        assert node.insert_batch(items) == 200
        assert node.query(SID_A, 0, 1000)[1].tolist() == list(range(100))
        assert node.query(SID_B, 0, 1000)[1].tolist() == [-t for t in range(100)]

    def test_mixed_sensor_batch_with_ttl(self):
        clock = SimClock(0)
        node = StorageNode(clock=clock)
        node.insert_batch(
            [
                (SID_A, 1 * NS_PER_SEC, 1, 2),
                (SID_B, 1 * NS_PER_SEC, 2, 0),
                (SID_A, 2 * NS_PER_SEC, 3, 0),
            ]
        )
        clock.set(30 * NS_PER_SEC)
        assert node.query(SID_A, 0, 100 * NS_PER_SEC)[0].size == 1
        assert node.query(SID_B, 0, 100 * NS_PER_SEC)[0].size == 1

    def test_generator_input_accepted(self):
        node = StorageNode()
        count = node.insert_batch((SID_A, t, t, 0) for t in range(10))
        assert count == 10
        assert node.query(SID_A, 0, 100)[0].size == 10

    def test_empty_batch(self):
        node = StorageNode()
        assert node.insert_batch([]) == 0
        assert node.inserts == 0

    def test_batch_triggers_threshold_flush(self):
        node = StorageNode(flush_threshold=50)
        node.insert_batch([(SID_A, t, t, 0) for t in range(60)])
        assert node.flushes == 1
        assert node.query(SID_A, 0, 100)[0].size == 60
