"""Concurrency tests: storage under parallel writers and readers."""

import threading

import numpy as np

from repro.core.sid import SensorId
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.sqlite import SqliteBackend

SIDS = [SensorId.from_codes([1, i]) for i in range(1, 9)]


class TestStorageNodeConcurrency:
    def test_parallel_writers_lose_nothing(self):
        node = StorageNode(flush_threshold=500)
        per_thread = 2000

        def writer(idx: int) -> None:
            sid = SIDS[idx]
            for t in range(per_thread):
                node.insert(sid, t, t * idx)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for idx, sid in enumerate(SIDS):
            ts, vals = node.query(sid, 0, per_thread)
            assert ts.size == per_thread
            assert (vals == np.arange(per_thread) * idx).all()

    def test_reads_during_writes_consistent(self):
        node = StorageNode(flush_threshold=100)
        sid = SIDS[0]
        stop = threading.Event()
        errors: list[Exception] = []

        def writer() -> None:
            t = 0
            while not stop.is_set():
                t += 1
                node.insert(sid, t, t)

        def reader() -> None:
            try:
                while not stop.is_set():
                    ts, vals = node.query(sid, 0, 1 << 60)
                    # Monotonic timestamps, values equal timestamps.
                    if ts.size:
                        assert (np.diff(ts) > 0).all()
                        assert (ts == vals).all()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(3)]
        w.start()
        for r in readers:
            r.start()
        import time

        time.sleep(0.5)
        stop.set()
        w.join()
        for r in readers:
            r.join()
        assert errors == []

    def test_concurrent_compaction_and_writes(self):
        node = StorageNode(flush_threshold=200, max_segments_per_sensor=2)
        sid = SIDS[0]
        stop = threading.Event()

        def writer() -> None:
            t = 0
            while not stop.is_set():
                t += 1
                node.insert(sid, t, t)

        def compactor() -> None:
            while not stop.is_set():
                node.compact()

        threads = [threading.Thread(target=writer), threading.Thread(target=compactor)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join()
        ts, vals = node.query(sid, 0, 1 << 60)
        assert ts.size > 0
        assert (np.diff(ts) > 0).all()


class TestClusterConcurrency:
    def test_parallel_writers_through_cluster(self):
        cluster = StorageCluster(
            [StorageNode(f"n{i}", flush_threshold=500) for i in range(3)],
            replication=2,
        )

        def writer(idx: int) -> None:
            sid = SIDS[idx]
            cluster.insert_batch([(sid, t, t, 0) for t in range(1000)])

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for sid in SIDS[:6]:
            assert cluster.count(sid, 0, 2000) == 1000


class TestSqliteConcurrency:
    def test_parallel_writers(self):
        backend = SqliteBackend(":memory:")

        def writer(idx: int) -> None:
            sid = SIDS[idx]
            backend.insert_batch([(sid, t, t, 0) for t in range(500)])

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for sid in SIDS[:4]:
            assert backend.count(sid, 0, 1000) == 500
        backend.close()
