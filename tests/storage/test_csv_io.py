"""Tests for CSV import/export."""

import io

import pytest

from repro.common.errors import QueryError
from repro.core.sid import SidMapper
from repro.storage.csv_io import export_csv, import_csv
from repro.storage.memory import MemoryBackend


@pytest.fixture
def backend():
    return MemoryBackend()


@pytest.fixture
def mapper():
    return SidMapper()


class TestImport:
    def test_basic_import(self, backend, mapper):
        csv_text = "sensor,time,value\n/s/a,100,1\n/s/a,200,2\n/s/b,100,9\n"
        count = import_csv(backend, io.StringIO(csv_text), mapper.sid_for_topic)
        assert count == 3
        sid = mapper.sid_for_topic("/s/a")
        ts, vals = backend.query(sid, 0, 1000)
        assert ts.tolist() == [100, 200]

    def test_float_values_rounded(self, backend, mapper):
        csv_text = "sensor,time,value\n/s/a,1,2.7\n"
        import_csv(backend, io.StringIO(csv_text), mapper.sid_for_topic)
        _, vals = backend.query(mapper.sid_for_topic("/s/a"), 0, 10)
        assert vals.tolist() == [3]

    def test_blank_lines_skipped(self, backend, mapper):
        csv_text = "sensor,time,value\n\n/s/a,1,1\n  , , \n"
        # The whitespace-only row is skipped; fully empty too.
        count = import_csv(backend, io.StringIO(csv_text), mapper.sid_for_topic)
        assert count == 1

    def test_bad_header_rejected(self, backend, mapper):
        with pytest.raises(QueryError, match="header"):
            import_csv(backend, io.StringIO("a,b,c\n1,2,3\n"), mapper.sid_for_topic)

    def test_bad_row_rejected_with_line_number(self, backend, mapper):
        csv_text = "sensor,time,value\n/s/a,notatime,1\n"
        with pytest.raises(QueryError, match="line 2"):
            import_csv(backend, io.StringIO(csv_text), mapper.sid_for_topic)

    def test_wrong_column_count_rejected(self, backend, mapper):
        csv_text = "sensor,time,value\n/s/a,1\n"
        with pytest.raises(QueryError, match="3 columns"):
            import_csv(backend, io.StringIO(csv_text), mapper.sid_for_topic)

    def test_empty_file(self, backend, mapper):
        assert import_csv(backend, io.StringIO(""), mapper.sid_for_topic) == 0

    def test_batching(self, backend, mapper):
        rows = "\n".join(f"/s/a,{t},{t}" for t in range(100))
        csv_text = f"sensor,time,value\n{rows}\n"
        count = import_csv(
            backend, io.StringIO(csv_text), mapper.sid_for_topic, batch_size=7
        )
        assert count == 100
        assert backend.count(mapper.sid_for_topic("/s/a"), 0, 1000) == 100


class TestExport:
    def test_basic_export(self, backend, mapper):
        sid = mapper.sid_for_topic("/s/a")
        backend.insert(sid, 100, 1)
        backend.insert(sid, 200, 2)
        out = io.StringIO()
        rows = export_csv(backend, out, [("/s/a", sid)], 0, 1000)
        assert rows == 2
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == "sensor,time,value"
        assert lines[1] == "/s/a,100,1"

    def test_export_with_scaling(self, backend, mapper):
        sid = mapper.sid_for_topic("/s/t")
        backend.insert(sid, 1, 45000)
        out = io.StringIO()
        export_csv(backend, out, [("/s/t", sid)], 0, 10, scale_of=lambda name: 1000.0)
        assert out.getvalue().strip().splitlines()[1] == "/s/t,1,45.0"

    def test_round_trip(self, backend, mapper):
        sid = mapper.sid_for_topic("/s/rt")
        for t in range(10):
            backend.insert(sid, t, t * 3)
        out = io.StringIO()
        export_csv(backend, out, [("/s/rt", sid)], 0, 100)
        second = MemoryBackend()
        second_mapper = SidMapper()
        count = import_csv(second, io.StringIO(out.getvalue()), second_mapper.sid_for_topic)
        assert count == 10
        ts, vals = second.query(second_mapper.sid_for_topic("/s/rt"), 0, 100)
        assert vals.tolist() == [t * 3 for t in range(10)]
