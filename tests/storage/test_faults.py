"""The fault-injection layer and the storage failure handling it drives.

Covers the determinism contract of :class:`FaultPlan`, transparency
and fault modes of the wrappers, and the cluster's write-availability
machinery: retry with backoff, hinted handoff, replay on recovery.
Seeds used here match the chaos suite (``CHAOS_SEEDS``).
"""

import os

import pytest

from repro.common.errors import FaultInjectedError, NodeDownError, StorageError
from repro.core.sid import SensorId
from repro.faults import BrokerFaultInjector, FaultPlan, FaultyBackend, FlakyNode
from repro.storage import MemoryBackend, StorageCluster, StorageNode
from repro.storage.partitioner import HierarchicalPartitioner

CHAOS_SEEDS = [
    int(s) for s in os.environ.get("CHAOS_SEEDS", "101,202,303,404,505").split(",")
]


def sid(*codes):
    return SensorId.from_codes(list(codes))


def flaky_cluster(n=3, replication=2, **kwargs):
    nodes = [FlakyNode(StorageNode(f"node{i}")) for i in range(n)]
    cluster = StorageCluster(
        nodes,
        partitioner=HierarchicalPartitioner(n, levels=2),
        replication=replication,
        sleep=lambda _s: None,
        **kwargs,
    )
    return cluster, nodes


class TestFaultPlan:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_same_seed_same_stream(self, seed):
        plan_a, plan_b = FaultPlan(seed), FaultPlan(seed)
        draws_a = [plan_a.chance("x", 0.5) for _ in range(50)]
        draws_b = [plan_b.chance("x", 0.5) for _ in range(50)]
        assert draws_a == draws_b

    def test_streams_independent(self):
        plan = FaultPlan(1)
        a = [plan.stream("a").random() for _ in range(5)]
        # Consuming stream "b" must not perturb "a"'s continuation.
        plan2 = FaultPlan(1)
        _ = [plan2.stream("b").random() for _ in range(100)]
        a2 = [plan2.stream("a").random() for _ in range(5)]
        assert a == a2

    def test_different_seeds_differ(self):
        plan_a, plan_b = FaultPlan(1), FaultPlan(2)
        a = [plan_a.chance("x", 0.5) for _ in range(64)]
        b = [plan_b.chance("x", 0.5) for _ in range(64)]
        assert a != b

    def test_schedule_pops_in_time_order(self):
        plan = FaultPlan(0)
        plan.restart_at(500, "node0")
        plan.kill_at(100, "node0")
        plan.kill_at(300, "node1")
        assert [e.action for e in plan.due(300)] == ["kill", "kill"]
        assert len(plan) == 1
        assert plan.due(499) == []
        assert [e.target for e in plan.due(500)] == ["node0"]

    def test_same_instant_fires_in_insertion_order(self):
        plan = FaultPlan(0)
        plan.kill_at(100, "node0")
        plan.restart_at(100, "node0")
        assert [e.action for e in plan.due(100)] == ["kill", "restart"]

    def test_pending_is_non_destructive(self):
        plan = FaultPlan(0)
        plan.kill_at(10, "n")
        assert [e.at_ns for e in plan.pending()] == [10]
        assert len(plan) == 1


class TestFaultyBackend:
    def test_transparent_at_rate_zero(self):
        backend = FaultyBackend(MemoryBackend(), fault_rate=0.0)
        backend.insert(sid(1, 1, 1), 1, 10)
        ts, vals = backend.query(sid(1, 1, 1), 0, 10)
        assert ts.tolist() == [1] and vals.tolist() == [10]
        assert backend.faults_injected == 0

    def test_fail_next_arms_exact_count(self):
        backend = FaultyBackend(MemoryBackend())
        backend.fail_next(2)
        with pytest.raises(FaultInjectedError):
            backend.insert(sid(1, 1, 1), 1, 10)
        with pytest.raises(FaultInjectedError):
            backend.insert_batch([(sid(1, 1, 1), 2, 20, 0)])
        backend.insert(sid(1, 1, 1), 3, 30)  # third op sails through
        assert backend.faults_injected == 2

    def test_down_mode_fails_everything_until_up(self):
        backend = FaultyBackend(MemoryBackend())
        backend.set_down(True)
        with pytest.raises(FaultInjectedError):
            backend.query(sid(1, 1, 1), 0, 10)
        with pytest.raises(FaultInjectedError):
            backend.put_metadata("k", "v")
        backend.set_down(False)
        backend.put_metadata("k", "v")
        assert backend.get_metadata("k") == "v"

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_fault_sequence_deterministic_per_seed(self, seed):
        def run():
            backend = FaultyBackend(
                MemoryBackend(), plan=FaultPlan(seed), fault_rate=0.3
            )
            outcomes = []
            for t in range(100):
                try:
                    backend.insert(sid(1, 1, 1), t, t)
                    outcomes.append(True)
                except FaultInjectedError:
                    outcomes.append(False)
            return outcomes

        first, second = run(), run()
        assert first == second
        assert not all(first), "rate 0.3 over 100 ops must inject something"

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultyBackend(MemoryBackend(), fault_rate=1.5)


class TestFlakyNode:
    def test_kill_restart_cycle(self):
        node = FlakyNode(StorageNode("n0"))
        node.insert(sid(1, 1, 1), 1, 10)
        node.kill()
        assert not node.is_up
        with pytest.raises(NodeDownError):
            node.insert(sid(1, 1, 1), 2, 20)
        node.restart()
        ts, _ = node.query(sid(1, 1, 1), 0, 10)
        assert ts.tolist() == [1]  # pre-kill data survives the restart
        assert node.kills == 1

    def test_up_gauge_on_node_registry(self):
        node = FlakyNode(StorageNode("n7"))
        assert node.metrics.value("dcdb_storage_node_up", {"node": "n7"}) == 1
        node.kill()
        assert node.metrics.value("dcdb_storage_node_up", {"node": "n7"}) == 0

    def test_probabilistic_faults_deterministic(self):
        def run():
            node = FlakyNode(StorageNode("n0"), plan=FaultPlan(7), fault_rate=0.4)
            out = []
            for t in range(60):
                try:
                    node.insert(sid(1, 1, 1), t, t)
                    out.append(True)
                except FaultInjectedError:
                    out.append(False)
            return out

        assert run() == run()


class TestBrokerFaultInjector:
    def test_armed_disconnect_fires_once(self):
        injector = BrokerFaultInjector()
        injector.disconnect_client_after("p1", chunks=2)
        assert injector.on_data("p1", b"x") is None
        assert injector.on_data("p1", b"x") is None
        assert injector.on_data("p1", b"x") == "disconnect"
        assert injector.on_data("p1", b"x") is None  # one-shot
        assert injector.disconnects == 1

    def test_wildcard_target_hits_any_client(self):
        injector = BrokerFaultInjector()
        injector.disconnect_client_after(None, chunks=0)
        assert injector.on_data("whoever", b"x") == "disconnect"

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_drop_decisions_deterministic(self, seed):
        def run():
            injector = BrokerFaultInjector(plan=FaultPlan(seed), drop_rate=0.25)
            return [injector.on_data("c", b"x") for _ in range(80)]

        first, second = run(), run()
        assert first == second
        assert "drop" in first


class TestHintedHandoff:
    def test_write_with_down_replica_queues_hint(self):
        cluster, nodes = flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        replicas = cluster.partitioner.replicas_for(s, 2)
        nodes[replicas[1]].kill()
        cluster.insert(s, 1, 10)  # succeeds: one replica is live
        assert cluster.hints_pending == 1
        assert cluster.metrics.value("dcdb_storage_hints_queued_total") == 1
        # The down replica holds nothing yet; the live one has the row.
        assert nodes[replicas[1]].row_count == 0
        assert nodes[replicas[0]].row_count == 1

    def test_replay_on_restart_repairs_replica(self):
        cluster, nodes = flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        replicas = cluster.partitioner.replicas_for(s, 2)
        nodes[replicas[1]].kill()
        for t in range(20):
            cluster.insert(s, t, t)
        nodes[replicas[1]].restart()
        replayed = cluster.replay_hints()
        assert replayed == 20
        assert cluster.hints_pending == 0
        assert cluster.metrics.value("dcdb_storage_hints_replayed_total") == 20
        # The recovered replica can now serve the complete series alone.
        nodes[replicas[0]].kill()
        ts, _ = cluster.query(s, 0, 100)
        assert ts.tolist() == list(range(20))

    def test_query_piggybacks_replay(self):
        cluster, nodes = flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        replicas = cluster.partitioner.replicas_for(s, 2)
        nodes[replicas[0]].kill()
        cluster.insert(s, 1, 10)
        nodes[replicas[0]].restart()
        # No explicit replay: the read path repairs first, then serves.
        ts, _ = cluster.query(s, 0, 10)
        assert ts.tolist() == [1]
        assert cluster.hints_pending == 0
        assert nodes[replicas[0]].row_count == 1

    def test_all_replicas_down_write_raises(self):
        cluster, nodes = flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        for idx in cluster.partitioner.replicas_for(s, 2):
            nodes[idx].kill()
        with pytest.raises(StorageError):
            cluster.insert(s, 1, 10)

    def test_transient_write_fault_retried_not_hinted(self):
        node0 = FaultyWriteOnceNode("node0")
        cluster = StorageCluster(
            [node0],
            replication=1,
            max_retries=2,
            sleep=lambda _s: None,
        )
        cluster.insert_batch([(sid(1, 1, 1), 1, 1, 0)])
        assert node0.failures == 1  # first attempt failed, retry landed
        assert cluster.hints_pending == 0
        assert cluster.metrics.value("dcdb_storage_write_retries_total") == 1

    def test_hint_capacity_evicts_oldest(self):
        cluster, nodes = flaky_cluster(2, replication=2, hint_capacity=10)
        nodes[1].kill()
        s = sid(1, 1, 1)
        for t in range(25):
            cluster.insert(s, t, t)
        assert cluster.hints_pending <= 11  # capacity + at most one entry
        assert cluster.metrics.value("dcdb_storage_hints_dropped_total") >= 14

    def test_metadata_hinted_and_replayed(self):
        cluster, nodes = flaky_cluster(2, replication=2)
        nodes[1].kill()
        cluster.put_metadata("k", "v")
        assert nodes[0].get_metadata("k") == "v"
        nodes[1].restart()
        cluster.replay_hints()
        assert nodes[1].get_metadata("k") == "v"

    def test_replay_is_idempotent_with_partial_success(self):
        # A replica that accepted the write but whose ack was "lost":
        # the hint replays the same timestamps; dedup keeps one copy.
        cluster, nodes = flaky_cluster(2, replication=2)
        s = sid(1, 1, 1)
        cluster.insert(s, 1, 10)
        nodes[1].kill()
        cluster.insert(s, 2, 20)
        nodes[1].node.insert(s, 2, 20)  # sneak the write in behind the proxy
        nodes[1].restart()
        cluster.replay_hints()
        ts, vals = nodes[1].query(s, 0, 10)
        assert ts.tolist() == [1, 2] and vals.tolist() == [10, 20]


class FaultyWriteOnceNode(StorageNode):
    """A node whose first insert_batch fails, then recovers."""

    def __init__(self, name):
        super().__init__(name)
        self.failures = 0

    def insert_batch(self, items):
        if self.failures == 0:
            self.failures += 1
            raise StorageError("transient write failure")
        return super().insert_batch(items)
