"""Block cache battery: budget/eviction mechanics and the node-level
invalidation + concurrency contracts of the durable read path.

The cache itself is a dumb byte-budgeted LRU (unit tests below); what
actually matters is how :class:`~repro.storage.durable.DurableNode`
drives it — stale entries must vanish when a compaction swaps files or
a retention cutoff moves, cached blocks must be safely shareable
between concurrent readers, and a disabled cache (budget 0) must give
bit-identical query results.
"""

import threading

import numpy as np

from repro.core.sid import SensorId
from repro.storage.durable import DurableNode
from repro.storage.durable.blockcache import BlockCache
from repro.storage.node import _Segment

SID = SensorId.from_codes([1, 2, 3])
SID_B = SensorId.from_codes([1, 2, 4])


def _block(rows: int) -> _Segment:
    ts = np.arange(rows, dtype=np.int64)
    return _Segment(ts, ts.copy(), np.full(rows, (1 << 63) - 1, dtype=np.int64))


def _nbytes(segment: _Segment) -> int:
    return segment.timestamps.nbytes + segment.values.nbytes + segment.expiries.nbytes


class TestBlockCacheUnit:
    def test_hit_miss_and_byte_accounting(self):
        cache = BlockCache(1 << 20)
        assert cache.get("f1", SID) is None
        block = _block(10)
        cache.put("f1", SID, block)
        assert cache.get("f1", SID) is block
        assert cache.bytes == _nbytes(block)
        assert len(cache) == 1

    def test_evicts_least_recently_used_first(self):
        one = _nbytes(_block(100))
        cache = BlockCache(3 * one)
        sids = [SensorId.from_codes([1, 2, i]) for i in range(4)]
        for i in range(3):
            cache.put("f", sids[i], _block(100))
        # Touch block 0 so block 1 becomes the LRU victim.
        assert cache.get("f", sids[0]) is not None
        cache.put("f", sids[3], _block(100))
        assert cache.bytes <= 3 * one
        assert cache.get("f", sids[1]) is None, "LRU entry survived eviction"
        assert cache.get("f", sids[0]) is not None
        assert cache.get("f", sids[2]) is not None
        assert cache.get("f", sids[3]) is not None

    def test_replacement_of_same_key_does_not_leak_bytes(self):
        cache = BlockCache(1 << 20)
        cache.put("f", SID, _block(100))
        cache.put("f", SID, _block(50))
        assert cache.bytes == _nbytes(_block(50))
        assert len(cache) == 1

    def test_oversized_single_block_stays_until_displaced(self):
        small = _nbytes(_block(10))
        cache = BlockCache(small)
        cache.put("f", SID, _block(1000))  # alone: bigger than the budget
        assert len(cache) == 1
        cache.put("f", SID_B, _block(10))  # anything else displaces it
        assert cache.get("f", SID) is None
        assert cache.get("f", SID_B) is not None

    def test_budget_zero_disables_caching(self):
        cache = BlockCache(0)
        cache.put("f", SID, _block(10))
        assert len(cache) == 0
        assert cache.bytes == 0
        assert cache.get("f", SID) is None

    def test_invalidate_file_and_sid(self):
        cache = BlockCache(1 << 20)
        cache.put("f1", SID, _block(10))
        cache.put("f1", SID_B, _block(10))
        cache.put("f2", SID, _block(10))
        assert cache.invalidate_file("f1") == 2
        assert cache.get("f1", SID) is None
        assert cache.get("f2", SID) is not None
        assert cache.invalidate_sid(SID) == 1
        assert cache.bytes == 0
        assert len(cache) == 0


def make_node(tmp_path, **kwargs):
    kwargs.setdefault("fsync", "always")
    return DurableNode("n0", data_dir=tmp_path / "n0", **kwargs)


def _reopened_with_files(tmp_path, batches=4, rows=100, **kwargs):
    """A node whose data sits in on-disk segment files (reopen drops
    the memory copies), so reads exercise the disk/cache path."""
    node = make_node(tmp_path, max_segment_files=100)
    for b in range(batches):
        node.insert_batch(
            [(SID, b * rows + i, b * 1000 + i, 0) for i in range(rows)]
        )
        node.flush()
    node.close()
    return make_node(tmp_path, max_segment_files=100, **kwargs)


class TestNodeCacheIntegration:
    def test_repeat_window_read_hits_cache(self, tmp_path):
        node = _reopened_with_files(tmp_path)
        node.query(SID, 0, 50)
        misses0 = node.metrics.value(
            "dcdb_segment_block_cache_misses_total", {"node": "n0"}
        )
        node.query(SID, 0, 50)
        assert (
            node.metrics.value("dcdb_segment_block_cache_hits_total", {"node": "n0"})
            >= 1
        )
        assert (
            node.metrics.value("dcdb_segment_block_cache_misses_total", {"node": "n0"})
            == misses0
        )
        node.close()

    def test_delete_before_invalidates_and_refilters(self, tmp_path):
        node = _reopened_with_files(tmp_path)
        assert node.query(SID, 0, 1 << 62)[0].size == 400  # blocks now cached
        removed = node.delete_before(SID, 150)
        assert removed == 150
        assert node.query(SID, 0, 1 << 62)[0].tolist() == list(range(150, 400))
        node.close()

    def test_compaction_swap_invalidates_victim_entries(self, tmp_path):
        node = _reopened_with_files(tmp_path, compaction="inline")
        assert node.query(SID, 0, 1 << 62)[0].size == 400
        assert len(node._block_cache) == 4
        node.max_segment_files = 1
        node.compact_min_run = 4
        with node._lock:
            node._schedule_compaction_locked()
        assert node.segment_file_count == 1
        assert len(node._block_cache) == 0, "swap left stale victim blocks cached"
        assert node.query(SID, 0, 1 << 62)[0].size == 400
        node.close()

    def test_full_compact_clears_cache(self, tmp_path):
        node = _reopened_with_files(tmp_path)
        node.query(SID, 0, 1 << 62)
        assert len(node._block_cache) > 0
        node.compact()
        assert len(node._block_cache) == 0
        assert node.query(SID, 0, 1 << 62)[0].size == 400
        node.close()

    def test_cached_blocks_are_read_only(self, tmp_path):
        node = _reopened_with_files(tmp_path)
        node.query(SID, 0, 1 << 62)
        ((_, block),) = [
            (key, seg) for key, seg in node._block_cache._entries.items()
        ][:1]
        assert not block.timestamps.flags.writeable
        assert not block.values.flags.writeable
        assert not block.expiries.flags.writeable
        node.close()

    def test_budget_zero_gives_identical_results(self, tmp_path):
        cached = _reopened_with_files(tmp_path / "a")
        uncached = _reopened_with_files(tmp_path / "b", block_cache_bytes=0)
        for window in [(0, 1 << 62), (50, 250), (399, 399), (1000, 2000)]:
            ct, cv = cached.query(SID, *window)
            ut, uv = uncached.query(SID, *window)
            assert ct.tolist() == ut.tolist()
            assert cv.tolist() == uv.tolist()
        assert len(uncached._block_cache) == 0
        assert cached.state_fingerprint() == uncached.state_fingerprint()
        cached.close()
        uncached.close()

    def test_concurrent_readers_and_background_compaction(self, tmp_path):
        """Readers racing evictions and a background merge swap must
        only ever see complete, correct series."""
        node = make_node(tmp_path, max_segment_files=100)
        for b in range(8):
            node.insert_batch(
                [(SID, b * 100 + i, b * 1000 + i, 0) for i in range(100)]
            )
            node.flush()
        node.close()
        # Tiny budget forces constant decode/evict churn underneath the
        # readers while the backlog compacts in the background.
        node = make_node(
            tmp_path,
            max_segment_files=2,
            compact_min_run=2,
            block_cache_bytes=4096,
        )
        expected = [b * 1000 + i for b in range(8) for i in range(100)]
        errors: list[str] = []

        def reader() -> None:
            for _ in range(30):
                ts, vals = node.query(SID, 0, 1 << 62)
                if ts.size != 800 or vals.tolist() != expected:
                    errors.append(f"bad read: {ts.size} rows")
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        node._compact_wake.set()
        for t in threads:
            t.join()
        assert not errors
        assert node.wait_for_compaction(timeout_s=30.0)
        assert node.query(SID, 0, 1 << 62)[0].size == 800
        node.close()
