"""Tests for the distributed storage cluster."""

import pytest

from repro.common.errors import NodeDownError, StorageError
from repro.core.sid import SensorId
from repro.faults import FlakyNode
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.partitioner import HashPartitioner, HierarchicalPartitioner


def sid(*codes):
    return SensorId.from_codes(list(codes))


def make_cluster(n=3, replication=1, partitioner=None):
    nodes = [StorageNode(f"node{i}") for i in range(n)]
    part = partitioner if partitioner is not None else HierarchicalPartitioner(n, levels=2)
    return StorageCluster(nodes, partitioner=part, replication=replication)


def make_flaky_cluster(n=3, replication=2, **kwargs):
    """A cluster whose members can be killed/restarted, no retry sleeps."""
    nodes = [FlakyNode(StorageNode(f"node{i}")) for i in range(n)]
    part = HierarchicalPartitioner(n, levels=2)
    cluster = StorageCluster(
        nodes, partitioner=part, replication=replication,
        sleep=lambda _s: None, **kwargs,
    )
    return cluster, nodes


class TestRouting:
    def test_insert_lands_on_owner(self):
        cluster = make_cluster(3)
        s = sid(1, 1, 1)
        cluster.insert(s, 1, 10)
        owner = cluster.partitioner.node_for(s)
        assert cluster.nodes[owner].row_count == 1
        for i, node in enumerate(cluster.nodes):
            if i != owner:
                assert node.row_count == 0

    def test_query_roundtrips(self):
        cluster = make_cluster(3)
        s = sid(1, 2, 3)
        cluster.insert(s, 5, 50)
        ts, vals = cluster.query(s, 0, 10)
        assert ts.tolist() == [5] and vals.tolist() == [50]

    def test_batch_grouped_by_owner(self):
        cluster = make_cluster(3)
        items = [(sid(1, i, 1), t, t, 0) for i in range(1, 4) for t in range(10)]
        assert cluster.insert_batch(items) == 30
        assert cluster.row_count == 30

    def test_sids_merged_across_nodes(self):
        cluster = make_cluster(3)
        sids = [sid(1, i, 1) for i in range(1, 5)]
        for s in sids:
            cluster.insert(s, 1, 1)
        assert cluster.sids() == sorted(sids)


class TestReplication:
    def test_replicas_hold_copies(self):
        cluster = make_cluster(3, replication=2)
        s = sid(1, 1, 1)
        cluster.insert(s, 1, 10)
        holders = [n for n in cluster.nodes if n.row_count == 1]
        assert len(holders) == 2

    def test_replication_capped(self):
        cluster = make_cluster(2, replication=5)
        assert cluster.replication == 2

    def test_invalid_replication_rejected(self):
        with pytest.raises(StorageError):
            make_cluster(2, replication=0)

    def test_delete_before_applies_to_replicas(self):
        cluster = make_cluster(3, replication=2)
        s = sid(1, 1, 1)
        for t in range(10):
            cluster.insert(s, t, t)
        cluster.delete_before(s, 5)
        for node in cluster.nodes:
            ts, _ = node.query(s, 0, 100)
            assert all(t >= 5 for t in ts.tolist())


class TestPrefixScan:
    def test_hierarchical_scan_touches_one_node(self):
        cluster = make_cluster(4)
        for leaf in range(1, 6):
            cluster.insert(sid(1, 1, leaf), 1, leaf)
        for leaf in range(1, 4):
            cluster.insert(sid(1, 2, leaf), 1, leaf)
        cluster.reset_stats()
        prefix = sid(1, 1).value
        results = list(cluster.query_prefix(prefix, 2, 0, 10))
        assert len(results) == 5
        # query_prefix accounts once per node touched; the hierarchical
        # partitioner confines the scan to the single owning node.
        assert cluster.local_ops + cluster.remote_ops == 1

    def test_hierarchical_vs_hash_locality(self):
        # The ablation claim: hierarchical partitioning confines a
        # subtree scan to one node; hashing fans out to all.
        for partitioner_cls, expect_single in (
            (HierarchicalPartitioner, True),
            (HashPartitioner, False),
        ):
            nodes = [StorageNode(f"n{i}") for i in range(4)]
            part = (
                partitioner_cls(4, levels=2)
                if partitioner_cls is HierarchicalPartitioner
                else partitioner_cls(4)
            )
            cluster = StorageCluster(nodes, partitioner=part)
            for leaf in range(1, 40):
                cluster.insert(sid(1, 1, leaf), 1, leaf)
            touched = set()
            original_account = cluster._account

            def tracking_account(idx):
                touched.add(idx)
                original_account(idx)

            cluster._account = tracking_account
            results = list(cluster.query_prefix(sid(1, 1).value, 2, 0, 10))
            assert len(results) == 39
            if expect_single:
                assert len(touched) == 1
            else:
                assert len(touched) == 4

    def test_scan_deduplicates_replicas(self):
        cluster = make_cluster(3, replication=3)
        cluster.insert(sid(1, 1, 1), 1, 1)
        results = list(cluster.query_prefix(sid(1, 1).value, 2, 0, 10))
        assert len(results) == 1


class TestReadFailover:
    """Regression for the "first live replica" comment: query() now
    really checks liveness instead of reading replica[0] blindly."""

    def test_query_falls_back_with_first_replica_down(self):
        cluster, nodes = make_flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        cluster.insert(s, 5, 50)
        first = cluster.partitioner.replicas_for(s, 2)[0]
        nodes[first].kill()
        ts, vals = cluster.query(s, 0, 10)  # served by the second replica
        assert ts.tolist() == [5] and vals.tolist() == [50]
        assert cluster.metrics.value("dcdb_storage_read_failovers_total") == 1

    def test_query_all_replicas_down_raises(self):
        cluster, nodes = make_flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        cluster.insert(s, 5, 50)
        for idx in cluster.partitioner.replicas_for(s, 2):
            nodes[idx].kill()
        with pytest.raises(StorageError, match="no live replica"):
            cluster.query(s, 0, 10)

    def test_direct_read_on_down_node_raises_node_down(self):
        cluster, nodes = make_flaky_cluster(2, replication=2)
        nodes[0].kill()
        with pytest.raises(NodeDownError):
            nodes[0].query(sid(1, 1, 1), 0, 10)

    def test_prefix_scan_survives_owner_down(self):
        cluster, nodes = make_flaky_cluster(4, replication=2)
        for leaf in range(1, 6):
            cluster.insert(sid(1, 1, leaf), 1, leaf)
        owner = cluster.partitioner.node_for_prefix(sid(1, 1).value, 2)
        nodes[owner].kill()
        results = list(cluster.query_prefix(sid(1, 1).value, 2, 0, 10))
        assert len(results) == 5  # replicas on other nodes cover the subtree

    def test_metadata_read_falls_back_from_contact(self):
        cluster, nodes = make_flaky_cluster(3, replication=2)
        cluster.put_metadata("k", "v")
        nodes[cluster.contact_node].kill()
        assert cluster.get_metadata("k") == "v"
        assert cluster.metadata_keys() == ["k"]


class TestMetadata:
    def test_metadata_replicated_everywhere(self):
        cluster = make_cluster(3)
        cluster.put_metadata("key", "value")
        for node in cluster.nodes:
            assert node.get_metadata("key") == "value"

    def test_metadata_readable_from_contact(self):
        cluster = make_cluster(3)
        cluster.put_metadata("a/b", "1")
        assert cluster.get_metadata("a/b") == "1"
        assert cluster.metadata_keys("a/") == ["a/b"]

    def test_delete_metadata(self):
        cluster = make_cluster(2)
        cluster.put_metadata("gone", "1")
        cluster.delete_metadata("gone")
        assert cluster.get_metadata("gone") is None


class TestStats:
    def test_locality_counters(self):
        cluster = make_cluster(2, partitioner=HierarchicalPartitioner(2, levels=2))
        cluster.insert(sid(1, 1, 1), 1, 1)  # first prefix -> node 0 (contact)
        cluster.insert(sid(1, 2, 1), 1, 1)  # second prefix -> node 1
        assert cluster.local_ops == 1
        assert cluster.remote_ops == 1
        cluster.reset_stats()
        assert cluster.local_ops == cluster.remote_ops == 0

    def test_mismatched_partitioner_rejected(self):
        with pytest.raises(StorageError, match="sized for"):
            StorageCluster(
                [StorageNode("a")], partitioner=HierarchicalPartitioner(3)
            )


class TestQueryMany:
    def test_matches_looped_query(self):
        cluster = make_cluster(3, replication=2)
        sids = [sid(1, i, j) for i in range(1, 4) for j in range(1, 5)]
        for k, s in enumerate(sids):
            for t in range(10):
                cluster.insert(s, t, t + k * 100)
        result = cluster.query_many(sids, 2, 7)
        assert list(result) == sids  # input order preserved
        for s in sids:
            ts, vals = cluster.query(s, 2, 7)
            assert result[s][0].tolist() == ts.tolist()
            assert result[s][1].tolist() == vals.tolist()

    def test_duplicate_and_unknown_sids(self):
        cluster = make_cluster(2)
        s = sid(1, 1, 1)
        unknown = sid(1, 2, 1)
        cluster.insert(s, 1, 10)
        result = cluster.query_many([s, s, unknown], 0, 10)
        assert list(result) == [s, unknown]  # duplicates collapse
        assert result[s][1].tolist() == [10]
        assert result[unknown][0].size == 0

    def test_failover_to_live_replica(self):
        cluster, nodes = make_flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        cluster.insert(s, 5, 50)
        first = cluster.partitioner.replicas_for(s, 2)[0]
        nodes[first].kill()
        result = cluster.query_many([s], 0, 10)
        assert result[s][0].tolist() == [5] and result[s][1].tolist() == [50]
        assert cluster.metrics.value("dcdb_storage_read_failovers_total") >= 1

    def test_all_replicas_down_raises(self):
        cluster, nodes = make_flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        cluster.insert(s, 5, 50)
        for idx in cluster.partitioner.replicas_for(s, 2):
            nodes[idx].kill()
        with pytest.raises(StorageError, match="no live replica"):
            cluster.query_many([s], 0, 10)

    def test_group_read_failure_falls_back_per_sid(self):
        cluster, nodes = make_flaky_cluster(3, replication=2)
        s = sid(1, 1, 1)
        cluster.insert(s, 5, 50)
        first = cluster.partitioner.replicas_for(s, 2)[0]

        def boom(sids, start, end):
            raise StorageError("flaky bulk read")

        nodes[first].query_many = boom  # bulk path fails, query() still works
        result = cluster.query_many([s], 0, 10)
        assert result[s][1].tolist() == [50]
        assert cluster.metrics.value("dcdb_storage_read_failovers_total") >= 1


class TestParallelFanOut:
    def test_replicated_batch_lands_on_all_replicas(self):
        cluster = make_cluster(4, replication=2)
        items = [(sid(1, i + 1, 1), j, j, 0) for i in range(8) for j in range(50)]
        assert cluster.insert_batch(items) == 400
        assert cluster.row_count == 800  # every reading written twice
        for s in {it[0] for it in items}:
            ts, _ = cluster.query(s, 0, 1000)
            assert ts.size == 50

    def test_parallel_writes_match_sequential_queries(self):
        cluster = make_cluster(3, replication=3)
        items = [(sid(1, i, 1), t, t * i, 0) for i in range(1, 4) for t in range(20)]
        cluster.insert_batch(items)
        for i in range(1, 4):
            for node in cluster.nodes:  # replication=3: every node has all
                ts, vals = node.query(sid(1, i, 1), 0, 100)
                assert ts.size == 20
                assert vals.tolist() == [t * i for t in range(20)]

    def test_single_node_fast_path_accepts_generator(self):
        cluster = StorageCluster([StorageNode("solo")])
        count = cluster.insert_batch((sid(1, 1, t % 5), t, t, 0) for t in range(100))
        assert count == 100
        assert cluster.row_count == 100
        assert cluster.local_ops == 1  # one accounting hop for the batch

    def test_empty_batch_no_accounting(self):
        cluster = make_cluster(2)
        assert cluster.insert_batch([]) == 0
        assert cluster.local_ops == 0 and cluster.remote_ops == 0

    def test_fan_out_propagates_node_errors(self):
        cluster = make_cluster(3)

        def explode(items):
            raise StorageError("disk full")

        for node in cluster.nodes:
            node.insert_batch = explode
        items = [(sid(1, i, 1), 1, 1, 0) for i in range(1, 4)]
        with pytest.raises(StorageError, match="disk full"):
            cluster.insert_batch(items)
