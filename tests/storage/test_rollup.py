"""Tests for rollup tiers and the tier-aware query planner.

Covers the rollup SID encoding, the shared aggregation kernel, the
continuous-aggregation engine (sealing, coverage persistence, restart
resume, late-arrival recompute, write-failure retry), the retention
lifecycle's never-drop-unabsorbed-data clamp, and — across every
storage backend — the contract that tier-served aggregates are
bit-identical to aggregating the raw rows at query time.
"""

import numpy as np
import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.core.sid import SensorId
from repro.libdcdb.api import AGGREGATIONS, DCDBClient
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryBackend
from repro.storage.node import StorageNode
from repro.storage.rollup import (
    FIELDS,
    ROLLUP_TIERS,
    RetentionPolicy,
    RollupConfig,
    RollupEngine,
    RollupTier,
    aggregate_buckets,
    coverage_key,
    is_rollup_sid,
    rollup_sid,
)
from repro.storage.sqlite import SqliteBackend

SID = SensorId.from_codes([1, 2, 3])
TOPIC = "/hpc/rack0/node0/power"


def make_backend(kind):
    if kind == "cluster":
        return StorageCluster(
            [StorageNode("a"), StorageNode("b")], replication=2
        )
    if kind == "sqlite":
        return SqliteBackend(":memory:")
    return MemoryBackend()


def make_env(backend, topic=TOPIC, sid=SID, **engine_kwargs):
    backend.put_metadata(f"sidmap{topic}", sid.hex())
    engine = RollupEngine(backend, **engine_kwargs)
    client = DCDBClient(backend, cache_size=0)
    return engine, client


def ingest(backend, engine, sid, timestamps, values, batch=500):
    for i in range(0, len(timestamps), batch):
        items = [
            (sid, int(t), int(v), 0)
            for t, v in zip(timestamps[i : i + batch], values[i : i + batch])
        ]
        backend.insert_batch(items)
        engine.observe(items)


def raw_reference(backend, sid, start, end, bucket_ns, aggregation):
    ts, vals = backend.query(sid, start, end)
    starts, mins, maxs, sums, counts = aggregate_buckets(ts, vals, bucket_ns)
    if aggregation == "count":
        return starts, counts.astype(np.float64)
    values = {
        "avg": sums.astype(np.float64) / counts.astype(np.float64),
        "min": mins.astype(np.float64),
        "max": maxs.astype(np.float64),
        "sum": sums.astype(np.float64),
    }[aggregation]
    return starts, values


class TestSidEncoding:
    def test_rollup_sid_preserves_prefix(self):
        fsid = rollup_sid(SID, 1, 2)
        assert fsid is not None
        assert fsid.prefix(3) == SID.prefix(3)
        assert is_rollup_sid(fsid)
        assert not is_rollup_sid(SID)

    def test_all_tier_field_sids_distinct(self):
        sids = {
            rollup_sid(SID, t, f)
            for t in range(len(ROLLUP_TIERS))
            for f in range(len(FIELDS))
        }
        assert len(sids) == len(ROLLUP_TIERS) * len(FIELDS)

    def test_full_depth_sensor_has_no_rollup(self):
        full = SensorId.from_codes([1, 2, 3, 4, 5, 6, 7, 8])
        assert rollup_sid(full, 0, 0) is None


class TestAggregateBuckets:
    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        for col in aggregate_buckets(empty, empty, 10):
            assert col.size == 0

    def test_single_bucket(self):
        ts = np.array([0, 3, 7], dtype=np.int64)
        vals = np.array([5, -1, 9], dtype=np.int64)
        starts, mins, maxs, sums, counts = aggregate_buckets(ts, vals, 10)
        assert starts.tolist() == [0]
        assert mins.tolist() == [-1] and maxs.tolist() == [9]
        assert sums.tolist() == [13] and counts.tolist() == [3]

    def test_empty_buckets_omitted(self):
        ts = np.array([0, 35], dtype=np.int64)
        vals = np.array([1, 2], dtype=np.int64)
        starts, *_ = aggregate_buckets(ts, vals, 10)
        assert starts.tolist() == [0, 30]


class TestEngineSealing:
    def test_open_bucket_not_sealed(self):
        backend = MemoryBackend()
        engine, _ = make_env(backend)
        ingest(backend, engine, SID, [0, 3 * NS_PER_SEC], [1, 2])
        # Newest reading at 3s: the 10s bucket [0,10s) is still open.
        fsid = rollup_sid(SID, 0, 0)
        assert backend.query(fsid, 0, 1 << 62)[0].size == 0
        assert engine.coverage(SID, 0) == (0, 0)

    def test_later_reading_seals_bucket(self):
        backend = MemoryBackend()
        engine, _ = make_env(backend)
        ingest(backend, engine, SID, [0, 3 * NS_PER_SEC, 11 * NS_PER_SEC], [5, 2, 9])
        lo, hi = engine.coverage(SID, 0)
        assert (lo, hi) == (0, 10 * NS_PER_SEC)
        for field_index, expect in enumerate((2, 5, 7, 2)):
            fsid = rollup_sid(SID, 0, field_index)
            ts, vals = backend.query(fsid, 0, 1 << 62)
            assert ts.tolist() == [0] and vals.tolist() == [expect]

    def test_coarser_tiers_cascade(self):
        backend = MemoryBackend()
        engine, _ = make_env(backend)
        ts = [i * NS_PER_SEC for i in range(0, 3700, 5)]
        ingest(backend, engine, SID, ts, [1] * len(ts))
        assert engine.coverage(SID, 1) == (0, 3660 * NS_PER_SEC)
        assert engine.coverage(SID, 2) == (0, 3600 * NS_PER_SEC)
        fsid = rollup_sid(SID, 2, 3)  # 1h count series
        ts1h, counts = backend.query(fsid, 0, 1 << 62)
        assert ts1h.tolist() == [0] and counts.tolist() == [720]

    def test_coverage_persisted_and_restart_resumes(self):
        backend = MemoryBackend()
        engine, _ = make_env(backend)
        ingest(backend, engine, SID, [0, 12 * NS_PER_SEC], [1, 2])
        doc = backend.get_metadata(coverage_key(SID, "10s"))
        assert doc is not None
        # A fresh engine (restarted agent) resumes from the persisted
        # watermark without rewriting the already-sealed bucket.
        engine2 = RollupEngine(backend)
        items = [(SID, 25 * NS_PER_SEC, 3, 0)]
        backend.insert_batch(items)
        engine2.observe(items)
        assert engine2.coverage(SID, 0) == (0, 20 * NS_PER_SEC)
        fsid = rollup_sid(SID, 0, 3)
        ts, counts = backend.query(fsid, 0, 1 << 62)
        assert ts.tolist() == [0, 10 * NS_PER_SEC]
        assert counts.tolist() == [1, 1]

    def test_late_reading_recomputes_sealed_bucket(self):
        backend = MemoryBackend()
        engine, _ = make_env(backend)
        ingest(backend, engine, SID, [0, 12 * NS_PER_SEC], [10, 1])
        # Late arrival inside the sealed [0,10s) bucket.
        ingest(backend, engine, SID, [4 * NS_PER_SEC], [100])
        fsid_max = rollup_sid(SID, 0, 1)
        _, maxs = backend.query(fsid_max, 0, 9 * NS_PER_SEC)
        assert maxs.tolist() == [100]
        fsid_count = rollup_sid(SID, 0, 3)
        _, counts = backend.query(fsid_count, 0, 9 * NS_PER_SEC)
        assert counts.tolist() == [2]
        assert engine.metrics.counter("dcdb_rollup_late_readings_total").value == 1

    def test_duplicate_timestamp_last_write_wins(self):
        backend = MemoryBackend()
        engine, _ = make_env(backend)
        ingest(backend, engine, SID, [0, 0, 12 * NS_PER_SEC], [5, 7, 1])
        fsid_sum = rollup_sid(SID, 0, 2)
        _, sums = backend.query(fsid_sum, 0, 9 * NS_PER_SEC)
        # The engine recomputes from the stored rows, so the rollup
        # sees the deduplicated value (7), not both writes.
        assert sums.tolist() == [7]
        fsid_count = rollup_sid(SID, 0, 3)
        _, counts = backend.query(fsid_count, 0, 9 * NS_PER_SEC)
        assert counts.tolist() == [1]

    def test_full_depth_sensor_stays_raw_only(self):
        backend = MemoryBackend()
        full = SensorId.from_codes([1, 2, 3, 4, 5, 6, 7, 8])
        engine, _ = make_env(backend, topic="/deep", sid=full)
        ingest(backend, engine, full, [0, 12 * NS_PER_SEC], [1, 2])
        assert backend.get_metadata(coverage_key(full, "10s")) is None

    def test_rollup_rows_are_not_rolled_up_again(self):
        backend = MemoryBackend()
        engine, _ = make_env(backend)
        ingest(backend, engine, SID, [0, 12 * NS_PER_SEC], [1, 2])
        fsid = rollup_sid(SID, 0, 0)
        # Feed the engine its own output: it must ignore it.
        items = [(fsid, 0, 1, 0)]
        engine.observe(items)
        assert backend.get_metadata(coverage_key(fsid, "10s")) is None


class _FailingInserts:
    """Backend wrapper failing insert_batch for rollup rows on demand."""

    def __init__(self, inner):
        self.inner = inner
        self.fail = False

    def insert_batch(self, items):
        items = list(items)
        if self.fail and any(is_rollup_sid(sid) for sid, *_ in items):
            raise OSError("injected rollup write failure")
        return self.inner.insert_batch(items)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestEngineFailureRetry:
    def test_failed_rollup_write_retried_without_gap(self):
        inner = MemoryBackend()
        backend = _FailingInserts(inner)
        inner.put_metadata(f"sidmap{TOPIC}", SID.hex())
        engine = RollupEngine(backend)
        items = [(SID, 0, 5, 0), (SID, 12 * NS_PER_SEC, 1, 0)]
        inner.insert_batch(items)
        backend.fail = True
        engine.observe(items)  # rollup write fails; must not raise
        assert engine.coverage(SID, 0) == (0, 0)
        assert engine.metrics.counter("dcdb_rollup_write_errors_total").value >= 1
        backend.fail = False
        more = [(SID, 25 * NS_PER_SEC, 3, 0)]
        inner.insert_batch(more)
        engine.observe(more)
        # Retry covered the whole failed region: both sealed buckets exist.
        fsid = rollup_sid(SID, 0, 3)
        ts, counts = inner.query(fsid, 0, 1 << 62)
        assert ts.tolist() == [0, 10 * NS_PER_SEC]
        assert counts.tolist() == [1, 1]
        assert engine.coverage(SID, 0) == (0, 20 * NS_PER_SEC)


class TestRetention:
    def test_raw_cutoff_clamped_to_coarsest_watermark(self):
        backend = MemoryBackend()
        clock = [0]
        engine, _ = make_env(backend, clock=lambda: clock[0])
        # 30 minutes of data: the 1h tier has sealed nothing.
        ts = [i * NS_PER_SEC for i in range(0, 1800, 10)]
        ingest(backend, engine, SID, ts, [1] * len(ts))
        clock[0] = 10**18
        policy = RetentionPolicy(raw_horizon_s=60)
        removed = engine.apply_retention(policy)
        # 1h watermark is 0 -> nothing may be dropped despite the age.
        assert removed["raw"] == 0
        assert backend.count(SID, 0, 1 << 62) == len(ts)

    def test_raw_demoted_up_to_coarsest_watermark(self):
        backend = MemoryBackend()
        clock = [0]
        engine, _ = make_env(backend, clock=lambda: clock[0])
        ts = [i * NS_PER_SEC for i in range(0, 7300, 10)]
        ingest(backend, engine, SID, ts, [1] * len(ts))
        assert engine.coverage(SID, 2) == (0, 7200 * NS_PER_SEC)
        clock[0] = 7300 * NS_PER_SEC
        policy = RetentionPolicy(raw_horizon_s=1800)
        removed = engine.apply_retention(policy)
        cutoff = min(clock[0] - 1800 * NS_PER_SEC, 7200 * NS_PER_SEC)
        assert removed["raw"] == sum(1 for t in ts if t < cutoff)
        remaining, _ = backend.query(SID, 0, 1 << 62)
        assert remaining.min() >= cutoff
        # Rollups still answer for the demoted span.
        fsid = rollup_sid(SID, 2, 3)
        ts1h, counts = backend.query(fsid, 0, 1 << 62)
        assert ts1h.size == 2 and counts.sum() == 360 * 2  # 10s cadence

    def test_pre_engine_history_backfilled_before_demotion(self):
        # Two hours of raw data ingested before any engine existed: a
        # cold engine that only ever observes the newest reading must
        # fold the whole raw history into the tiers before deleting it
        # (the historical bug dropped it silently — coverage anchored
        # at the newest bucket reads as caught-up to the guard).
        backend = MemoryBackend()
        clock = [0]
        backend.put_metadata(f"sidmap{TOPIC}", SID.hex())
        ts = [i * NS_PER_SEC for i in range(0, 7300, 10)]
        backend.insert_batch([(SID, int(t), i, 0) for i, t in enumerate(ts)])
        engine = RollupEngine(backend, clock=lambda: clock[0])
        client = DCDBClient(backend, cache_size=0)
        newest = backend.latest(SID)
        engine.observe([(SID, newest[0], newest[1], 0)])
        clock[0] = 10**18
        removed = engine.apply_retention(RetentionPolicy(raw_horizon_s=60))
        assert removed["raw"] > 0  # demotion really ran
        assert backend.count(SID, 0, 7199 * NS_PER_SEC) == 0
        # No reading was lost: totals served through the planner are
        # exactly those of the original raw series.
        _, counts = client.query_aggregate(TOPIC, 0, ts[-1], "count", 200)
        assert counts.sum() == len(ts)
        _, sums = client.query_aggregate(TOPIC, 0, ts[-1], "sum", 200)
        assert sums.sum() == sum(range(len(ts)))

    def test_raw_demotion_skipped_when_backfill_fails(self):
        inner = MemoryBackend()
        backend = _FailingInserts(inner)
        clock = [0]
        inner.put_metadata(f"sidmap{TOPIC}", SID.hex())
        ts = [i * NS_PER_SEC for i in range(0, 7300, 10)]
        inner.insert_batch([(SID, int(t), 1, 0) for t in ts])
        engine = RollupEngine(backend, clock=lambda: clock[0])
        newest = inner.latest(SID)
        engine.observe([(SID, newest[0], newest[1], 0)])
        backend.fail = True  # backfill's rollup writes fail
        clock[0] = 10**18
        removed = engine.apply_retention(RetentionPolicy(raw_horizon_s=60))
        # Unabsorbed history must survive a failed backfill untouched.
        assert removed["raw"] == 0
        assert inner.count(SID, 0, 1 << 62) == len(ts)

    def test_finer_tier_clamped_to_coarser_watermark(self):
        backend = MemoryBackend()
        clock = [0]
        engine, _ = make_env(backend, clock=lambda: clock[0])
        ts = [i * NS_PER_SEC for i in range(0, 7300, 10)]
        ingest(backend, engine, SID, ts, [1] * len(ts))
        clock[0] = 7300 * NS_PER_SEC
        policy = RetentionPolicy(raw_horizon_s=0, tier_horizons_s=(1800, 0, 0))
        removed = engine.apply_retention(policy)
        assert removed["10s"] > 0
        fsid = rollup_sid(SID, 0, 0)
        remaining, _ = backend.query(fsid, 0, 1 << 62)
        cutoff = min(clock[0] - 1800 * NS_PER_SEC, 7200 * NS_PER_SEC)
        assert remaining.min() >= cutoff
        # The coarsest tier itself is never trimmed by finer horizons.
        fsid1h = rollup_sid(SID, 2, 0)
        assert backend.query(fsid1h, 0, 1 << 62)[0].size == 2


@pytest.mark.parametrize("kind", ["memory", "sqlite", "cluster"])
class TestTierRawIdentity:
    """Tier-served aggregates must be bit-identical to raw-computed."""

    def _populate(self, kind, seconds=7300, step=5, seed=11):
        backend = make_backend(kind)
        engine, client = make_env(backend)
        rng = np.random.default_rng(seed)
        ts = np.arange(0, seconds, step, dtype=np.int64) * NS_PER_SEC
        vals = rng.integers(-(10**6), 10**6, size=ts.size)
        # Interleave some duplicate timestamps: LWW must hold in both
        # the raw and the tier-served path.
        dup_idx = rng.choice(ts.size, size=25, replace=False)
        ingest(backend, engine, SID, ts.tolist(), vals.tolist())
        dup_items = [
            (SID, int(ts[i]), int(vals[i]) + 7, 0) for i in sorted(dup_idx)
        ]
        backend.insert_batch(dup_items)
        engine.observe(dup_items)
        return backend, engine, client

    def test_all_aggregations_bit_identical(self, kind):
        backend, _, client = self._populate(kind)
        start, end = 0, 7295 * NS_PER_SEC
        plan = client.plan_aggregate(TOPIC, start, end, 200)
        assert plan.tier_index is not None  # must actually use a tier
        for aggregation in AGGREGATIONS:
            got_ts, got_vals = client.query_aggregate(
                TOPIC, start, end, aggregation, 200
            )
            ref_ts, ref_vals = raw_reference(
                backend, SID, start, end, plan.bucket_ns, aggregation
            )
            assert np.array_equal(got_ts, ref_ts)
            assert np.array_equal(got_vals, ref_vals), aggregation
        backend.close()

    def test_window_edges_split_buckets(self, kind):
        backend, _, client = self._populate(kind)
        # Start/end deliberately misaligned with every tier boundary.
        start = 137 * NS_PER_SEC + 1
        end = 7211 * NS_PER_SEC - 3
        plan = client.plan_aggregate(TOPIC, start, end, 300)
        assert plan.tier_index is not None
        assert start < plan.head_end  # partial head bucket exists
        got_ts, got_vals = client.query_aggregate(TOPIC, start, end, "avg", 300)
        ref_ts, ref_vals = raw_reference(
            backend, SID, start, end, plan.bucket_ns, "avg"
        )
        assert np.array_equal(got_ts, ref_ts)
        assert np.array_equal(got_vals, ref_vals)
        backend.close()

    def test_unsealed_tail_served_from_raw(self, kind):
        backend, engine, client = self._populate(kind)
        lo, hi = engine.coverage(SID, 0)
        start, end = 0, hi + 3600 * NS_PER_SEC  # far past the watermark
        got_ts, got_vals = client.query_aggregate(TOPIC, start, end, "sum", 200)
        plan = client.plan_aggregate(TOPIC, start, end, 200)
        ref_ts, ref_vals = raw_reference(
            backend, SID, start, end, plan.bucket_ns, "sum"
        )
        assert np.array_equal(got_ts, ref_ts)
        assert np.array_equal(got_vals, ref_vals)
        backend.close()

    def test_query_aggregate_many_matches_single(self, kind):
        backend, _, client = self._populate(kind)
        start, end = 100 * NS_PER_SEC, 7000 * NS_PER_SEC
        many = client.query_aggregate_many([TOPIC], start, end, "max", 250)
        single = client.query_aggregate(TOPIC, start, end, "max", 250)
        assert np.array_equal(many[TOPIC][0], single[0])
        assert np.array_equal(many[TOPIC][1], single[1])
        backend.close()


class TestPlannerFallbacks:
    def test_no_rollups_means_raw_plan(self):
        backend = MemoryBackend()
        backend.put_metadata(f"sidmap{TOPIC}", SID.hex())
        client = DCDBClient(backend, cache_size=0)
        backend.insert(SID, 0, 1)
        plan = client.plan_aggregate(TOPIC, 0, 3600 * NS_PER_SEC, 10)
        assert plan.tier_index is None and plan.tier_label == "raw"

    def test_fine_resolution_needs_raw(self):
        backend = MemoryBackend()
        engine, client = make_env(backend)
        ts = [i * NS_PER_SEC for i in range(0, 100)]
        ingest(backend, engine, SID, ts, [1] * len(ts))
        # 99s window / 1000 points -> sub-second buckets: no tier fits.
        plan = client.plan_aggregate(TOPIC, 0, 99 * NS_PER_SEC, 1000)
        assert plan.tier_index is None
        got_ts, got_vals = client.query_aggregate(TOPIC, 0, 99 * NS_PER_SEC, "avg", 1000)
        assert got_ts.size == len(ts) and np.all(got_vals == 1.0)

    def test_output_buckets_bounded_by_max_points(self):
        backend = MemoryBackend()
        backend.put_metadata(f"sidmap{TOPIC}", SID.hex())
        client = DCDBClient(backend, cache_size=0)
        for t in range(10):
            backend.insert(SID, t, 1)
        # Inclusive 10-tick window over 5 points: the exclusive-window
        # arithmetic used to pick bucket_ns=1 and emit 10 buckets.
        plan = client.plan_aggregate(TOPIC, 0, 9, 5)
        assert plan.bucket_ns == 2
        got_ts, _ = client.query_aggregate(TOPIC, 0, 9, "count", 5)
        assert got_ts.size <= 5

    def test_tier_metric_counts_selection(self):
        backend = MemoryBackend()
        engine, client = make_env(backend)
        ts = [i * NS_PER_SEC for i in range(0, 7300, 5)]
        ingest(backend, engine, SID, ts, [1] * len(ts))
        client.query_aggregate(TOPIC, 0, 7200 * NS_PER_SEC, "avg", 100)
        client.query_aggregate(TOPIC, 0, 50 * NS_PER_SEC, "avg", 1000)
        samples = {}
        for family in client.metrics.collect():
            if family.name == "dcdb_rollup_tier_selected_total":
                for sample in family.samples:
                    samples[dict(sample.labels)["tier"]] = sample.value
        assert samples.get("raw") == 1
        assert sum(samples.values()) == 2

    def test_custom_tier_config_validation(self):
        with pytest.raises(ValueError):
            RollupConfig(tiers=(RollupTier("7s", 7), RollupTier("10s", 10)))
        with pytest.raises(ValueError):
            RetentionPolicy(raw_horizon_s=-1)
