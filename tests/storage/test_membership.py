"""Tests for elastic membership: ownership table, failure detector,
and the cluster-level wiring (bounded replica cache, epoch
invalidation, rollup co-location).

Liveness timing here runs on a manual fake clock so phi accrual and
detection latency are asserted deterministically; the end-to-end
chaos behavior lives in ``tests/integration/test_chaos_rebalance.py``.
"""

import pytest

from repro.common.errors import StorageError
from repro.core.sid import SensorId
from repro.faults import FlakyNode
from repro.storage.cluster import StorageCluster
from repro.storage.membership import (
    NODE_DOWN,
    NODE_REMOVED,
    NODE_SUSPECT,
    NODE_UP,
    ClusterMembership,
    FailureDetector,
)
from repro.storage.node import StorageNode
from repro.storage.partitioner import HashPartitioner, HierarchicalPartitioner
from repro.storage.rollup import rollup_sid


def sid(*codes):
    return SensorId.from_codes(list(codes))


NS = 1_000_000_000


class FakeClock:
    def __init__(self, now=0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, ns):
        self.now += ns


# -- ownership table ---------------------------------------------------------


class TestOwnershipTable:
    def make(self, n=3, replication=2, levels=2):
        part = HierarchicalPartitioner(n, levels=levels)
        return ClusterMembership(part, replication), part

    def seed(self, part, subtrees=6):
        """Touch ``subtrees`` distinct partitions via the ring walk."""
        sids = [sid(1, i, 1) for i in range(1, subtrees + 1)]
        for s in sids:
            part.node_for(s)
        return sids

    def test_static_phase_matches_partitioner(self):
        membership, part = self.make()
        sids = self.seed(part)
        for s in sids:
            replicas, cacheable = membership.write_replicas(s)
            assert cacheable
            assert list(replicas) == part.replicas_for(s, 2)
            assert membership.read_replicas(s) == replicas
        assert membership.epoch == 1
        assert not membership.elastic

    def test_materialization_preserves_static_placement(self):
        membership, part = self.make()
        sids = self.seed(part)
        static = {s: tuple(part.replicas_for(s, 2)) for s in sids}
        _, moves = membership.add_slot()
        # Partitions that did not move keep their exact replica set.
        moved = {m.partition for m in moves}
        untouched = 0
        for s in sids:
            if part.partition_key(s) in moved:
                continue
            untouched += 1
            replicas, _ = membership.write_replicas(s)
            assert replicas == static[s]
        assert untouched > 0

    def test_add_slot_balances_and_bumps_epoch(self):
        membership, part = self.make(n=3, replication=2)
        self.seed(part, subtrees=6)
        epoch0 = membership.epoch
        new_idx, moves = membership.add_slot()
        assert new_idx == 3
        assert membership.epoch > epoch0
        assert moves, "joining a loaded cluster must move partitions"
        for move in moves:
            membership.commit_transfer(move.partition)
        counts = membership.ownership_counts()
        # 6 partitions x 2 replicas over 4 nodes -> 3 each.
        assert counts == {0: 3, 1: 3, 2: 3, 3: 3}
        assert membership.transfers_active == 0

    def test_union_writes_and_old_first_reads_during_transfer(self):
        membership, part = self.make(n=3, replication=2)
        sids = self.seed(part, subtrees=6)
        membership.add_slot()
        moved = set(membership.pending_transfers())
        assert moved
        hit = False
        for s in sids:
            key = part.partition_key(s)
            if key not in moved:
                continue
            hit = True
            replicas, cacheable = membership.write_replicas(s)
            assert not cacheable, "mid-transfer placement must not be cached"
            reads = membership.read_replicas(s)
            entry = membership.table_snapshot()[key]
            # Union covers both old and new owners; reads try old first.
            assert set(entry) <= set(replicas)
            assert reads[0] not in set(entry) - set(reads)
            assert set(reads) == set(replicas)
        assert hit

    def test_commit_collapses_to_new_owners(self):
        membership, part = self.make(n=3, replication=2)
        sids = self.seed(part, subtrees=6)
        _, moves = membership.add_slot()
        move = moves[0]
        membership.commit_transfer(move.partition)
        key_sid = next(
            s for s in sids if part.partition_key(s) == move.partition
        )
        replicas, cacheable = membership.write_replicas(key_sid)
        assert cacheable
        assert replicas == move.new_replicas

    def test_remove_slot_drains_and_finishes(self):
        membership, part = self.make(n=3, replication=2)
        self.seed(part, subtrees=6)
        moves = membership.remove_slot(0)
        assert membership.slot_state(0) == "leaving"
        assert all(0 in m.old_replicas and 0 not in m.new_replicas for m in moves)
        for m in moves:
            membership.commit_transfer(m.partition)
        membership.finish_remove(0)
        assert membership.slot_state(0) == NODE_REMOVED
        assert 0 not in membership.ownership_counts()
        counts = membership.ownership_counts()
        assert sum(counts.values()) == 12  # 6 partitions x 2 replicas

    def test_remove_last_active_node_rejected(self):
        membership, part = self.make(n=1, replication=1)
        self.seed(part, subtrees=2)
        with pytest.raises(StorageError, match="last active"):
            membership.remove_slot(0)

    def test_remove_twice_rejected(self):
        membership, part = self.make(n=3)
        self.seed(part)
        membership.remove_slot(1)
        with pytest.raises(StorageError, match="already"):
            membership.remove_slot(1)

    def test_hash_partitioner_cannot_go_elastic(self):
        membership = ClusterMembership(HashPartitioner(3), 2)
        with pytest.raises(StorageError, match="partition key"):
            membership.add_slot()

    def test_new_partition_first_seen_after_elastic(self):
        membership, part = self.make(n=3, replication=2)
        self.seed(part, subtrees=3)
        _, moves = membership.add_slot()
        for m in moves:
            membership.commit_transfer(m.partition)
        fresh = sid(9, 9, 9)
        replicas, cacheable = membership.write_replicas(fresh)
        assert cacheable
        assert len(replicas) == 2
        assert set(replicas) <= set(membership.active_indices())
        # Deterministic: asking again returns the same assignment.
        again, _ = membership.write_replicas(fresh)
        assert again == replicas

    def test_epoch_listener_fires_on_every_mutation(self):
        membership, part = self.make()
        self.seed(part)
        epochs = []
        membership.on_epoch_change(epochs.append)
        _, moves = membership.add_slot()
        for m in moves:
            membership.commit_transfer(m.partition)
        assert len(epochs) == 1 + len(moves)
        assert epochs == sorted(epochs)


# -- failure detector --------------------------------------------------------


class TestFailureDetector:
    def make(self, nodes=3, **kwargs):
        clock = FakeClock()
        detector = FailureDetector(clock=clock, interval_s=0.5, **kwargs)
        flags = [True] * nodes
        for i in range(nodes):
            detector.register(f"node{i}", lambda i=i: flags[i])
        return detector, clock, flags

    def test_all_up_initially(self):
        detector, clock, flags = self.make()
        assert detector.liveness_snapshot() == [True, True, True]
        assert [s["state"] for s in detector.states()] == [NODE_UP] * 3

    def test_detection_latency_one_probe(self):
        """A crash is condemned by the very next heartbeat round."""
        detector, clock, flags = self.make()
        detector.probe(clock())
        flags[1] = False
        clock.advance(NS // 2)
        detector.probe(clock())
        assert detector.state(1) == NODE_DOWN
        assert not detector.is_alive(1)
        assert detector.phi(1) == float("inf")
        # The healthy nodes are untouched.
        assert detector.is_alive(0) and detector.is_alive(2)

    def test_phi_accrues_with_silence(self):
        detector, clock, flags = self.make()
        # Establish a steady 0.5s cadence.
        for _ in range(8):
            clock.advance(NS // 2)
            detector.probe(clock())
        phi_fresh = detector.phi(1, clock())
        clock.advance(10 * NS)
        assert detector.phi(1, clock()) > phi_fresh
        assert detector.phi(1, clock()) > detector.phi_suspect

    def test_idle_cluster_never_condemned_without_probing(self):
        """No heartbeat traffic => no phi condemnation (read-only or
        freshly built clusters must not drift into false suspicion)."""
        detector, clock, flags = self.make()
        clock.advance(3600 * NS)
        assert detector.liveness_snapshot() == [True, True, True]
        assert [s["state"] for s in detector.states()] == [NODE_UP] * 3

    def test_soft_failures_suspect_but_stay_routable(self):
        """False-positive containment: a transient error raises
        suspicion, it does not evict the node from the read/write
        paths (only DOWN or a phi pile-up does)."""
        detector, clock, flags = self.make()
        detector.probe(clock())
        for _ in range(3):
            detector.report_failure(1)
        assert detector.state(1) == NODE_SUSPECT
        assert detector.is_alive(1), "isolated soft failures must not evict"
        # A single success clears the suspicion entirely.
        detector.report_success(1)
        assert detector.state(1) == NODE_UP
        assert detector.phi(1, clock()) < detector.phi_suspect

    def test_soft_failure_pileup_condemns_then_probe_recovers(self):
        """Consecutive unacknowledged failures eventually accrue past
        phi_down — but the node is never stranded: the next heartbeat
        that finds it up restores full liveness."""
        detector, clock, flags = self.make()
        detector.probe(clock())
        for _ in range(10):
            detector.report_failure(1)
        assert not detector.is_alive(1)
        assert detector.state(1) == NODE_SUSPECT, "soft evidence never marks DOWN"
        clock.advance(NS // 2)
        detector.probe(clock())
        assert detector.is_alive(1)
        assert detector.state(1) == NODE_UP

    def test_hard_failure_condemns_immediately(self):
        detector, clock, flags = self.make()
        detector.report_failure(1, hard=True)
        assert detector.state(1) == NODE_DOWN
        assert not detector.is_alive(1)

    def test_success_resurrects_down_node(self):
        detector, clock, flags = self.make()
        detector.report_failure(1, hard=True)
        detector.report_success(1)
        assert detector.state(1) == NODE_UP
        assert detector.is_alive(1)

    def test_deregistered_node_stays_removed(self):
        detector, clock, flags = self.make()
        detector.deregister(2)
        detector.probe(clock())
        detector.report_success(2)
        assert detector.state(2) == NODE_REMOVED
        assert not detector.is_alive(2)

    def test_states_capped_phi_for_json(self):
        detector, clock, flags = self.make()
        detector.report_failure(0, hard=True)
        states = detector.states()
        assert states[0]["phi"] == 99.0
        assert states[0]["state"] == NODE_DOWN
        assert all(isinstance(s["phi"], float) for s in states)

    def test_background_thread_starts_and_stops(self):
        detector = FailureDetector(interval_s=0.01)
        detector.register("n0", lambda: True)
        detector.start()
        detector.start()  # idempotent
        import time as _time

        deadline = _time.monotonic() + 2.0
        while detector.probes_total == 0 and _time.monotonic() < deadline:
            _time.sleep(0.005)
        detector.stop()
        assert detector.probes_total > 0
        assert detector.is_alive(0)


# -- cluster wiring ----------------------------------------------------------


def make_cluster(n=3, replication=2, **kwargs):
    nodes = [StorageNode(f"node{i}") for i in range(n)]
    part = HierarchicalPartitioner(n, levels=2)
    return StorageCluster(nodes, partitioner=part, replication=replication, **kwargs)


class TestClusterWiring:
    def test_replica_cache_bounded(self):
        cluster = make_cluster(replica_cache_max=4)
        for i in range(1, 10):
            cluster.insert(sid(1, i, 1), i, i)
        assert len(cluster._replica_cache) <= 4
        gauge = cluster.metrics.value("dcdb_cluster_replica_cache_entries")
        assert gauge == len(cluster._replica_cache)

    def test_replica_cache_max_validated(self):
        with pytest.raises(StorageError, match="replica_cache_max"):
            make_cluster(replica_cache_max=0)

    def test_epoch_change_clears_replica_cache(self):
        cluster = make_cluster()
        for i in range(1, 5):
            cluster.insert(sid(1, i, 1), i, i)
        assert cluster._replica_cache
        cluster.add_node(StorageNode("node3"))
        # The epoch bumps invalidated every cached placement; whatever
        # is cached now was re-derived from the current table.
        assert cluster.membership.epoch > 1
        for s, cached in list(cluster._replica_cache.items()):
            assert cached == cluster._replicas(s)
        assert cluster.metrics.value("dcdb_cluster_epoch") == cluster.membership.epoch
        cluster.close()

    def test_rollup_sid_shares_partition_with_raw(self):
        """Derived rollup series must co-locate with their raw sensor so
        a partition move carries both (tier reads stay node-local)."""
        cluster = make_cluster()
        raw = sid(1, 2, 3)
        derived = rollup_sid(raw, 1, 0)
        assert derived is not None
        key = cluster.membership.partition_of(raw)
        assert cluster.membership.partition_of(derived) == key
        assert cluster._replicas(raw) == cluster._replicas(derived)
        cluster.add_node(StorageNode("node3"))
        assert cluster._replicas(raw) == cluster._replicas(derived)
        cluster.close()

    def test_node_states_reports_detector_detail(self):
        nodes = [FlakyNode(StorageNode(f"node{i}")) for i in range(3)]
        part = HierarchicalPartitioner(3, levels=2)
        cluster = StorageCluster(
            nodes, partitioner=part, replication=2, sleep=lambda _s: None
        )
        nodes[1].kill()
        cluster.detector.probe(0)
        states = cluster.node_states()
        assert [s["node"] for s in states] == ["node0", "node1", "node2"]
        assert states[1]["state"] == NODE_DOWN
        assert states[0]["state"] == NODE_UP
        live, total = cluster.node_liveness()
        assert (live, total) == (2, 3)
        cluster.close()

    def test_node_state_gauges_exported(self):
        cluster = make_cluster()
        families = {}
        for family in cluster.metrics.collect():
            if family.name == "dcdb_cluster_node_state":
                for sample in family.samples:
                    labels = dict(sample.labels)
                    families[(labels["node"], labels["state"])] = sample.value
        assert families[("node0", "up")] == 1.0
        assert families[("node0", "down")] == 0.0
        assert families[("node2", "suspect")] == 0.0
        cluster.close()

    def test_mixed_durability_add_remove_round_trip(self):
        """End-to-end sanity on plain nodes: grow then shrink, data and
        placement stay consistent throughout."""
        cluster = make_cluster(n=3, replication=2)
        items = [(sid(1, i, 1), t, t * i, 0) for i in range(1, 7) for t in range(50)]
        cluster.insert_batch(items)
        baseline = {
            s: cluster.query(s, 0, 1 << 60)[1].tolist()
            for s in cluster.sids()
        }
        idx = cluster.add_node(StorageNode("node3"))
        assert idx == 3
        stats = cluster.rebalance_stats()
        assert stats["partitions_failed"] == 0
        assert stats["moved_bytes"] <= 1.25 * max(stats["minimal_bytes"], 1)
        for s, vals in baseline.items():
            assert cluster.query(s, 0, 1 << 60)[1].tolist() == vals
        cluster.remove_node(0)
        assert cluster.membership.slot_state(0) == NODE_REMOVED
        for s, vals in baseline.items():
            assert cluster.query(s, 0, 1 << 60)[1].tolist() == vals
        # Every logical row exists exactly `replication` times — the
        # losing copies were shed, nothing was duplicated or dropped.
        assert cluster.row_count == 2 * len(items)
        cluster.close()
