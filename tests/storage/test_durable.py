"""Unit battery for the durable storage engine: WAL, segments, recovery.

Covers the crash/corruption matrix at the component level — torn
tails, flipped CRC bytes, injected torn writes / fsync failures /
short reads via :class:`~repro.faults.DiskFaultInjector` — plus the
tiered-compaction and checkpoint invariants.  The process-kill
acceptance scenarios live in ``tests/integration/test_chaos_durability.py``.
"""

import json
import os

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.sid import SensorId
from repro.faults import DiskFaultInjector
from repro.storage.durable import DurableBackend, DurableNode, scan_wal_file
from repro.storage.durable.segment import SegmentFile, segment_path, write_segment
from repro.storage.durable.wal import DATA, META, WriteAheadLog, wal_path

SID = SensorId.from_codes([1, 2, 3])
SID_B = SensorId.from_codes([1, 2, 4])
FAR_FUTURE = (1 << 63) - 1


def make_node(tmp_path, **kwargs):
    kwargs.setdefault("fsync", "always")
    return DurableNode("n0", data_dir=tmp_path / "n0", **kwargs)


# -- write-ahead log ------------------------------------------------------


class TestWalFraming:
    def test_append_scan_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 1, fsync="always")
        payloads = [bytes([i]) * (i + 1) for i in range(20)]
        for p in payloads:
            wal.append(DATA, p)
        wal.append(META, b"k=v")
        wal.commit()
        wal.close()
        scan = scan_wal_file(wal_path(tmp_path, 1), 1)
        assert scan.truncated_reason is None
        assert [r.payload for r in scan.records[:-1]] == payloads
        assert scan.records[-1].rtype == META
        assert all(r.seq == 1 for r in scan.records)

    def test_torn_tail_recovers_to_last_valid_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 1, fsync="always")
        for i in range(10):
            wal.append(DATA, bytes([i]) * 32)
        wal.close()
        path = wal_path(tmp_path, 1)
        full = path.read_bytes()
        # Chop mid-way through the last frame: the power-loss artefact.
        path.write_bytes(full[:-17])
        scan = scan_wal_file(path, 1)
        assert len(scan.records) == 9
        assert "torn" in scan.truncated_reason
        assert scan.valid_bytes < len(full)

    def test_corrupt_crc_stops_scan_with_diagnostic(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 1, fsync="always")
        frame_len = wal.append(DATA, b"A" * 32)
        wal.append(DATA, b"B" * 32)
        wal.append(DATA, b"C" * 32)
        wal.close()
        path = wal_path(tmp_path, 1)
        raw = bytearray(path.read_bytes())
        raw[frame_len + 25] ^= 0xFF  # flip a payload byte of frame 2
        path.write_bytes(bytes(raw))
        scan = scan_wal_file(path, 1)
        assert len(scan.records) == 1
        assert "CRC mismatch" in scan.truncated_reason

    def test_wrong_seq_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 5, fsync="always")
        wal.append(DATA, b"x")
        wal.close()
        renamed = wal_path(tmp_path, 9)
        os.rename(wal_path(tmp_path, 5), renamed)
        scan = scan_wal_file(renamed, 9)
        assert scan.records == []
        assert "wrong file seq" in scan.truncated_reason

    def test_rotate_and_delete_below(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 1, fsync="off")
        wal.append(DATA, b"old")
        assert wal.rotate() == 2
        wal.append(DATA, b"new")
        assert wal.delete_below(2) == 1
        assert not wal_path(tmp_path, 1).exists()
        assert wal_path(tmp_path, 2).exists()
        wal.close()

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path, 1, fsync="sometimes")

    def test_policy_always_syncs_per_commit_off_never(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "o").mkdir()
        always = WriteAheadLog(tmp_path / "a", 1, fsync="always")
        off = WriteAheadLog(tmp_path / "o", 1, fsync="off")
        for wal, expect_syncs in ((always, 3), (off, 0)):
            for _ in range(3):
                wal.append(DATA, b"p")
                wal.commit()
            assert wal.syncs == expect_syncs
            wal.close()


# -- segment files --------------------------------------------------------


def _arrays(ts, vals):
    ts = np.array(ts, dtype=np.int64)
    vals = np.array(vals, dtype=np.int64)
    exp = np.full(ts.size, FAR_FUTURE, dtype=np.int64)
    return ts, vals, exp


class TestSegmentFile:
    def test_write_read_round_trip(self, tmp_path):
        path = segment_path(tmp_path, 1)
        a = _arrays([10, 20, 30], [1, 2, 3])
        b = _arrays([5, 15], [-7, 7])
        stats = write_segment(path, [(SID, *a), (SID_B, *b)])
        assert stats.rows == 5 and stats.sensors == 2
        assert stats.raw_bytes == 5 * 24
        seg = SegmentFile(path)
        assert seg.sids() == sorted([SID, SID_B])
        for sid, (ts, vals, exp) in ((SID, a), (SID_B, b)):
            rts, rvals, rexp = seg.read(sid)
            assert rts.tolist() == ts.tolist()
            assert rvals.tolist() == vals.tolist()
            assert rexp.tolist() == exp.tolist()
        assert SensorId.from_codes([9]) not in seg
        seg.close()

    def test_empty_input_writes_nothing(self, tmp_path):
        path = segment_path(tmp_path, 1)
        assert write_segment(path, []) is None
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_no_tmp_left_behind(self, tmp_path):
        path = segment_path(tmp_path, 1)
        write_segment(path, [(SID, *_arrays([1], [1]))])
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_block_crc_raises_on_read(self, tmp_path):
        path = segment_path(tmp_path, 1)
        write_segment(path, [(SID, *_arrays(range(100), range(100)))])
        raw = bytearray(path.read_bytes())
        raw[12] ^= 0xFF  # inside the first sensor block
        path.write_bytes(bytes(raw))
        seg = SegmentFile(path)  # framing (footer) still intact
        with pytest.raises(StorageError, match="block CRC"):
            seg.read(SID)
        seg.close()

    def test_corrupt_footer_raises_at_open(self, tmp_path):
        path = segment_path(tmp_path, 1)
        write_segment(path, [(SID, *_arrays([1, 2], [1, 2]))])
        raw = bytearray(path.read_bytes())
        raw[-24] ^= 0xFF  # a footer-entry byte
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="footer CRC"):
            SegmentFile(path)

    def test_truncated_file_raises_at_open(self, tmp_path):
        path = segment_path(tmp_path, 1)
        write_segment(path, [(SID, *_arrays([1, 2], [1, 2]))])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StorageError):
            SegmentFile(path)


# -- node recovery --------------------------------------------------------


class TestDurableNodeRecovery:
    def test_unflushed_writes_survive_reopen(self, tmp_path):
        node = make_node(tmp_path)
        node.insert_batch([(SID, t, t * 2, 0) for t in range(100)])
        node.put_metadata("sidmap/x", "y")
        before = node.state_fingerprint()
        node.close()  # no flush: everything lives in the WAL

        recovered = make_node(tmp_path)
        assert recovered.recovery_info["wal_records_replayed"] == 2
        assert recovered.query(SID, 0, 1000)[1].tolist() == [t * 2 for t in range(100)]
        assert recovered.get_metadata("sidmap/x") == "y"
        assert recovered.state_fingerprint() == before
        recovered.close()

    def test_recovery_converges_to_clean_log(self, tmp_path):
        node = make_node(tmp_path)
        node.insert(SID, 1, 1)
        node.close()
        first = make_node(tmp_path)
        assert first.recovery_info["wal_records_replayed"] == 1
        first.close()
        # Recovery sealed + checkpointed, so a second reopen replays nothing.
        second = make_node(tmp_path)
        assert second.recovery_info["wal_records_replayed"] == 0
        assert second.recovery_info["segments_loaded"] == 1
        assert second.query(SID, 0, 10)[1].tolist() == [1]
        second.close()

    def test_flushed_data_reads_from_disk_segments(self, tmp_path):
        node = make_node(tmp_path)
        node.insert_batch([(SID, t, t, 0) for t in range(500)])
        node.flush()
        fp = node.state_fingerprint()
        node.close()
        recovered = make_node(tmp_path)
        assert recovered.recovery_info["segments_loaded"] >= 1
        assert recovered.recovery_info["wal_records_replayed"] == 0
        assert recovered.state_fingerprint() == fp
        ts, vals = recovered.query(SID, 100, 199)
        assert ts.tolist() == list(range(100, 200))
        recovered.close()

    def test_lww_across_crash_overlap(self, tmp_path):
        """A crash between seal and checkpoint double-applies the WAL
        over sealed rows; last-write-wins keeps the overwrite."""
        node = make_node(tmp_path)
        node.insert(SID, 5, 1)
        node.flush()
        node.insert(SID, 5, 2)  # overwrite, still WAL-only
        node.close()
        recovered = make_node(tmp_path)
        ts, vals = recovered.query(SID, 0, 10)
        assert ts.tolist() == [5] and vals.tolist() == [2]
        recovered.close()

    def test_delete_before_survives_reopen(self, tmp_path):
        node = make_node(tmp_path)
        node.insert_batch([(SID, t, t, 0) for t in range(10)])
        node.flush()
        assert node.delete_before(SID, 5) == 5
        node.close()
        recovered = make_node(tmp_path)
        assert recovered.query(SID, 0, 100)[0].tolist() == [5, 6, 7, 8, 9]
        recovered.close()

    def test_ttl_expiry_respected_after_reopen(self, tmp_path):
        clock = SimClock(0)
        node = DurableNode("n0", data_dir=tmp_path / "n0", fsync="always", clock=clock)
        node.insert(SID, 0, 1, ttl_s=1)
        node.insert(SID, 1, 2, ttl_s=0)
        node.close()
        late = SimClock(20 * NS_PER_SEC)
        recovered = DurableNode("n0", data_dir=tmp_path / "n0", fsync="always", clock=late)
        assert recovered.query(SID, 0, 10)[1].tolist() == [2]
        recovered.close()

    def test_replay_exceeding_flush_threshold_survives_second_reopen(self, tmp_path):
        """Mid-replay memtable flushes must not lose the frozen rows.

        When the replayed WAL holds more rows than ``flush_threshold``
        (threshold change across restart, WAL accumulation after a
        swallowed seal failure), replay seals the memtable mid-stream;
        those frozen segments must still reach a segment file before
        the recovery-ending checkpoint truncates the WAL — their only
        durable copy.  Regression: they were dropped, so the *second*
        reopen silently lost acknowledged writes."""
        node = make_node(tmp_path)  # default threshold: nothing seals
        node.insert_batch([(SID, t, t * 2, 0) for t in range(207)])
        before = node.state_fingerprint()
        node.close()

        first = make_node(tmp_path, flush_threshold=50)
        assert first.recovery_info["wal_records_replayed"] == 1
        assert first.row_count == 207
        assert first.state_fingerprint() == before
        first.close()

        second = make_node(tmp_path, flush_threshold=50)
        assert second.row_count == 207, "acknowledged writes lost on second reopen"
        assert second.state_fingerprint() == before
        # Recovery converged to a clean log: nothing left to replay.
        assert second.recovery_info["wal_records_replayed"] == 0
        second.close()

    def test_replay_exact_threshold_multiple_still_checkpoints(self, tmp_path):
        """Replay count == k * flush_threshold: the memtable empties on
        the final mid-replay seal, so the recovery-ending flush freezes
        nothing — the frozen segments must be persisted regardless."""
        node = make_node(tmp_path)
        for t in range(100):
            node.insert(SID, t, t)
        before = node.state_fingerprint()
        node.close()

        first = make_node(tmp_path, flush_threshold=50)
        assert first.state_fingerprint() == before
        first.close()
        second = make_node(tmp_path, flush_threshold=50)
        assert second.row_count == 100
        assert second.state_fingerprint() == before
        second.close()

    def test_stray_nonconforming_files_do_not_abort_recovery(self, tmp_path):
        """A hand-named copy or editor backup matching seg-*.seg /
        wal-*.log must be skipped and reported, never refuse startup."""
        node = make_node(tmp_path)
        node.insert(SID, 1, 1)
        node.flush()
        node.close()
        data_dir = tmp_path / "n0"
        (data_dir / "seg-backup.seg").write_bytes(b"not a segment")
        (data_dir / "wal-copy.log").write_bytes(b"not a wal")

        recovered = make_node(tmp_path)
        assert sorted(recovered.recovery_info["unrecognized_files"]) == [
            "seg-backup.seg",
            "wal-copy.log",
        ]
        assert recovered.query(SID, 0, 10)[1].tolist() == [1]
        # Skipped, not swept: recovery never deletes what it cannot parse.
        assert (data_dir / "seg-backup.seg").exists()
        assert (data_dir / "wal-copy.log").exists()
        recovered.close()

    def test_introspection_counts_do_not_decode_disk_blocks(self, tmp_path):
        """row_count / segment_count (exported as gauges on every
        /metrics scrape) must come from the segment footer index, not
        from decoding every on-disk block."""
        node = make_node(tmp_path)
        node.insert_batch([(SID, t, t, 0) for t in range(300)])
        node.insert_batch([(SID_B, t, t, 0) for t in range(200)])
        node.flush()
        node.close()

        recovered = make_node(tmp_path)
        assert recovered.row_count == 500
        assert recovered.segment_count == 2
        assert set(recovered._disk_refs) == {SID, SID_B}
        assert len(recovered._block_cache) == 0, "scrape decoded disk blocks"
        # Reads decode on demand through the block cache and agree with
        # the footer counts; the refs stay put — a read never converts
        # a disk block into permanent memtable residency.
        assert recovered.query(SID, 0, 1 << 62)[0].size == 300
        assert len(recovered._block_cache) == 1
        assert set(recovered._disk_refs) == {SID, SID_B}
        assert recovered.row_count == 500
        recovered.close()

    def test_orphan_tmp_and_unlisted_segment_swept(self, tmp_path):
        node = make_node(tmp_path)
        node.insert(SID, 1, 1)
        node.flush()
        node.close()
        data_dir = tmp_path / "n0"
        (data_dir / "junk.tmp").write_bytes(b"half-written")
        # A seal that crashed before checkpoint: file exists, manifest
        # does not list it — its rows are still in the WAL.
        write_segment(segment_path(data_dir, 99), [(SID_B, *_arrays([1], [1]))])
        recovered = make_node(tmp_path)
        assert recovered.recovery_info["orphans_removed"] == 2
        assert not (data_dir / "junk.tmp").exists()
        assert not segment_path(data_dir, 99).exists()
        assert recovered.query(SID_B, 0, 10)[0].size == 0
        recovered.close()

    def test_unsupported_manifest_format_refuses(self, tmp_path):
        node = make_node(tmp_path)
        node.insert(SID, 1, 1)
        node.flush()
        node.close()
        manifest = tmp_path / "n0" / "manifest.json"
        doc = json.loads(manifest.read_text())
        doc["format"] = 99
        manifest.write_text(json.dumps(doc))
        with pytest.raises(StorageError, match="manifest format"):
            make_node(tmp_path)

    def test_wal_trimmed_after_seal(self, tmp_path):
        node = make_node(tmp_path)
        node.insert_batch([(SID, t, t, 0) for t in range(100)])
        node.flush()
        data_dir = tmp_path / "n0"
        logs = sorted(data_dir.glob("wal-*.log"))
        # Only the fresh post-rotation file remains, and it is empty.
        assert len(logs) == 1
        assert logs[0].stat().st_size == 0
        assert node.wal.rotations >= 1
        node.close()


class TestTornAndCorruptRecovery:
    def _populated_then_closed(self, tmp_path, batches=10):
        node = make_node(tmp_path)
        for b in range(batches):
            node.insert_batch([(SID, b * 100 + i, b, 0) for i in range(100)])
        node.close()
        logs = sorted((tmp_path / "n0").glob("wal-*.log"))
        assert len(logs) == 1
        return logs[0]

    def test_torn_wal_tail_recovers_prefix(self, tmp_path):
        log = self._populated_then_closed(tmp_path)
        raw = log.read_bytes()
        log.write_bytes(raw[:-41])  # tear into the last frame
        recovered = make_node(tmp_path)
        info = recovered.recovery_info
        assert info["wal_records_replayed"] == 9
        assert info["wal_truncations"] and "torn" in info["wal_truncations"][0]
        ts, vals = recovered.query(SID, 0, 10**9)
        assert ts.size == 900  # batches 0..8 intact, batch 9 lost pre-ack
        assert sorted(set(vals.tolist())) == list(range(9))
        recovered.close()

    def test_corrupt_crc_mid_log_recovers_to_last_valid(self, tmp_path):
        log = self._populated_then_closed(tmp_path)
        raw = bytearray(log.read_bytes())
        # Flip one payload bit mid-file (offset chosen inside frame 5's
        # payload, clear of any frame header).
        raw[len(raw) // 2 + 100] ^= 0x01
        log.write_bytes(bytes(raw))
        recovered = make_node(tmp_path)
        info = recovered.recovery_info
        assert 0 < info["wal_records_replayed"] < 10
        assert any("CRC mismatch" in t for t in info["wal_truncations"])
        # Everything before the flipped bit is intact and queryable.
        ts, _ = recovered.query(SID, 0, 10**9)
        assert ts.size == info["wal_records_replayed"] * 100
        recovered.close()

    def test_fresh_file_after_torn_tail_never_appends_past_it(self, tmp_path):
        log = self._populated_then_closed(tmp_path)
        raw = log.read_bytes()
        log.write_bytes(raw[:-13])
        recovered = make_node(tmp_path)
        recovered.insert(SID_B, 1, 1)
        # The torn file was sealed away by recovery's checkpoint; the
        # new write landed in a strictly newer WAL file.
        assert recovered.wal.seq > int(log.stem.split("-", 1)[1])
        recovered.close()
        again = make_node(tmp_path)
        assert again.query(SID_B, 0, 10)[1].tolist() == [1]
        again.close()

    def test_corrupt_segment_dropped_not_fatal(self, tmp_path):
        node = make_node(tmp_path)
        node.insert_batch([(SID, t, t, 0) for t in range(100)])
        node.flush()
        node.close()
        seg = next((tmp_path / "n0").glob("seg-*.seg"))
        raw = bytearray(seg.read_bytes())
        raw[-4] ^= 0xFF  # break the tail magic
        seg.write_bytes(bytes(raw))
        recovered = make_node(tmp_path)
        assert recovered.recovery_info["segments_dropped"]
        assert recovered.query(SID, 0, 10**9)[0].size == 0  # dropped, not garbage
        recovered.close()


class TestDiskFaultInjection:
    def test_fsync_failure_surfaces_as_storage_error(self, tmp_path):
        disk = DiskFaultInjector(fsync_fail_at=1)
        node = make_node(tmp_path, disk=disk)
        with pytest.raises(StorageError, match="WAL fsync failed"):
            node.insert(SID, 1, 1)
        assert disk.faults_injected == 1
        node.close()

    def test_torn_segment_write_keeps_data_wal_covered(self, tmp_path):
        node = make_node(tmp_path)
        # Arm the tear for the *segment* write: WAL appends also go
        # through the seam, so count them first.
        disk = DiskFaultInjector()
        node._disk = disk
        node._wal._disk = disk
        node.insert_batch([(SID, t, t, 0) for t in range(10)])
        disk.torn_write_at = disk.writes + 1
        node.flush()  # seal fails mid-write; swallowed, counted
        assert disk.faults_injected == 1
        assert node.metrics.value("dcdb_segment_write_errors_total", {"node": "n0"}) == 1
        assert node.segment_file_count == 0
        # Data still fully readable (memtable) and fully WAL-covered:
        assert node.query(SID, 0, 100)[0].size == 10
        node.close()
        recovered = make_node(tmp_path)
        assert recovered.query(SID, 0, 100)[0].size == 10
        assert recovered.recovery_info["wal_records_replayed"] >= 1
        recovered.close()

    def test_seal_retries_after_torn_write(self, tmp_path):
        node = make_node(tmp_path)
        disk = DiskFaultInjector()
        node._disk = disk
        node._wal._disk = disk
        node.insert_batch([(SID, t, t, 0) for t in range(10)])
        disk.torn_write_at = disk.writes + 1
        node.flush()
        assert node.segment_file_count == 0
        node.insert_batch([(SID_B, t, t, 0) for t in range(10)])
        node.flush()  # retry succeeds, both sensors sealed together
        assert node.segment_file_count == 1
        node.close()
        recovered = make_node(tmp_path)
        assert recovered.query(SID, 0, 100)[0].size == 10
        assert recovered.query(SID_B, 0, 100)[0].size == 10
        recovered.close()

    def test_short_read_drops_segment_and_recovery_continues(self, tmp_path):
        node = make_node(tmp_path)
        node.insert_batch([(SID, t, t, 0) for t in range(50)])
        node.flush()
        node.insert(SID_B, 1, 7)  # WAL-only at close
        node.close()
        disk = DiskFaultInjector(short_read_at=1)
        recovered = DurableNode(
            "n0", data_dir=tmp_path / "n0", fsync="always", disk=disk
        )
        info = recovered.recovery_info
        assert info["segments_dropped"]  # the shortened segment
        # The WAL-covered write still recovered.
        assert recovered.query(SID_B, 0, 10)[1].tolist() == [7]
        recovered.close()


# -- tiered compaction ----------------------------------------------------


class TestTieredCompaction:
    def test_file_count_bounded_and_data_intact(self, tmp_path):
        node = make_node(tmp_path, max_segment_files=4, compact_min_run=2)
        for b in range(12):
            node.insert_batch([(SID, b * 100 + i, b * 1000 + i, 0) for i in range(100)])
            node.flush()
        assert node.wait_for_compaction(timeout_s=30.0)
        assert node.segment_file_count <= 4
        assert node.metrics.value("dcdb_segment_compactions_total", {"node": "n0"}) > 0
        ts, vals = node.query(SID, 0, 10**9)
        assert ts.size == 1200
        assert vals.tolist() == [b * 1000 + i for b in range(12) for i in range(100)]
        # On-disk files match the manifest exactly.
        manifest = json.loads((tmp_path / "n0" / "manifest.json").read_text())
        on_disk = sorted(
            int(p.stem.split("-", 1)[1]) for p in (tmp_path / "n0").glob("seg-*.seg")
        )
        assert sorted(manifest["segments"]) == on_disk
        node.close()

    def test_lww_preserved_across_merges(self, tmp_path):
        node = make_node(tmp_path, max_segment_files=2, compact_min_run=2)
        for round_no in range(8):
            node.insert_batch([(SID, t, round_no, 0) for t in range(100)])
            node.flush()
        ts, vals = node.query(SID, 0, 1000)
        assert ts.size == 100
        assert set(vals.tolist()) == {7}  # newest round wins everywhere
        node.close()
        recovered = make_node(tmp_path)
        _, rvals = recovered.query(SID, 0, 1000)
        assert set(rvals.tolist()) == {7}
        recovered.close()

    def test_delete_before_filtered_during_merge(self, tmp_path):
        node = make_node(tmp_path, max_segment_files=2, compact_min_run=2)
        for b in range(4):
            node.insert_batch([(SID, b * 10 + i, 1, 0) for i in range(10)])
            node.flush()
        node.delete_before(SID, 20)
        for b in range(4, 8):
            node.insert_batch([(SID, b * 10 + i, 1, 0) for i in range(10)])
            node.flush()
        node.close()
        recovered = make_node(tmp_path)
        ts, _ = recovered.query(SID, 0, 1000)
        assert ts.tolist() == list(range(20, 80))
        recovered.close()

    def test_full_compact_collapses_to_one_file(self, tmp_path):
        node = make_node(tmp_path, max_segment_files=100)
        for b in range(5):
            node.insert_batch([(SID, b * 10 + i, i, 0) for i in range(10)])
            node.flush()
        assert node.segment_file_count == 5
        node.compact()
        assert node.segment_file_count == 1
        assert node.query(SID, 0, 1000)[0].size == 50
        node.close()


# -- backend wrapper / metrics -------------------------------------------


class TestDurableBackend:
    def test_fingerprint_stable_across_reopen_chain(self, tmp_path):
        b = DurableBackend(tmp_path / "d", fsync="always")
        b.insert_batch([(SID, t, t, 0) for t in range(250)])
        b.put_metadata("k", "v")
        fp = b.state_fingerprint()
        b.close()
        for _ in range(3):
            b = DurableBackend(tmp_path / "d", fsync="always")
            assert b.state_fingerprint() == fp
            b.close()

    def test_commit_durable_is_group_commit(self, tmp_path):
        b = DurableBackend(tmp_path / "d", fsync="interval", fsync_interval_s=3600.0)
        b.insert_batch([(SID, t, t, 0) for t in range(10)])
        assert b.node.wal.syncs == 0  # interval far away: nothing synced
        b.node.wal._last_sync = -(10**9)  # make the interval due
        assert b.commit_durable() is True
        assert b.node.wal.syncs == 1
        b.close()

    def test_wal_and_segment_metrics_advance(self, tmp_path):
        b = DurableBackend(tmp_path / "d", name="m0", fsync="always")
        b.insert_batch([(SID, t, t, 0) for t in range(100)])
        b.flush()
        m = b.metrics
        labels = {"node": "m0"}
        assert m.value("dcdb_wal_appends_total", labels) == 1
        assert m.value("dcdb_wal_bytes_total", labels) > 0
        assert m.value("dcdb_wal_syncs_total", labels) >= 1
        assert m.value("dcdb_wal_rotations_total", labels) == 1
        assert m.value("dcdb_segment_files_written_total", labels) == 1
        assert m.value("dcdb_segment_files", labels) == 1
        assert m.value("dcdb_segment_disk_bytes", labels) > 0
        assert m.value("dcdb_segment_compression_ratio", labels) > 1.0
        b.close()

    def test_rejects_bad_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError):
            DurableBackend(tmp_path / "d", fsync="never")
