"""Tests for partition-key policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sid import SensorId
from repro.storage.partitioner import HashPartitioner, HierarchicalPartitioner


def sid(*codes):
    return SensorId.from_codes(list(codes))


class TestHierarchicalPartitioner:
    def test_subtree_colocated(self):
        part = HierarchicalPartitioner(4, levels=2)
        owner = part.node_for(sid(1, 1, 1))
        assert part.node_for(sid(1, 1, 2)) == owner
        assert part.node_for(sid(1, 1, 3, 7)) == owner

    def test_different_subtrees_round_robin(self):
        part = HierarchicalPartitioner(3, levels=2)
        owners = [part.node_for(sid(1, i)) for i in range(1, 7)]
        assert owners == [0, 1, 2, 0, 1, 2]

    def test_assignment_stable(self):
        part = HierarchicalPartitioner(4, levels=2)
        first = part.node_for(sid(2, 3, 1))
        for _ in range(10):
            part.node_for(sid(5, 6, 7))  # churn other subtrees
        assert part.node_for(sid(2, 3, 9)) == first

    def test_node_for_prefix_at_partition_depth(self):
        part = HierarchicalPartitioner(4, levels=2)
        owner = part.node_for(sid(1, 2, 3))
        prefix = sid(1, 2).value
        assert part.node_for_prefix(prefix, 2) == owner

    def test_node_for_prefix_deeper_than_partition(self):
        part = HierarchicalPartitioner(4, levels=2)
        owner = part.node_for(sid(1, 2, 3))
        assert part.node_for_prefix(sid(1, 2, 3).value, 3) == owner

    def test_node_for_prefix_shallower_returns_none(self):
        part = HierarchicalPartitioner(4, levels=2)
        part.node_for(sid(1, 2, 3))
        assert part.node_for_prefix(sid(1).value, 1) is None

    def test_unknown_prefix_returns_none(self):
        part = HierarchicalPartitioner(4, levels=2)
        assert part.node_for_prefix(sid(9, 9).value, 2) is None

    def test_replicas_walk_ring(self):
        part = HierarchicalPartitioner(4, levels=1)
        replicas = part.replicas_for(sid(1, 1), 3)
        assert len(set(replicas)) == 3
        assert replicas[0] == part.node_for(sid(1, 1))

    def test_replication_capped_at_cluster_size(self):
        part = HierarchicalPartitioner(2, levels=1)
        assert len(part.replicas_for(sid(1), 5)) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HierarchicalPartitioner(0)
        with pytest.raises(ValueError):
            HierarchicalPartitioner(2, levels=0)

    def test_known_partitions(self):
        part = HierarchicalPartitioner(4, levels=2)
        part.node_for(sid(1, 1, 1))
        part.node_for(sid(1, 1, 2))
        part.node_for(sid(1, 2, 1))
        assert part.known_partitions == 2

    def test_overreplication_deduplicates_ring_walk(self):
        """replication > num_nodes must yield each node exactly once,
        primary first, never a duplicate index (a duplicate would make
        the cluster double-write one member and skew quorum counts)."""
        for n in (1, 2, 3):
            part = HierarchicalPartitioner(n, levels=1)
            for repl in (n, n + 1, n + 5, 64):
                replicas = part.replicas_for(sid(1, 7), repl)
                assert len(replicas) == n
                assert sorted(replicas) == list(range(n))
                assert replicas[0] == part.node_for(sid(1, 7))

    def test_first_seen_round_robin_is_order_dependent_but_stable(self):
        """Assignment is first-seen round-robin: the arrival order of
        *new* subtrees decides placement, and replaying the same order
        reproduces it exactly (the determinism the ownership table
        freezes at materialization)."""
        order = [sid(1, 1), sid(2, 1), sid(3, 1), sid(4, 1), sid(5, 1)]
        a = HierarchicalPartitioner(3, levels=1)
        b = HierarchicalPartitioner(3, levels=1)
        for s in order:
            a.node_for(s)
        for s in reversed(order):
            b.node_for(s)
        assert [a.node_for(s) for s in order] == [0, 1, 2, 0, 1]
        assert [b.node_for(s) for s in reversed(order)] == [0, 1, 2, 0, 1]
        # Same SIDs, different arrival order -> different owners; each
        # partitioner still answers consistently forever after.
        assert [b.node_for(s) for s in order] == [1, 0, 2, 1, 0]
        assert a.known_assignments() != b.known_assignments()
        assert [a.node_for(s) for s in order] == [0, 1, 2, 0, 1]

    def test_partition_key_is_prefix(self):
        part = HierarchicalPartitioner(3, levels=2)
        assert part.partition_key(sid(1, 2, 3)) == sid(1, 2, 3).prefix(2)
        assert part.partition_key(sid(1, 2, 9)) == part.partition_key(sid(1, 2, 3))
        assert part.partition_key(sid(1, 3, 3)) != part.partition_key(sid(1, 2, 3))

    def test_known_assignments_snapshot_is_copy(self):
        part = HierarchicalPartitioner(3, levels=1)
        part.node_for(sid(1, 1))
        snap = part.known_assignments()
        snap[999] = 999
        assert 999 not in part.known_assignments()


class TestHashPartitioner:
    def test_deterministic(self):
        part = HashPartitioner(5)
        s = sid(3, 4, 5)
        assert part.node_for(s) == part.node_for(s)

    def test_in_range(self):
        part = HashPartitioner(7)
        for i in range(1, 100):
            assert 0 <= part.node_for(sid(1, i)) < 7

    def test_subtree_scatters(self):
        # The ablation's point: hashing does NOT co-locate subtrees.
        part = HashPartitioner(8)
        owners = {part.node_for(sid(1, 1, i)) for i in range(1, 200)}
        assert len(owners) > 1

    def test_reasonable_balance(self):
        part = HashPartitioner(4)
        counts = [0] * 4
        for i in range(1, 2001):
            counts[part.node_for(sid(i % 50 + 1, i))] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_prefix_never_single_node(self):
        part = HashPartitioner(4)
        assert part.node_for_prefix(sid(1, 1).value, 2) is None

    @given(st.lists(st.integers(min_value=1, max_value=0xFFFF), min_size=1, max_size=8))
    def test_owner_in_range_property(self, codes):
        part = HashPartitioner(5)
        assert 0 <= part.node_for(SensorId.from_codes(codes)) < 5
