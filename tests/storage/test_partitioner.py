"""Tests for partition-key policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sid import SensorId
from repro.storage.partitioner import HashPartitioner, HierarchicalPartitioner


def sid(*codes):
    return SensorId.from_codes(list(codes))


class TestHierarchicalPartitioner:
    def test_subtree_colocated(self):
        part = HierarchicalPartitioner(4, levels=2)
        owner = part.node_for(sid(1, 1, 1))
        assert part.node_for(sid(1, 1, 2)) == owner
        assert part.node_for(sid(1, 1, 3, 7)) == owner

    def test_different_subtrees_round_robin(self):
        part = HierarchicalPartitioner(3, levels=2)
        owners = [part.node_for(sid(1, i)) for i in range(1, 7)]
        assert owners == [0, 1, 2, 0, 1, 2]

    def test_assignment_stable(self):
        part = HierarchicalPartitioner(4, levels=2)
        first = part.node_for(sid(2, 3, 1))
        for _ in range(10):
            part.node_for(sid(5, 6, 7))  # churn other subtrees
        assert part.node_for(sid(2, 3, 9)) == first

    def test_node_for_prefix_at_partition_depth(self):
        part = HierarchicalPartitioner(4, levels=2)
        owner = part.node_for(sid(1, 2, 3))
        prefix = sid(1, 2).value
        assert part.node_for_prefix(prefix, 2) == owner

    def test_node_for_prefix_deeper_than_partition(self):
        part = HierarchicalPartitioner(4, levels=2)
        owner = part.node_for(sid(1, 2, 3))
        assert part.node_for_prefix(sid(1, 2, 3).value, 3) == owner

    def test_node_for_prefix_shallower_returns_none(self):
        part = HierarchicalPartitioner(4, levels=2)
        part.node_for(sid(1, 2, 3))
        assert part.node_for_prefix(sid(1).value, 1) is None

    def test_unknown_prefix_returns_none(self):
        part = HierarchicalPartitioner(4, levels=2)
        assert part.node_for_prefix(sid(9, 9).value, 2) is None

    def test_replicas_walk_ring(self):
        part = HierarchicalPartitioner(4, levels=1)
        replicas = part.replicas_for(sid(1, 1), 3)
        assert len(set(replicas)) == 3
        assert replicas[0] == part.node_for(sid(1, 1))

    def test_replication_capped_at_cluster_size(self):
        part = HierarchicalPartitioner(2, levels=1)
        assert len(part.replicas_for(sid(1), 5)) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HierarchicalPartitioner(0)
        with pytest.raises(ValueError):
            HierarchicalPartitioner(2, levels=0)

    def test_known_partitions(self):
        part = HierarchicalPartitioner(4, levels=2)
        part.node_for(sid(1, 1, 1))
        part.node_for(sid(1, 1, 2))
        part.node_for(sid(1, 2, 1))
        assert part.known_partitions == 2


class TestHashPartitioner:
    def test_deterministic(self):
        part = HashPartitioner(5)
        s = sid(3, 4, 5)
        assert part.node_for(s) == part.node_for(s)

    def test_in_range(self):
        part = HashPartitioner(7)
        for i in range(1, 100):
            assert 0 <= part.node_for(sid(1, i)) < 7

    def test_subtree_scatters(self):
        # The ablation's point: hashing does NOT co-locate subtrees.
        part = HashPartitioner(8)
        owners = {part.node_for(sid(1, 1, i)) for i in range(1, 200)}
        assert len(owners) > 1

    def test_reasonable_balance(self):
        part = HashPartitioner(4)
        counts = [0] * 4
        for i in range(1, 2001):
            counts[part.node_for(sid(i % 50 + 1, i))] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_prefix_never_single_node(self):
        part = HashPartitioner(4)
        assert part.node_for_prefix(sid(1, 1).value, 2) is None

    @given(st.lists(st.integers(min_value=1, max_value=0xFFFF), min_size=1, max_size=8))
    def test_owner_in_range_property(self, codes):
        part = HashPartitioner(5)
        assert 0 <= part.node_for(SensorId.from_codes(codes)) < 5
