"""Contract tests: every StorageBackend implementation behaves alike.

This is the executable form of the paper's section 5.1 claim — the
storage API is backend-independent, so Cassandra (here: the
wide-column cluster) can be swapped for another database "without any
changes in the upstream components".  Each test runs against the
cluster, the in-memory store, the SQLite store, a quiescent
:class:`~repro.faults.FaultyBackend` (proving the fault-injection
wrapper is fully transparent when no faults fire) — and the durable
WAL+segment store, both live and through a reopen-between-write-and-
read proxy that forces every read to come off the on-disk files.
"""

import numpy as np
import pytest

from repro.core.sid import SensorId
from repro.faults import FaultyBackend
from repro.storage.cluster import StorageCluster
from repro.storage.durable import DurableBackend
from repro.storage.memory import MemoryBackend
from repro.storage.node import StorageNode
from repro.storage.sqlite import SqliteBackend

SID = SensorId.from_codes([1, 2, 3])
SID_SIBLING = SensorId.from_codes([1, 2, 4])
SID_OTHER = SensorId.from_codes([2, 1, 1])


class ReopeningDurable:
    """Durable backend that cold-starts before every read.

    Each read-side call seals the memtable (``flush``), closes the
    backend and reopens the data directory, so the answer can only
    come from the manifest + segment files + WAL on disk — never from
    process state the write left behind.
    """

    _READS = frozenset(
        {
            "query",
            "query_many",
            "query_prefix",
            "sids",
            "latest",
            "count",
            "get_metadata",
            "metadata_keys",
        }
    )

    def __init__(self, path):
        self._path = path
        self._backend = DurableBackend(path, name="contract-reopen")

    def _reopen(self):
        self._backend.flush()
        self._backend.close()
        self._backend = DurableBackend(self._path, name="contract-reopen")

    def __getattr__(self, name):
        if name in self._READS:
            self._reopen()
        return getattr(self._backend, name)

    def close(self):
        self._backend.close()


@pytest.fixture(
    params=["cluster", "memory", "sqlite", "faulty", "durable", "durable_reopen"]
)
def backend(request):
    if request.param == "cluster":
        b = StorageCluster([StorageNode("a"), StorageNode("b")], replication=2)
    elif request.param == "memory":
        b = MemoryBackend()
    elif request.param == "faulty":
        b = FaultyBackend(MemoryBackend(), fault_rate=0.0)
    elif request.param == "durable":
        tmp_path = request.getfixturevalue("tmp_path")
        b = DurableBackend(tmp_path / "durable", name="contract-durable")
    elif request.param == "durable_reopen":
        tmp_path = request.getfixturevalue("tmp_path")
        b = ReopeningDurable(tmp_path / "durable")
    else:
        b = SqliteBackend(":memory:")
    yield b
    b.close()


class TestDataContract:
    def test_insert_query_round_trip(self, backend):
        backend.insert(SID, 100, 42)
        ts, vals = backend.query(SID, 0, 1000)
        assert ts.tolist() == [100] and vals.tolist() == [42]

    def test_results_time_ordered(self, backend):
        for t in (30, 10, 20):
            backend.insert(SID, t, t)
        ts, _ = backend.query(SID, 0, 100)
        assert ts.tolist() == [10, 20, 30]

    def test_range_inclusive(self, backend):
        for t in range(10):
            backend.insert(SID, t, t)
        ts, _ = backend.query(SID, 3, 7)
        assert ts.tolist() == [3, 4, 5, 6, 7]

    def test_last_write_wins(self, backend):
        backend.insert(SID, 5, 1)
        backend.insert(SID, 5, 2)
        ts, vals = backend.query(SID, 0, 10)
        assert ts.tolist() == [5] and vals.tolist() == [2]

    def test_empty_query(self, backend):
        ts, vals = backend.query(SID, 0, 10)
        assert ts.size == 0 and vals.size == 0
        assert ts.dtype == np.int64

    def test_insert_batch(self, backend):
        count = backend.insert_batch([(SID, t, t * 2, 0) for t in range(50)])
        assert count == 50
        assert backend.count(SID, 0, 100) == 50

    def test_sids(self, backend):
        backend.insert(SID, 1, 1)
        backend.insert(SID_OTHER, 1, 1)
        assert backend.sids() == sorted([SID, SID_OTHER])

    def test_latest(self, backend):
        assert backend.latest(SID) is None
        backend.insert(SID, 1, 10)
        backend.insert(SID, 9, 90)
        assert backend.latest(SID) == (9, 90)

    def test_delete_before(self, backend):
        for t in range(10):
            backend.insert(SID, t, t)
        removed = backend.delete_before(SID, 5)
        assert removed == 5
        ts, _ = backend.query(SID, 0, 100)
        assert ts.tolist() == [5, 6, 7, 8, 9]

    def test_query_prefix_selects_subtree(self, backend):
        backend.insert(SID, 1, 1)
        backend.insert(SID_SIBLING, 1, 2)
        backend.insert(SID_OTHER, 1, 3)
        prefix = SID.prefix(2)
        results = list(backend.query_prefix(prefix, 2, 0, 10))
        found = {s for s, _, _ in results}
        assert found == {SID, SID_SIBLING}

    def test_query_many_matches_looped_query(self, backend):
        for i, sid in enumerate((SID, SID_SIBLING, SID_OTHER)):
            for t in range(10):
                backend.insert(sid, t * 10, t + i * 100)
        result = backend.query_many([SID, SID_SIBLING, SID_OTHER], 15, 75)
        assert set(result) == {SID, SID_SIBLING, SID_OTHER}
        for sid in (SID, SID_SIBLING, SID_OTHER):
            ts, vals = backend.query(sid, 15, 75)
            assert result[sid][0].tolist() == ts.tolist()
            assert result[sid][1].tolist() == vals.tolist()

    def test_query_many_last_write_wins(self, backend):
        backend.insert(SID, 5, 1)
        backend.insert(SID, 5, 2)
        backend.insert(SID_OTHER, 5, 7)
        result = backend.query_many([SID, SID_OTHER], 0, 10)
        assert result[SID][0].tolist() == [5] and result[SID][1].tolist() == [2]
        assert result[SID_OTHER][1].tolist() == [7]

    def test_query_many_empty_range_and_unknown_sid(self, backend):
        backend.insert(SID, 100, 1)
        # SID has no rows in [0, 10]; SID_OTHER was never written.
        result = backend.query_many([SID, SID_OTHER], 0, 10)
        for sid in (SID, SID_OTHER):
            ts, vals = result[sid]
            assert ts.size == 0 and vals.size == 0
            assert ts.dtype == np.int64

    def test_negative_values(self, backend):
        backend.insert(SID, 1, -(2**40))
        _, vals = backend.query(SID, 0, 10)
        assert vals.tolist() == [-(2**40)]

    def test_flush_and_compact_preserve_data(self, backend):
        for t in range(20):
            backend.insert(SID, t, t)
        backend.flush()
        backend.compact()
        assert backend.count(SID, 0, 100) == 20


class TestMetadataContract:
    def test_put_get(self, backend):
        backend.put_metadata("k", "v")
        assert backend.get_metadata("k") == "v"

    def test_get_missing(self, backend):
        assert backend.get_metadata("nope") is None

    def test_overwrite(self, backend):
        backend.put_metadata("k", "1")
        backend.put_metadata("k", "2")
        assert backend.get_metadata("k") == "2"

    def test_keys_prefix_filtered(self, backend):
        backend.put_metadata("a/1", "x")
        backend.put_metadata("a/2", "x")
        backend.put_metadata("b/1", "x")
        assert backend.metadata_keys("a/") == ["a/1", "a/2"]

    def test_delete(self, backend):
        backend.put_metadata("k", "v")
        backend.delete_metadata("k")
        assert backend.get_metadata("k") is None


class TestSqliteSpecific:
    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        backend = SqliteBackend(path)
        backend.insert(SID, 1, 42)
        backend.put_metadata("k", "v")
        backend.close()
        reopened = SqliteBackend(path)
        assert reopened.query(SID, 0, 10)[1].tolist() == [42]
        assert reopened.get_metadata("k") == "v"
        reopened.close()

    def test_compact_purges_expired(self):
        now = [0]
        backend = SqliteBackend(":memory:", clock=lambda: now[0])
        backend.insert(SID, 0, 1, ttl_s=1)
        now[0] = 5_000_000_000
        backend.compact()
        now[0] = 0  # even rewinding, the row is physically gone
        assert backend.query(SID, 0, 10)[0].size == 0
        backend.close()
