"""Tests for storage snapshot persistence (superseded, kept loadable).

The snapshot module predates the durable storage engine; these tests
pin down that (a) node *and cluster* state still round-trips through
``tmp_path`` directories, (b) snapshot directories written before the
durable engine landed keep loading byte-identically, and (c) the
module points readers at its successor.
"""

import importlib
import json
import os

import pytest

from repro.common.errors import StorageError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.sid import SensorId
from repro.storage import persistence
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.persistence import (
    load_cluster,
    load_node,
    save_cluster,
    save_node,
)

SIDS = [SensorId.from_codes([1, i]) for i in range(1, 4)]


def populated_node(clock=None):
    node = StorageNode("orig", flush_threshold=50, clock=clock)
    for idx, sid in enumerate(SIDS):
        node.insert_batch([(sid, t, t * (idx + 1), 0) for t in range(100)])
    node.put_metadata("sidmap/a/b", SIDS[0].hex())
    node.put_metadata("sensorconfig/a/b", '{"unit": "W"}')
    return node


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        node = populated_node()
        written = save_node(node, str(tmp_path / "snap"))
        assert written == 3
        restored = load_node(str(tmp_path / "snap"))
        for idx, sid in enumerate(SIDS):
            ts, vals = restored.query(sid, 0, 1000)
            orig_ts, orig_vals = node.query(sid, 0, 1000)
            assert ts.tolist() == orig_ts.tolist()
            assert vals.tolist() == orig_vals.tolist()

    def test_metadata_restored(self, tmp_path):
        node = populated_node()
        save_node(node, str(tmp_path / "snap"))
        restored = load_node(str(tmp_path / "snap"))
        assert restored.get_metadata("sidmap/a/b") == SIDS[0].hex()
        assert restored.get_metadata("sensorconfig/a/b") == '{"unit": "W"}'

    def test_memtable_contents_included(self, tmp_path):
        node = StorageNode(flush_threshold=10**9)  # never auto-flush
        node.insert(SIDS[0], 1, 42)
        save_node(node, str(tmp_path / "snap"))
        restored = load_node(str(tmp_path / "snap"))
        assert restored.query(SIDS[0], 0, 10)[1].tolist() == [42]

    def test_ttl_preserved(self, tmp_path):
        clock = SimClock(0)
        node = StorageNode(clock=clock)
        node.insert(SIDS[0], 0, 1, ttl_s=10)
        node.insert(SIDS[0], 1, 2, ttl_s=0)
        save_node(node, str(tmp_path / "snap"))
        late_clock = SimClock(20 * NS_PER_SEC)
        restored = load_node(str(tmp_path / "snap"), clock=late_clock)
        ts, vals = restored.query(SIDS[0], 0, 10)
        assert vals.tolist() == [2]  # expired row filtered after restore

    def test_restored_node_accepts_new_writes(self, tmp_path):
        node = populated_node()
        save_node(node, str(tmp_path / "snap"))
        restored = load_node(str(tmp_path / "snap"))
        restored.insert(SIDS[0], 500, 999)
        ts, vals = restored.query(SIDS[0], 0, 1000)
        assert ts.size == 101
        assert vals[-1] == 999

    def test_node_name_round_trips(self, tmp_path):
        node = populated_node()
        save_node(node, str(tmp_path / "snap"))
        assert load_node(str(tmp_path / "snap")).name == "orig"

    def test_empty_node(self, tmp_path):
        node = StorageNode()
        assert save_node(node, str(tmp_path / "snap")) == 0
        restored = load_node(str(tmp_path / "snap"))
        assert restored.sids() == []


class TestClusterSnapshot:
    def _populated_cluster(self):
        cluster = StorageCluster(
            [StorageNode("a"), StorageNode("b"), StorageNode("c")], replication=2
        )
        for idx, sid in enumerate(SIDS):
            cluster.insert_batch([(sid, t, t * (idx + 1), 0) for t in range(100)])
        cluster.put_metadata("sidmap/a/b", SIDS[0].hex())
        return cluster

    def test_cluster_round_trip(self, tmp_path):
        cluster = self._populated_cluster()
        written = save_cluster(cluster, str(tmp_path / "snap"))
        assert written > 0
        restored = load_cluster(str(tmp_path / "snap"))
        assert len(restored.nodes) == 3
        assert restored.replication == 2
        for sid in SIDS:
            orig_ts, orig_vals = cluster.query(sid, 0, 1000)
            ts, vals = restored.query(sid, 0, 1000)
            assert ts.tolist() == orig_ts.tolist()
            assert vals.tolist() == orig_vals.tolist()
        assert restored.get_metadata("sidmap/a/b") == SIDS[0].hex()

    def test_per_member_layout(self, tmp_path):
        save_cluster(self._populated_cluster(), str(tmp_path / "snap"))
        root = tmp_path / "snap"
        assert (root / "cluster.json").is_file()
        for i in range(3):
            assert (root / f"node{i}" / "manifest.json").is_file()

    def test_replication_override(self, tmp_path):
        save_cluster(self._populated_cluster(), str(tmp_path / "snap"))
        restored = load_cluster(str(tmp_path / "snap"), replication=1)
        assert restored.replication == 1

    def test_missing_cluster_doc(self, tmp_path):
        with pytest.raises(StorageError, match="cluster snapshot"):
            load_cluster(str(tmp_path / "nothing"))


class TestDeprecationPointer:
    """The snapshot API is superseded by the durable engine; the
    pointer must resolve and the old on-disk format must keep loading."""

    def test_superseded_by_resolves(self):
        assert persistence.SUPERSEDED_BY == "repro.storage.durable"
        module = importlib.import_module(persistence.SUPERSEDED_BY)
        assert hasattr(module, "DurableNode")

    def test_deprecation_documented(self):
        assert "deprecated" in (persistence.__doc__ or "").lower()

    def test_public_functions_warn_deprecated(self, tmp_path):
        """Every public entry point emits a DeprecationWarning that
        names the successor, so callers migrating to ``durable:`` data
        dirs find the path from the warning text alone."""
        node = populated_node()
        with pytest.warns(DeprecationWarning, match="durable"):
            save_node(node, str(tmp_path / "snap"))
        with pytest.warns(DeprecationWarning, match="durable"):
            load_node(str(tmp_path / "snap"))
        cluster = StorageCluster([populated_node(), populated_node()], replication=1)
        with pytest.warns(DeprecationWarning, match="durable"):
            save_cluster(cluster, str(tmp_path / "csnap"))
        with pytest.warns(DeprecationWarning, match="durable"):
            load_cluster(str(tmp_path / "csnap"))

    def test_pre_durable_npz_snapshot_still_loads(self, tmp_path):
        """A snapshot directory in the original layout — hand-written
        ``.npz`` + v1 manifest, exactly what pre-durable deployments
        have on disk — loads without the new engine touching it."""
        import numpy as np

        snap = tmp_path / "snap"
        snap.mkdir()
        sid = SIDS[0]
        np.savez_compressed(
            snap / f"{sid.hex()}.npz",
            timestamps=np.array([1, 2, 3], dtype=np.int64),
            values=np.array([10, 20, 30], dtype=np.int64),
            expiries=np.full(3, (1 << 63) - 1, dtype=np.int64),
        )
        (snap / "manifest.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "name": "legacy",
                    "sensors": [{"sid": sid.hex(), "rows": 3}],
                }
            )
        )
        (snap / "metadata.json").write_text(json.dumps({"k": "v"}))
        node = load_node(str(snap))
        assert node.name == "legacy"
        assert node.query(sid, 0, 10)[1].tolist() == [10, 20, 30]
        assert node.get_metadata("k") == "v"


class TestCorruptionHandling:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError, match="manifest"):
            load_node(str(tmp_path / "nothing"))

    def test_wrong_version(self, tmp_path):
        snap = tmp_path / "snap"
        snap.mkdir()
        (snap / "manifest.json").write_text(json.dumps({"version": 99, "sensors": []}))
        with pytest.raises(StorageError, match="unsupported"):
            load_node(str(snap))

    def test_missing_segment_file(self, tmp_path):
        node = populated_node()
        save_node(node, str(tmp_path / "snap"))
        os.unlink(tmp_path / "snap" / f"{SIDS[0].hex()}.npz")
        with pytest.raises(StorageError, match="missing"):
            load_node(str(tmp_path / "snap"))

    def test_row_count_mismatch_detected(self, tmp_path):
        node = populated_node()
        save_node(node, str(tmp_path / "snap"))
        manifest_path = tmp_path / "snap" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["sensors"][0]["rows"] = 7
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="mismatch"):
            load_node(str(tmp_path / "snap"))
