"""Property-based round-trip tests for the segment compression codecs.

The delta-of-delta and Gorilla-XOR codecs must reproduce *any* int64
column bit-exactly — including float sensors stored as raw IEEE-754
bit patterns (NaN, ±inf), constant runs, and adversarial jitter — so
the generators below are seeded :class:`random.Random` streams (no
extra dependency) covering each regime, with the seed in the failure
message so any counterexample reproduces.
"""

import math
import random
import struct

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.storage.durable import (
    BitReader,
    BitWriter,
    decode_timestamps,
    decode_values,
    encode_timestamps,
    encode_values,
)

I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1

SEEDS = range(20)


def _round_trip_ts(column):
    arr = np.array(column, dtype=np.int64)
    return decode_timestamps(encode_timestamps(arr), arr.size)


def _round_trip_vals(column):
    arr = np.array(column, dtype=np.int64)
    return decode_values(encode_values(arr), arr.size)


# -- generators (seeded, dependency-free) ---------------------------------


def gen_uniform_int64(rng, n):
    """Adversarial: full-range values, maximal deltas."""
    return [rng.randint(I64_MIN, I64_MAX) for _ in range(n)]


def gen_monitoring_timestamps(rng, n):
    """The intended regime: fixed interval with occasional jitter."""
    interval = rng.choice([1_000_000, 10_000_000, 1_000_000_000])
    t = rng.randint(0, 1 << 40)
    out = []
    for _ in range(n):
        out.append(t)
        t += interval + (rng.randint(-500, 500) if rng.random() < 0.1 else 0)
    return out

def gen_constant_run(rng, n):
    v = rng.randint(I64_MIN, I64_MAX)
    return [v] * n


def gen_slow_walk(rng, n):
    """Temperature-like: small steps around a level."""
    v = rng.randint(0, 100_000)
    out = []
    for _ in range(n):
        out.append(v)
        v += rng.randint(-3, 3)
    return out


def gen_float_bit_patterns(rng, n):
    """Float sensors store raw IEEE-754 words: NaN/±inf/denormals mixed
    with ordinary readings, reinterpreted as int64."""
    specials = [
        math.nan,
        math.inf,
        -math.inf,
        0.0,
        -0.0,
        5e-324,  # smallest denormal
        1.7976931348623157e308,
    ]
    out = []
    for _ in range(n):
        if rng.random() < 0.3:
            f = rng.choice(specials)
        else:
            f = rng.uniform(-1e6, 1e6)
        (word,) = struct.unpack("<q", struct.pack("<d", f))
        out.append(word)
    return out


GENERATORS = [
    gen_uniform_int64,
    gen_monitoring_timestamps,
    gen_constant_run,
    gen_slow_walk,
    gen_float_bit_patterns,
]


# -- bit stream primitives ------------------------------------------------


class TestBitStream:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_writer_reader_round_trip(self, seed):
        rng = random.Random(seed)
        fields = [
            (rng.getrandbits(bits), bits)
            for bits in (rng.randint(1, 68) for _ in range(200))
        ]
        w = BitWriter()
        for value, bits in fields:
            w.write(value, bits)
        r = BitReader(w.finish())
        for value, bits in fields:
            assert r.read(bits) == value, f"seed={seed}"

    def test_reader_raises_past_end(self):
        w = BitWriter()
        w.write(0b101, 3)
        r = BitReader(w.finish())
        r.read(8)  # the padded byte
        with pytest.raises(StorageError, match="truncated"):
            r.read(1)

    def test_finish_pads_to_byte(self):
        w = BitWriter()
        w.write(1, 1)
        data = w.finish()
        assert len(data) == 1 and data == b"\x80"


# -- codec round trips ----------------------------------------------------


class TestTimestampCodec:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: g.__name__)
    def test_round_trip(self, gen, seed):
        rng = random.Random(seed)
        column = gen(rng, rng.randint(1, 400))
        out = _round_trip_ts(column)
        assert out.tolist() == column, f"gen={gen.__name__} seed={seed}"
        assert out.dtype == np.int64

    def test_empty(self):
        assert encode_timestamps(np.empty(0, dtype=np.int64)) == b""
        assert decode_timestamps(b"", 0).size == 0

    def test_single(self):
        for v in (0, I64_MIN, I64_MAX, -1):
            assert _round_trip_ts([v]).tolist() == [v]

    def test_extreme_second_difference(self):
        # Worst-case delta-of-delta: int64 extremes back to back.
        column = [I64_MIN, I64_MAX, I64_MIN, 0, I64_MAX]
        assert _round_trip_ts(column).tolist() == column

    def test_regular_interval_is_near_one_bit_per_row(self):
        column = list(range(0, 10_000_000_000, 1_000_000))
        encoded = encode_timestamps(np.array(column, dtype=np.int64))
        # 64-bit head + ~1 bit per subsequent row.
        assert len(encoded) <= 8 + len(column) // 8 + 16

    def test_truncated_block_raises(self):
        encoded = encode_timestamps(np.arange(100, dtype=np.int64) * 7919)
        with pytest.raises(StorageError, match="truncated"):
            decode_timestamps(encoded[: len(encoded) // 2], 100)


class TestValueCodec:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: g.__name__)
    def test_round_trip(self, gen, seed):
        rng = random.Random(seed)
        column = gen(rng, rng.randint(1, 400))
        out = _round_trip_vals(column)
        assert out.tolist() == column, f"gen={gen.__name__} seed={seed}"
        assert out.dtype == np.int64

    def test_empty_and_single(self):
        assert encode_values(np.empty(0, dtype=np.int64)) == b""
        assert decode_values(b"", 0).size == 0
        for v in (0, I64_MIN, I64_MAX, -1):
            assert _round_trip_vals([v]).tolist() == [v]

    def test_constant_run_is_one_bit_per_row(self):
        column = [123456789] * 4096
        encoded = encode_values(np.array(column, dtype=np.int64))
        assert len(encoded) <= 8 + 4096 // 8 + 1

    def test_nan_bit_pattern_exact(self):
        # Distinct NaN payloads must survive: the codec may not
        # canonicalize, only difference bits.
        quiet = struct.unpack("<q", struct.pack("<Q", 0x7FF8000000000001))[0]
        signaling = struct.unpack("<q", struct.pack("<Q", 0x7FF0000000000002))[0]
        column = [quiet, signaling, quiet, quiet, signaling]
        assert _round_trip_vals(column).tolist() == column

    def test_window_shrink_and_regrow(self):
        # Force the leading/trailing window to be reused, then broken.
        column = [0, 0xFF00, 0xF000, 0x1, 0x8000000000000000 - 1, 0]
        assert _round_trip_vals(column).tolist() == column

    def test_truncated_block_raises(self):
        rng = random.Random(7)
        column = gen_uniform_int64(rng, 64)
        encoded = encode_values(np.array(column, dtype=np.int64))
        with pytest.raises(StorageError):
            decode_values(encoded[:10], 64)


class TestLwwDedupThenEncode:
    """Out-of-order duplicate input, deduped the flush-time way, then
    round-tripped — the exact data shape a memtable seal hands the
    segment writer."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dedup_then_round_trip(self, seed):
        from repro.storage.durable.node import _merge_lww

        rng = random.Random(seed)
        n = rng.randint(10, 300)
        ts = [rng.randint(0, 50) * 1_000_000 for _ in range(n)]
        vals = gen_float_bit_patterns(rng, n)
        exp = [I64_MAX] * n
        parts = [
            (
                np.array(ts, dtype=np.int64),
                np.array(vals, dtype=np.int64),
                np.array(exp, dtype=np.int64),
            )
        ]
        mts, mvals, mexp = _merge_lww(parts)
        # Post-merge invariant: strictly increasing timestamps.
        assert np.all(np.diff(mts) > 0), f"seed={seed}"
        assert decode_timestamps(encode_timestamps(mts), mts.size).tolist() == mts.tolist()
        assert decode_values(encode_values(mvals), mvals.size).tolist() == mvals.tolist()
        assert decode_timestamps(encode_timestamps(mexp), mexp.size).tolist() == mexp.tolist()
        # LWW: the kept value at each timestamp is the *last* occurrence.
        last = {}
        for t, v in zip(ts, vals):
            last[t] = v
        assert {int(t): int(v) for t, v in zip(mts, mvals)} == last
