"""Property-based round-trip tests for the segment compression codecs.

The delta-of-delta and Gorilla-XOR codecs must reproduce *any* int64
column bit-exactly — including float sensors stored as raw IEEE-754
bit patterns (NaN, ±inf), constant runs, and adversarial jitter — so
the generators below are seeded :class:`random.Random` streams (no
extra dependency) covering each regime, with the seed in the failure
message so any counterexample reproduces.
"""

import math
import random
import struct

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.storage.durable import (
    BitReader,
    BitWriter,
    decode_timestamps,
    decode_values,
    encode_timestamps,
    encode_values,
)

I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1

SEEDS = range(20)


def _round_trip_ts(column):
    arr = np.array(column, dtype=np.int64)
    return decode_timestamps(encode_timestamps(arr), arr.size)


def _round_trip_vals(column):
    arr = np.array(column, dtype=np.int64)
    return decode_values(encode_values(arr), arr.size)


# -- generators (seeded, dependency-free) ---------------------------------


def gen_uniform_int64(rng, n):
    """Adversarial: full-range values, maximal deltas."""
    return [rng.randint(I64_MIN, I64_MAX) for _ in range(n)]


def gen_monitoring_timestamps(rng, n):
    """The intended regime: fixed interval with occasional jitter."""
    interval = rng.choice([1_000_000, 10_000_000, 1_000_000_000])
    t = rng.randint(0, 1 << 40)
    out = []
    for _ in range(n):
        out.append(t)
        t += interval + (rng.randint(-500, 500) if rng.random() < 0.1 else 0)
    return out

def gen_constant_run(rng, n):
    v = rng.randint(I64_MIN, I64_MAX)
    return [v] * n


def gen_slow_walk(rng, n):
    """Temperature-like: small steps around a level."""
    v = rng.randint(0, 100_000)
    out = []
    for _ in range(n):
        out.append(v)
        v += rng.randint(-3, 3)
    return out


def gen_float_bit_patterns(rng, n):
    """Float sensors store raw IEEE-754 words: NaN/±inf/denormals mixed
    with ordinary readings, reinterpreted as int64."""
    specials = [
        math.nan,
        math.inf,
        -math.inf,
        0.0,
        -0.0,
        5e-324,  # smallest denormal
        1.7976931348623157e308,
    ]
    out = []
    for _ in range(n):
        if rng.random() < 0.3:
            f = rng.choice(specials)
        else:
            f = rng.uniform(-1e6, 1e6)
        (word,) = struct.unpack("<q", struct.pack("<d", f))
        out.append(word)
    return out


GENERATORS = [
    gen_uniform_int64,
    gen_monitoring_timestamps,
    gen_constant_run,
    gen_slow_walk,
    gen_float_bit_patterns,
]


# -- bit stream primitives ------------------------------------------------


class TestBitStream:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_writer_reader_round_trip(self, seed):
        rng = random.Random(seed)
        fields = [
            (rng.getrandbits(bits), bits)
            for bits in (rng.randint(1, 68) for _ in range(200))
        ]
        w = BitWriter()
        for value, bits in fields:
            w.write(value, bits)
        r = BitReader(w.finish())
        for value, bits in fields:
            assert r.read(bits) == value, f"seed={seed}"

    def test_reader_raises_past_end(self):
        w = BitWriter()
        w.write(0b101, 3)
        r = BitReader(w.finish())
        r.read(8)  # the padded byte
        with pytest.raises(StorageError, match="truncated"):
            r.read(1)

    def test_finish_pads_to_byte(self):
        w = BitWriter()
        w.write(1, 1)
        data = w.finish()
        assert len(data) == 1 and data == b"\x80"


# -- codec round trips ----------------------------------------------------


class TestTimestampCodec:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: g.__name__)
    def test_round_trip(self, gen, seed):
        rng = random.Random(seed)
        column = gen(rng, rng.randint(1, 400))
        out = _round_trip_ts(column)
        assert out.tolist() == column, f"gen={gen.__name__} seed={seed}"
        assert out.dtype == np.int64

    def test_empty(self):
        assert encode_timestamps(np.empty(0, dtype=np.int64)) == b""
        assert decode_timestamps(b"", 0).size == 0

    def test_single(self):
        for v in (0, I64_MIN, I64_MAX, -1):
            assert _round_trip_ts([v]).tolist() == [v]

    def test_extreme_second_difference(self):
        # Worst-case delta-of-delta: int64 extremes back to back.
        column = [I64_MIN, I64_MAX, I64_MIN, 0, I64_MAX]
        assert _round_trip_ts(column).tolist() == column

    def test_regular_interval_is_near_one_bit_per_row(self):
        column = list(range(0, 10_000_000_000, 1_000_000))
        encoded = encode_timestamps(np.array(column, dtype=np.int64))
        # 64-bit head + ~1 bit per subsequent row.
        assert len(encoded) <= 8 + len(column) // 8 + 16

    def test_truncated_block_raises(self):
        encoded = encode_timestamps(np.arange(100, dtype=np.int64) * 7919)
        with pytest.raises(StorageError, match="truncated"):
            decode_timestamps(encoded[: len(encoded) // 2], 100)


class TestValueCodec:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: g.__name__)
    def test_round_trip(self, gen, seed):
        rng = random.Random(seed)
        column = gen(rng, rng.randint(1, 400))
        out = _round_trip_vals(column)
        assert out.tolist() == column, f"gen={gen.__name__} seed={seed}"
        assert out.dtype == np.int64

    def test_empty_and_single(self):
        assert encode_values(np.empty(0, dtype=np.int64)) == b""
        assert decode_values(b"", 0).size == 0
        for v in (0, I64_MIN, I64_MAX, -1):
            assert _round_trip_vals([v]).tolist() == [v]

    def test_constant_run_is_one_bit_per_row(self):
        column = [123456789] * 4096
        encoded = encode_values(np.array(column, dtype=np.int64))
        assert len(encoded) <= 8 + 4096 // 8 + 1

    def test_nan_bit_pattern_exact(self):
        # Distinct NaN payloads must survive: the codec may not
        # canonicalize, only difference bits.
        quiet = struct.unpack("<q", struct.pack("<Q", 0x7FF8000000000001))[0]
        signaling = struct.unpack("<q", struct.pack("<Q", 0x7FF0000000000002))[0]
        column = [quiet, signaling, quiet, quiet, signaling]
        assert _round_trip_vals(column).tolist() == column

    def test_window_shrink_and_regrow(self):
        # Force the leading/trailing window to be reused, then broken.
        column = [0, 0xFF00, 0xF000, 0x1, 0x8000000000000000 - 1, 0]
        assert _round_trip_vals(column).tolist() == column

    def test_truncated_block_raises(self):
        rng = random.Random(7)
        column = gen_uniform_int64(rng, 64)
        encoded = encode_values(np.array(column, dtype=np.int64))
        with pytest.raises(StorageError):
            decode_values(encoded[:10], 64)


class TestLwwDedupThenEncode:
    """Out-of-order duplicate input, deduped the flush-time way, then
    round-tripped — the exact data shape a memtable seal hands the
    segment writer."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dedup_then_round_trip(self, seed):
        from repro.storage.durable.node import _merge_lww

        rng = random.Random(seed)
        n = rng.randint(10, 300)
        ts = [rng.randint(0, 50) * 1_000_000 for _ in range(n)]
        vals = gen_float_bit_patterns(rng, n)
        exp = [I64_MAX] * n
        parts = [
            (
                np.array(ts, dtype=np.int64),
                np.array(vals, dtype=np.int64),
                np.array(exp, dtype=np.int64),
            )
        ]
        mts, mvals, mexp = _merge_lww(parts)
        # Post-merge invariant: strictly increasing timestamps.
        assert np.all(np.diff(mts) > 0), f"seed={seed}"
        assert decode_timestamps(encode_timestamps(mts), mts.size).tolist() == mts.tolist()
        assert decode_values(encode_values(mvals), mvals.size).tolist() == mvals.tolist()
        assert decode_timestamps(encode_timestamps(mexp), mexp.size).tolist() == mexp.tolist()
        # LWW: the kept value at each timestamp is the *last* occurrence.
        last = {}
        for t, v in zip(ts, vals):
            last[t] = v
        assert {int(t): int(v) for t, v in zip(mts, mvals)} == last

# -- golden vectors --------------------------------------------------------
#
# Encoded bytes captured from the PR 8 per-reading loop codec.  The
# vectorized kernels must reproduce them bit-for-bit: round-trip
# consistency alone would let encoder and decoder drift together and
# silently orphan every segment already on disk.

GOLDEN_VECTORS = {
    "fixed_interval_ts": (
        "17979cfe362a0000e773594000000000000000",
        "17979cfe362a0000e1563f765e05b726d7c8b4b977d7e637bb88975b67df2a78"
        "995e775dfffe232eb800bb36960062577f8009fca9600e25deb80078da760022"
        "d3a78019935b6002df6bb807894f9600263eaf8018b5596003e739b8038f3ab6"
        "002655e780188caf6002edf6b80f89d6960025d29f800793f96006232ab8009b"
        "55f600e27fa7800bf4bb60062359b800993a9601e2d36f800f9d6960065defb8"
        "0088ceb600ee55678008b3a76006673ab8008f5b96001e3dbf81f894d960026f"
        "6ab801893676002dd2e780398deb40",
    ),
    "jittered_ts": (
        "16345785d8a00000e77359400600c9c019449f006b600ad48b00ace030e9de01"
        "99300dbe01b860137c027003019160321600fac0543806a00c043b80722acc03"
        "d7807b00",
        "16345785d8a00000de63cc9acb0b7debf81fc4a5c99b931ede8037d7e2d76b87"
        "9ca9785c8f367c3f03f995b94b32233ab006e35fbb75f785e89da9c63c0ee5d3"
        "ed5fc2f7c9d356ddf8388d69e6b1369b6802627ebb0045fabca00de7fc4655f2"
        "61327b2808c5ab36020f39566f84bbfca0271195f8085caaca023167d58084ce"
        "53a03759f8f579e0f8fab61894def85e9bd6996fbebf12776c5ba737c0fe636a"
        "542c8975bed91ef3a5006f31e256fb84f9b5b188cd9e172b4ece2fdab84ca5cb"
        "c0fe237bcb9cf7359c5bb6dff32956c045ef37c0f6e52e587911ed7800",
    ),
    "temp_drift_vals": (
        "000000000000cb20207068288542e090681c0a0480c1e110181c120901416148"
        "3c220b0680c1d048241e150381c0e15018140a16",
        "000000000000cb203e84fff81fe03fa0f3f817fc0f6d86e4314d1cb3a64d0c71"
        "47f42fb070a838e8e82414146c0c0c6c147c143c38",
    ),
    "ieee754_vals": (
        "7ff8000000000000f0000ffffffffffffff0ffeffffffffffffff10020000000"
        "000000f1001ffffffffffffff20000000000000002f08010000000000003f17f"
        "dbfffffffffffdf27fd8000000000000f17ffbfffffffffffff0ffefffffffff"
        "fffff10020000000000000f1001ffffffffffffff20000000000000002f08010"
        "000000000003f17fdbfffffffffffdf27fd8000000000000f17ffbffffffffff"
        "fff0ffeffffffffffffff10020000000000000f1001ffffffffffffff2000000"
        "0000000002f08010000000000003f17fdbfffffffffffdf27fd8000000000000"
        "f17ffbfffffffffffff0ffeffffffffffffff10020000000000000f1001fffff"
        "fffffffff20000000000000002f08010000000000003f17fdbfffffffffffd",
        "7ff8000000000000cc03800700bfffa00303f80000000000000018ffe0000000"
        "000006fffa000000000000affe80000000000020008000000000000a00000000"
        "00000002fff0000000000000a000000000000000280000000000000018ffe000"
        "0000000006fffa000000000000affe80000000000020008000000000000a0000"
        "000000000002fff0000000000000a000000000000000280000000000000018ff"
        "e0000000000006fffa000000000000affe80000000000020008000000000000a"
        "0000000000000002fff0000000000000a0000000000000002800000000000000"
        "18ffe0000000000006fffa000000000000",
    ),
    "power_step_vals": (
        "00000000000249f01c00030d41c00030d3e70000c34fb800061a838000c35038"
        "001869ff8000c3501c00061a81c00061a7ee00030d3fe00030d400e00030d40e"
        "00030d3f38000c34ff8000c350001c00030d41c00030d3e000",
        "00000000000249f01de6512c544bee37cf5545f545f1517c545f02a2f8545f00"
        "179ea000",
    ),
    "extremes": (
        "8000000000000000f1fffffffffffffffef3fffffffffffffffbf2ffffffffff"
        "fffffe80f8fffffffffffffffef8800000000000000278800000000000000280",
        "8000000000000000c0fffffffffffffffffeffffffffffffffffa00000000000"
        "000027fffffffffffffffa0000000000000002fffffffffffffffea000000000"
        "00000040",
    ),
}


def _float_bits(f):
    return struct.unpack("<q", struct.pack("<d", f))[0]


def golden_columns():
    """The exact columns behind :data:`GOLDEN_VECTORS` (regenerable)."""
    cols = {}
    cols["fixed_interval_ts"] = [
        1_700_000_000_000_000_000 + i * 1_000_000_000 for i in range(48)
    ]
    rng = random.Random(4242)
    t = 1_600_000_000_000_000_000
    col = []
    for _ in range(48):
        col.append(t)
        t += 1_000_000_000 + (rng.randint(-500, 500) if rng.random() < 0.25 else 0)
    cols["jittered_ts"] = col
    rng = random.Random(99)
    v = 52_000
    col = []
    for _ in range(48):
        col.append(v)
        v += rng.randint(-3, 3)
    cols["temp_drift_vals"] = col
    specials = [
        float("nan"), float("inf"), float("-inf"), 0.0, -0.0, 5e-324, 1.5, -2.25,
    ]
    cols["ieee754_vals"] = [_float_bits(specials[i % 8]) for i in range(32)]
    rng = random.Random(7)
    v = 150_000
    col = []
    for _ in range(48):
        col.append(v)
        if rng.random() < 0.15:
            v = rng.choice([100_000, 150_000, 200_000])
    cols["power_step_vals"] = col
    cols["extremes"] = [I64_MIN, I64_MAX, I64_MIN, 0, I64_MAX, -1, 1, I64_MIN]
    return cols


class TestGoldenVectors:
    """Wire-format lock: encoder output must match the committed PR 8
    bytes exactly, and the committed bytes must decode to the columns."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_VECTORS))
    def test_encode_matches_golden(self, name):
        col = np.array(golden_columns()[name], dtype=np.int64)
        ts_hex, val_hex = GOLDEN_VECTORS[name]
        assert encode_timestamps(col).hex() == ts_hex, name
        assert encode_values(col).hex() == val_hex, name

    @pytest.mark.parametrize("name", sorted(GOLDEN_VECTORS))
    def test_golden_bytes_decode(self, name):
        col = golden_columns()[name]
        ts_hex, val_hex = GOLDEN_VECTORS[name]
        assert decode_timestamps(bytes.fromhex(ts_hex), len(col)).tolist() == col
        assert decode_values(bytes.fromhex(val_hex), len(col)).tolist() == col
