"""Property-based cross-backend equivalence.

The strongest form of the paper's swap-the-database claim: drive every
backend with the same randomly generated operation sequence and demand
identical query results everywhere.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.sid import SensorId
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryBackend
from repro.storage.node import StorageNode
from repro.storage.sqlite import SqliteBackend

_SIDS = [SensorId.from_codes([1, i]) for i in range(1, 5)]

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=0, max_value=3),  # sid index
            st.integers(min_value=0, max_value=200),  # timestamp
            st.integers(min_value=-(10**6), max_value=10**6),  # value
        ),
        st.tuples(
            st.just("delete_before"),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=200),
            st.just(0),
        ),
    ),
    max_size=60,
)


def _fresh_backends():
    return {
        "memory": MemoryBackend(),
        "sqlite": SqliteBackend(":memory:"),
        "cluster": StorageCluster(
            [StorageNode("a", flush_threshold=7), StorageNode("b", flush_threshold=7)],
            replication=2,
        ),
    }


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops, qlo=st.integers(0, 200), qhi=st.integers(0, 200))
    def test_identical_query_results(self, ops, qlo, qhi):
        backends = _fresh_backends()
        for op in ops:
            kind, sid_idx, t, v = op
            for backend in backends.values():
                if kind == "insert":
                    backend.insert(_SIDS[sid_idx], t, v)
                else:
                    backend.delete_before(_SIDS[sid_idx], t)
        lo, hi = min(qlo, qhi), max(qlo, qhi)
        reference = None
        for name, backend in backends.items():
            results = []
            for sid in _SIDS:
                ts, vals = backend.query(sid, lo, hi)
                results.append((ts.tolist(), vals.tolist()))
            if reference is None:
                reference = results
            else:
                assert results == reference, name
        backends["sqlite"].close()

    @settings(max_examples=30, deadline=None)
    @given(ops=_ops)
    def test_identical_sid_listings(self, ops):
        backends = _fresh_backends()
        for kind, sid_idx, t, v in ops:
            if kind != "insert":
                continue
            for backend in backends.values():
                backend.insert(_SIDS[sid_idx], t, v)
        listings = {name: b.sids() for name, b in backends.items()}
        assert listings["memory"] == listings["sqlite"] == listings["cluster"]
        backends["sqlite"].close()
