"""Tests for the simulated device servers and their wire protocols."""

import pytest

from repro.common.httpjson import http_json
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.devices import (
    BacnetDeviceServer,
    BmcServer,
    DeviceModel,
    RestDeviceServer,
    SnmpAgentServer,
    constant,
    noisy,
    ramp,
    sinusoid,
)
from repro.devices.bacnet_device import AnalogInput
from repro.devices.bmc import SdrRecord
from repro.devices.lineserver import LineClient


@pytest.fixture
def model():
    clock = SimClock(0)
    m = DeviceModel(clock=clock)
    m.add_channel("power", constant(250))
    m.add_channel("temp", constant(4500))
    m.clock = clock
    return m


def connect(server):
    client = LineClient("127.0.0.1", server.port)
    client.connect()
    return client


class TestDeviceModel:
    def test_read_channel(self, model):
        assert model.read("power") == 250

    def test_unknown_channel(self, model):
        assert model.read("nope") is None

    def test_channels_listing(self, model):
        assert model.channels() == ["power", "temp"]

    def test_read_counts(self, model):
        model.read("power")
        model.read("power")
        assert model.reads == 2

    def test_read_at_explicit_time(self):
        m = DeviceModel()
        m.add_channel("r", ramp(0.0, 10.0))
        assert m.read_at("r", 5 * NS_PER_SEC) == 50


class TestChannelGenerators:
    def test_constant(self):
        assert constant(7)(123456) == 7

    def test_ramp(self):
        ch = ramp(100.0, 2.0, scale=10.0)
        assert ch(0) == 1000
        assert ch(5 * NS_PER_SEC) == 1100

    def test_sinusoid_bounds(self):
        ch = sinusoid(50.0, 10.0, period_s=60.0)
        values = [ch(t * NS_PER_SEC) for t in range(120)]
        assert min(values) >= 40 and max(values) <= 60

    def test_noisy_reproducible_per_timestamp(self):
        ch = noisy(constant(100), sigma=5.0, seed=1)
        assert ch(10**9) == ch(10**9)

    def test_noisy_varies_over_time(self):
        ch = noisy(constant(100), sigma=5.0, seed=1)
        values = {ch(t * NS_PER_SEC) for t in range(20)}
        assert len(values) > 1


class TestBmcServer:
    def test_get_sensor(self, model):
        with BmcServer(model) as bmc:
            bmc.add_record(SdrRecord(1, "power", "power", "W"))
            client = connect(bmc)
            assert client.request("GET SENSOR 1") == ["READING 1 250"]
            client.close()

    def test_list_sdr(self, model):
        with BmcServer(model) as bmc:
            bmc.add_record(SdrRecord(2, "temp", "temperature", "mC"))
            bmc.add_record(SdrRecord(1, "power", "power", "W"))
            client = connect(bmc)
            lines = client.request("LIST SDR")
            assert lines == ["SDR 1 power power W", "SDR 2 temp temperature mC"]
            client.close()

    def test_unknown_record_error(self, model):
        with BmcServer(model) as bmc:
            client = connect(bmc)
            with pytest.raises(ValueError, match="no SDR"):
                client.request("GET SENSOR 99")
            client.close()

    def test_unknown_command_error(self, model):
        with BmcServer(model) as bmc:
            client = connect(bmc)
            with pytest.raises(ValueError):
                client.request("FROB 1")
            client.close()

    def test_record_requires_channel(self, model):
        bmc = BmcServer(model)
        with pytest.raises(ValueError, match="no channel"):
            bmc.add_record(SdrRecord(1, "missing", "power", "W"))

    def test_sel_info(self, model):
        with BmcServer(model) as bmc:
            bmc.log_event()
            bmc.log_event()
            client = connect(bmc)
            assert client.request("GET SEL INFO") == ["SEL 2"]
            client.close()


class TestSnmpAgent:
    def test_get(self, model):
        with SnmpAgentServer(model) as agent:
            agent.bind_oid("1.3.6.1.4.1.42.1.1", "power")
            client = connect(agent)
            assert client.request("GET 1.3.6.1.4.1.42.1.1") == [
                "1.3.6.1.4.1.42.1.1 = INTEGER: 250"
            ]
            client.close()

    def test_walk_subtree(self, model):
        with SnmpAgentServer(model) as agent:
            agent.bind_oid("1.3.6.1.4.1.42.1.2", "temp")
            agent.bind_oid("1.3.6.1.4.1.42.1.10", "power")
            agent.bind_oid("1.3.6.1.4.1.99.1", "power")
            client = connect(agent)
            lines = client.request("WALK 1.3.6.1.4.1.42")
            # Numeric OID ordering: .2 before .10.
            assert [line.split(" ")[0] for line in lines] == [
                "1.3.6.1.4.1.42.1.2",
                "1.3.6.1.4.1.42.1.10",
            ]
            client.close()

    def test_missing_oid_error(self, model):
        with SnmpAgentServer(model) as agent:
            client = connect(agent)
            with pytest.raises(ValueError, match="noSuchObject"):
                client.request("GET 1.2.3")
            client.close()

    def test_malformed_oid_rejected_at_bind(self, model):
        agent = SnmpAgentServer(model)
        with pytest.raises(ValueError):
            agent.bind_oid("1.x.3", "power")


class TestBacnetDevice:
    def test_present_value(self, model):
        with BacnetDeviceServer(model) as device:
            device.add_object(AnalogInput(1, "temp", "C"))
            client = connect(device)
            assert client.request("READPROP AI 1 PRESENT_VALUE") == [
                "AI 1 PRESENT_VALUE 4500"
            ]
            client.close()

    def test_other_properties(self, model):
        with BacnetDeviceServer(model) as device:
            device.add_object(AnalogInput(1, "temp", "C"))
            client = connect(device)
            assert client.request("READPROP AI 1 UNITS") == ["AI 1 UNITS C"]
            assert client.request("READPROP AI 1 OBJECT_NAME") == [
                "AI 1 OBJECT_NAME temp"
            ]
            client.close()

    def test_list_objects(self, model):
        with BacnetDeviceServer(model) as device:
            device.add_object(AnalogInput(2, "power", "W"))
            device.add_object(AnalogInput(1, "temp", "C"))
            client = connect(device)
            assert client.request("LIST AI") == ["AI 1 temp", "AI 2 power"]
            client.close()

    def test_unknown_object(self, model):
        with BacnetDeviceServer(model) as device:
            client = connect(device)
            with pytest.raises(ValueError, match="unknown object"):
                client.request("READPROP AI 9 PRESENT_VALUE")
            client.close()


class TestRestDevice:
    def test_all_sensors(self, model):
        with RestDeviceServer(model) as device:
            status, body = http_json(
                "GET", f"http://127.0.0.1:{device.port}/sensors"
            )
            assert status == 200
            assert body == {"power": 250, "temp": 4500}

    def test_single_sensor(self, model):
        with RestDeviceServer(model) as device:
            status, body = http_json(
                "GET", f"http://127.0.0.1:{device.port}/sensors/power"
            )
            assert body == {"name": "power", "value": 250}

    def test_unknown_sensor_404(self, model):
        with RestDeviceServer(model) as device:
            status, _ = http_json(
                "GET", f"http://127.0.0.1:{device.port}/sensors/ghost"
            )
            assert status == 404


class TestLineServerRobustness:
    def test_concurrent_clients(self, model):
        with BmcServer(model) as bmc:
            bmc.add_record(SdrRecord(1, "power", "power", "W"))
            clients = [connect(bmc) for _ in range(5)]
            for client in clients:
                assert client.request("GET SENSOR 1") == ["READING 1 250"]
            for client in clients:
                client.close()

    def test_requests_served_counter(self, model):
        with BmcServer(model) as bmc:
            bmc.add_record(SdrRecord(1, "power", "power", "W"))
            client = connect(bmc)
            client.request("GET SENSOR 1")
            client.request("GET SENSOR 1")
            assert bmc.requests_served == 2
            client.close()
