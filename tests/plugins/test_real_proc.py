"""Production-path validation: the in-band plugins against the live
kernel interfaces of this machine (Linux only).

Everything else in the suite uses synthetic file trees; these tests
prove the same plugins work unmodified on a real ``/proc``, which is
exactly how the paper's production configurations deploy them.
"""

import os
import sys

import pytest

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub

pytestmark = pytest.mark.skipif(
    sys.platform != "linux" or not os.path.exists("/proc/meminfo"),
    reason="requires a live Linux /proc",
)


def make_pusher():
    hub = InProcHub(allow_subscribe=False)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/live/host"),
        client=InProcClient("p", hub),
        clock=SimClock(0),
    )
    pusher.client.connect()
    return pusher, hub


class TestLiveProc:
    def test_meminfo(self):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "procfs",
            "group mem { interval 1000\n type meminfo\n"
            " sensor MemTotal { mqttsuffix /memtotal\n unit KiB } }",
        )
        pusher.start_plugin("procfs")
        pusher.advance_to(NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/live/host/memtotal")
        # A real machine has more than 64 MiB and less than 1 PiB.
        assert 65536 < sensor.cache.latest().value < 2**40

    def test_meminfo_auto_discovery_finds_standard_keys(self):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "procfs", "group mem { interval 1000\n type meminfo }"
        )
        names = {s.name for s in plugin.all_sensors()}
        assert {"MemTotal", "MemFree"} <= names

    def test_procstat_cpu_counters(self):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "procfs",
            "group st { interval 1000\n type procstat\n"
            " sensor cpu_user { delta false } }",
        )
        pusher.start_plugin("procfs")
        pusher.advance_to(NS_PER_SEC)
        sensor = pusher.plugins["procfs"].groups[0].sensors[0]
        assert sensor.cache.latest().value > 0

    def test_vmstat_deltas_over_real_activity(self):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "procfs",
            "group vm { interval 1000\n type vmstat\n sensor pgfault { } }",
        )
        pusher.start_plugin("procfs")
        pusher.advance_to(NS_PER_SEC)  # seeds the delta
        # Touch some memory so the fault counter moves.
        _scratch = bytearray(8 * 1024 * 1024)
        pusher.advance_to(2 * NS_PER_SEC)
        sensor = pusher.plugins["procfs"].groups[0].sensors[0]
        reading = sensor.cache.latest()
        assert reading is not None
        assert reading.value >= 0

    def test_full_production_style_cycle(self):
        """meminfo + vmstat + procstat groups in one plugin, one cycle."""
        pusher, hub = make_pusher()
        plugin = pusher.load_plugin(
            "procfs",
            "group mem { interval 1000\n type meminfo }\n"
            "group vm  { interval 1000\n type vmstat }\n"
            "group st  { interval 1000\n type procstat }",
        )
        assert plugin.sensor_count > 20  # a real kernel exposes plenty
        pusher.start_plugin("procfs")
        pusher.advance_to(2 * NS_PER_SEC)
        assert all(g.read_errors == 0 for g in plugin.groups)
        assert pusher.readings_collected > 0
