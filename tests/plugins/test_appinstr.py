"""Tests for the application-instrumentation plugin."""

import threading

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.plugins.appinstr import Counter, Gauge, InstrumentRegistry


@pytest.fixture
def registry():
    reg = InstrumentRegistry.named("testreg")
    reg.clear()
    return reg


def make_pusher():
    hub = InProcHub(allow_subscribe=False)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/app/job42"),
        client=InProcClient("p", hub),
        clock=SimClock(0),
    )
    pusher.client.connect()
    return pusher, hub


class TestInstruments:
    def test_counter_increments(self, registry):
        counter = registry.counter("iters")
        counter.inc()
        counter.inc(5)
        assert counter.read() == 6

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_scaling(self, registry):
        gauge = registry.gauge("residual", scale=1000.0)
        gauge.set(0.125)
        assert gauge.read() == 125

    def test_idempotent_creation(self, registry):
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(ConfigError, match="exists as a counter"):
            registry.gauge("x")

    def test_thread_safe_increments(self, registry):
        counter = registry.counter("parallel")

        def worker():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.read() == 80_000

    def test_named_registries_isolated(self):
        a = InstrumentRegistry.named("iso_a")
        b = InstrumentRegistry.named("iso_b")
        a.counter("only_in_a")
        assert b.get("only_in_a") is None


class TestAppInstrPlugin:
    def test_export_all_mode_picks_up_new_instruments(self, registry):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "appinstr", "group app { interval 1000\n registry testreg }"
        )
        pusher.start_plugin("appinstr")
        registry.counter("iters").inc(100)
        pusher.advance_to(NS_PER_SEC)
        # New instrument registered mid-run is discovered next cycle.
        registry.gauge("residual", scale=100.0).set(0.5)
        pusher.advance_to(2 * NS_PER_SEC)
        group = pusher.plugins["appinstr"].groups[0]
        assert {s.instrument_name for s in group.sensors} == {"iters", "residual"}

    def test_counters_publish_deltas(self, registry):
        counter = registry.counter("events")
        pusher, hub = make_pusher()
        pusher.load_plugin(
            "appinstr", "group app { interval 1000\n registry testreg }"
        )
        pusher.start_plugin("appinstr")
        counter.inc(10)
        pusher.advance_to(NS_PER_SEC)  # seeds the delta
        counter.inc(25)
        pusher.advance_to(2 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/app/job42/app/events")
        assert sensor.cache.latest().value == 25

    def test_gauges_publish_raw(self, registry):
        gauge = registry.gauge("load", scale=1.0)
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "appinstr", "group app { interval 1000\n registry testreg }"
        )
        pusher.start_plugin("appinstr")
        gauge.set(7)
        pusher.advance_to(NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/app/job42/app/load")
        assert sensor.cache.latest().value == 7

    def test_explicit_sensor_selection(self, registry):
        registry.counter("wanted")
        registry.counter("unwanted")
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "appinstr",
            """
            group app {
                interval 1000
                registry testreg
                sensor wanted { instrument wanted
                                mqttsuffix /wanted
                                delta true }
            }
            """,
        )
        assert plugin.sensor_count == 1
        pusher.start_plugin("appinstr")
        pusher.advance_to(2 * NS_PER_SEC)
        assert plugin.groups[0].read_errors == 0

    def test_missing_explicit_instrument_is_runtime_error(self, registry):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "appinstr",
            """
            group app {
                interval 1000
                registry testreg
                sensor ghost { instrument never_created }
            }
            """,
        )
        pusher.start_plugin("appinstr")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["appinstr"].groups[0].read_errors == 1

    def test_end_to_end_application_loop(self, registry):
        """An 'application' instruments itself; data lands in storage."""
        from repro.core.collectagent import CollectAgent
        from repro.libdcdb.api import DCDBClient
        from repro.storage import MemoryBackend

        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub)
        clock = SimClock(0)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/app/job43"),
            client=InProcClient("p", hub),
            clock=clock,
        )
        pusher.load_plugin(
            "appinstr", "group solver { interval 1000\n registry testreg }"
        )
        pusher.client.connect()
        pusher.start_plugin("appinstr")
        iters = registry.counter("iterations")
        residual = registry.gauge("residual", scale=1e6)
        # Simulated solver: 50 iterations/s, residual shrinking.
        for second in range(1, 11):
            iters.inc(50)
            residual.set(1.0 / second)
            pusher.advance_to(second * NS_PER_SEC)
        dcdb = DCDBClient(backend)
        ts, deltas = dcdb.query("/app/job43/solver/iterations", 0, 20 * NS_PER_SEC)
        assert deltas.tolist() == [50.0] * (ts.size)
        r_ts, r_vals = dcdb.query_raw("/app/job43/solver/residual", 0, 20 * NS_PER_SEC)
        assert r_vals[0] > r_vals[-1]  # converging
