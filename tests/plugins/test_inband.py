"""Tests for the in-band plugins: tester, procfs, sysfs, perfevents, gpfs, opa."""

import os

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.plugins.perfevents import SyntheticPerfSource, parse_cpu_list
from repro.plugins.procfs import parse_meminfo, parse_procstat, parse_vmstat

MEMINFO = """\
MemTotal:       96471880 kB
MemFree:        41108028 kB
MemAvailable:   90108028 kB
Cached:          1001100 kB
"""

VMSTAT = """\
nr_free_pages 10277007
pgfault 190981551
pswpin 0
"""

PROCSTAT = """\
cpu  1000 10 500 80000 200 0 50 0 0 0
cpu0 500 5 250 40000 100 0 25 0 0 0
cpu1 500 5 250 40000 100 0 25 0 0 0
intr 123456789 0 0
ctxt 987654
processes 4242
procs_running 3
procs_blocked 0
"""

GPFS_STATS = "_n_ 10.1.1.1 _fs_ work _br_ 1048576 _bw_ 2097152 _oc_ 12 _cc_ 10 _rdc_ 100 _wc_ 200\n"


def make_pusher(prefix="/ib/h0"):
    hub = InProcHub(allow_subscribe=False)
    clock = SimClock(0)
    pusher = Pusher(
        PusherConfig(mqtt_prefix=prefix), client=InProcClient("p", hub), clock=clock
    )
    pusher.client.connect()
    return pusher, hub


class TestTesterPlugin:
    def test_counter_generator(self):
        pusher, hub = make_pusher()
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 2 }")
        pusher.start_plugin("tester")
        pusher.advance_to(3 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/ib/h0/g/s0")
        values = [r.value for r in sensor.cache.snapshot()]
        assert values == [0, 1, 2]

    def test_constant_generator(self):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "tester",
            "group g { interval 1000\n numSensors 1\n generator constant\n startValue 7 }",
        )
        pusher.start_plugin("tester")
        pusher.advance_to(2 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/ib/h0/g/s0")
        assert [r.value for r in sensor.cache.snapshot()] == [7, 7]

    def test_sawtooth_generator(self):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "tester", "group g { interval 1000\n numSensors 1\n generator sawtooth }"
        )
        pusher.start_plugin("tester")
        pusher.advance_to(3 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/ib/h0/g/s0")
        assert [r.value for r in sensor.cache.snapshot()] == [0, 1, 2]

    def test_invalid_generator_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError):
            pusher.load_plugin("tester", "group g { numSensors 1\n generator random }")

    def test_zero_sensors_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="no sensors"):
            pusher.load_plugin("tester", "group g { interval 1000 }")


class TestProcfsParsers:
    def test_meminfo(self):
        values = parse_meminfo(MEMINFO)
        assert values["MemTotal"] == 96471880
        assert values["Cached"] == 1001100

    def test_vmstat(self):
        values = parse_vmstat(VMSTAT)
        assert values["pgfault"] == 190981551

    def test_procstat_flattens_cpus(self):
        values = parse_procstat(PROCSTAT)
        assert values["cpu0_user"] == 500
        assert values["cpu1_idle"] == 40000
        assert values["cpu_system"] == 500
        assert values["ctxt"] == 987654
        assert values["intr"] == 123456789

    def test_garbage_tolerated(self):
        assert parse_meminfo("not a meminfo\n:::\n") == {}
        assert parse_vmstat("one\ntwo three four\n") == {}


class TestProcfsPlugin:
    @pytest.fixture
    def proc_dir(self, tmp_path):
        (tmp_path / "meminfo").write_text(MEMINFO)
        (tmp_path / "vmstat").write_text(VMSTAT)
        (tmp_path / "stat").write_text(PROCSTAT)
        return tmp_path

    def test_explicit_sensors(self, proc_dir):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "procfs",
            f"group mem {{ interval 1000\n type meminfo\n path {proc_dir}/meminfo\n"
            "sensor MemFree { mqttsuffix /memfree } }",
        )
        pusher.start_plugin("procfs")
        pusher.advance_to(NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/ib/h0/memfree")
        assert sensor.cache.latest().value == 41108028

    def test_auto_discovery(self, proc_dir):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "procfs",
            f"group mem {{ interval 1000\n type meminfo\n path {proc_dir}/meminfo }}",
        )
        assert plugin.sensor_count == 4  # every meminfo key

    def test_vmstat_counters_are_delta(self, proc_dir):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "procfs",
            f"group vm {{ interval 1000\n type vmstat\n path {proc_dir}/vmstat }}",
        )
        assert all(s.metadata.delta for s in plugin.all_sensors())
        pusher.start_plugin("procfs")
        pusher.advance_to(NS_PER_SEC)
        # First delta cycle emits nothing.
        assert pusher.readings_collected == 0
        pusher.advance_to(2 * NS_PER_SEC)
        assert pusher.readings_collected == 3

    def test_procstat_metrics(self, proc_dir):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "procfs",
            f"group st {{ interval 1000\n type procstat\n path {proc_dir}/stat\n"
            "sensor cpu0_user { mqttsuffix /cpu0/user\n delta false } }",
        )
        pusher.start_plugin("procfs")
        pusher.advance_to(2 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/ib/h0/cpu0/user")
        assert sensor.cache.latest().value == 500

    def test_missing_metric_counted_as_error(self, proc_dir):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "procfs",
            f"group mem {{ interval 1000\n type meminfo\n path {proc_dir}/meminfo\n"
            "sensor NotAMetric { } }",
        )
        pusher.start_plugin("procfs")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["procfs"].groups[0].read_errors == 1

    def test_missing_file_counted_as_error(self, tmp_path):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "procfs",
            f"group mem {{ interval 1000\n type meminfo\n path {tmp_path}/nope\n"
            "sensor MemFree { } }",
        )
        pusher.start_plugin("procfs")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["procfs"].groups[0].read_errors == 1

    def test_unknown_type_rejected(self, proc_dir):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="unknown type"):
            pusher.load_plugin(
                "procfs",
                f"group x {{ type slabinfo\n path {proc_dir}/meminfo\n sensor a {{ }} }}",
            )


class TestSysfsPlugin:
    def test_reads_value_files(self, tmp_path):
        (tmp_path / "temp1_input").write_text("45000\n")
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "sysfs",
            f"group t {{ interval 1000\n sensor pkg0 {{ path {tmp_path}/temp1_input\n"
            "mqttsuffix /t/pkg0\n unit mC } }",
        )
        pusher.start_plugin("sysfs")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.sensor_by_topic("/ib/h0/t/pkg0").cache.latest().value == 45000

    def test_filter_regex(self, tmp_path):
        (tmp_path / "status").write_text("power: 215 W\n")
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "sysfs",
            f'group p {{ interval 1000\n sensor pw {{ path {tmp_path}/status\n'
            f'filter "power: (\\d+)"\n mqttsuffix /p }} }}',
        )
        pusher.start_plugin("sysfs")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.sensor_by_topic("/ib/h0/p").cache.latest().value == 215

    def test_filter_no_match_is_error(self, tmp_path):
        (tmp_path / "status").write_text("no numbers here\n")
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "sysfs",
            f'group p {{ interval 1000\n sensor pw {{ path {tmp_path}/status\n'
            f'filter "(\\d+)"\n }} }}',
        )
        pusher.start_plugin("sysfs")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["sysfs"].groups[0].read_errors == 1

    def test_missing_path_config_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="needs a path"):
            pusher.load_plugin("sysfs", "group t { sensor a { } }")

    def test_float_content_truncated(self, tmp_path):
        (tmp_path / "v").write_text("3.9\n")
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "sysfs", f"group g {{ interval 1000\n sensor v {{ path {tmp_path}/v }} }}"
        )
        pusher.start_plugin("sysfs")
        pusher.advance_to(NS_PER_SEC)
        sensor = pusher.plugins["sysfs"].groups[0].sensors[0]
        assert sensor.cache.latest().value == 3


class TestPerfeventsPlugin:
    def test_cpu_list_parsing(self):
        assert parse_cpu_list("0-3,8,12-13") == [0, 1, 2, 3, 8, 12, 13]
        assert parse_cpu_list("5") == [5]

    @pytest.mark.parametrize("bad", ["", "a-b", "3-1", "x"])
    def test_bad_cpu_lists(self, bad):
        with pytest.raises(ConfigError):
            parse_cpu_list(bad)

    def test_per_cpu_sensors_generated(self):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "perfevents",
            "group instr { interval 1000\n counter instructions\n cpus 0-3 }",
        )
        assert plugin.sensor_count == 4
        assert all(s.metadata.delta for s in plugin.all_sensors())

    def test_counters_published_as_deltas(self):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "perfevents",
            "group instr { interval 1000\n counter instructions\n cpus 0 }",
        )
        pusher.start_plugin("perfevents")
        pusher.advance_to(3 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/ib/h0/cpu0/instructions")
        values = [r.value for r in sensor.cache.snapshot()]
        # Rate-constant source -> equal per-second deltas.
        assert len(values) == 2
        assert values[0] == pytest.approx(values[1], rel=0.01)

    def test_synthetic_source_rates(self):
        source = SyntheticPerfSource(rates={"instructions": 1e9})
        assert source.read(0, "instructions", NS_PER_SEC) == pytest.approx(1e9)
        assert source.read(0, "instructions", 2 * NS_PER_SEC) == pytest.approx(2e9)

    def test_cpu_skew(self):
        source = SyntheticPerfSource(rates={"cycles": 1e9}, cpu_skew=0.1)
        assert source.read(1, "cycles", NS_PER_SEC) > source.read(0, "cycles", NS_PER_SEC)

    def test_rate_fn_integration(self):
        # A time-varying rate function is integrated piecewise.
        source = SyntheticPerfSource(rate_fn=lambda cpu, ev, t: 100.0 if t < NS_PER_SEC else 200.0)
        assert source.read(0, "instructions", NS_PER_SEC) == 100
        assert source.read(0, "instructions", 2 * NS_PER_SEC) == 300

    def test_missing_counter_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="needs a counter"):
            pusher.load_plugin("perfevents", "group g { cpus 0 }")


class TestGpfsPlugin:
    def test_parses_mmpmon_fields(self, tmp_path):
        (tmp_path / "stats").write_text(GPFS_STATS)
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "gpfs", f"group io {{ interval 1000\n path {tmp_path}/stats }}"
        )
        assert plugin.sensor_count == 6
        pusher.start_plugin("gpfs")
        pusher.advance_to(2 * NS_PER_SEC)  # deltas: first cycle seeds
        # Static file -> all deltas zero but emitted.
        sensor = pusher.sensor_by_topic("/ib/h0/io/bytes_read")
        assert sensor.cache.latest().value == 0

    def test_selected_field(self, tmp_path):
        (tmp_path / "stats").write_text(GPFS_STATS)
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "gpfs",
            f"group io {{ interval 1000\n path {tmp_path}/stats\n"
            "sensor br { field _br_\n mqttsuffix /br } }",
        )
        assert plugin.sensor_count == 1

    def test_unknown_field_rejected(self, tmp_path):
        (tmp_path / "stats").write_text(GPFS_STATS)
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="unknown field"):
            pusher.load_plugin(
                "gpfs",
                f"group io {{ path {tmp_path}/stats\n sensor x {{ field _xx_ }} }}",
            )

    def test_missing_path_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="needs a path"):
            pusher.load_plugin("gpfs", "group io { interval 1000 }")


class TestOpaPlugin:
    @pytest.fixture
    def fabric_dir(self, tmp_path):
        counters = tmp_path / "hfi1_0" / "ports" / "1" / "counters"
        os.makedirs(counters)
        for name, value in (
            ("port_xmit_data", 1000),
            ("port_rcv_data", 2000),
            ("port_xmit_pkts", 30),
            ("port_rcv_pkts", 40),
        ):
            (counters / name).write_text(f"{value}\n")
        return tmp_path

    def test_counters_sampled(self, fabric_dir):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "opa", f"group net {{ interval 1000\n root {fabric_dir} }}"
        )
        assert plugin.sensor_count == 4
        pusher.start_plugin("opa")
        pusher.advance_to(2 * NS_PER_SEC)
        sensor = pusher.sensor_by_topic("/ib/h0/hfi1_0/port1/port_xmit_data")
        assert sensor.cache.latest().value == 0  # static counters

    def test_counter_subset(self, fabric_dir):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "opa",
            f"group net {{ interval 1000\n root {fabric_dir}\n"
            "counters port_xmit_data,port_rcv_data }",
        )
        assert plugin.sensor_count == 2

    def test_unknown_counter_rejected(self, fabric_dir):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="unknown counter"):
            pusher.load_plugin(
                "opa",
                f"group net {{ root {fabric_dir}\n counters port_bogus }}",
            )

    def test_missing_tree_is_runtime_error(self, tmp_path):
        pusher, _ = make_pusher()
        pusher.load_plugin("opa", f"group net {{ interval 1000\n root {tmp_path} }}")
        pusher.start_plugin("opa")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["opa"].groups[0].read_errors == 1
