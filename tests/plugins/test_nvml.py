"""Tests for the NVML (GPU) plugin."""

import pytest

from repro.common.errors import ConfigError, PluginError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.plugins.nvml import METRICS, SyntheticNvmlSource


def make_pusher():
    hub = InProcHub(allow_subscribe=False)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/gpu/h0"),
        client=InProcClient("p", hub),
        clock=SimClock(0),
    )
    pusher.client.connect()
    return pusher, hub


class TestSyntheticSource:
    def test_busy_and_idle_points_reached(self):
        source = SyntheticNvmlSource(gpus=1, period_s=100.0, duty=0.5)
        samples = [
            source.read(0, "utilization", t * NS_PER_SEC) for t in range(0, 100, 5)
        ]
        assert max(samples) > 90
        assert min(samples) < 10

    def test_power_between_operating_points(self):
        source = SyntheticNvmlSource(gpus=2)
        for t in range(0, 240, 10):
            value = source.read(1, "power", t * NS_PER_SEC)
            assert SyntheticNvmlSource.IDLE["power"] <= value <= SyntheticNvmlSource.BUSY["power"]

    def test_gpus_phase_shifted(self):
        source = SyntheticNvmlSource(gpus=4, period_s=120.0)
        t = 10 * NS_PER_SEC
        values = {source.read(g, "utilization", t) for g in range(4)}
        assert len(values) > 1  # not all GPUs in the same phase

    def test_unknown_gpu_raises(self):
        source = SyntheticNvmlSource(gpus=2)
        with pytest.raises(PluginError):
            source.read(5, "power", 0)

    def test_unknown_metric_raises(self):
        source = SyntheticNvmlSource(gpus=1)
        with pytest.raises(PluginError):
            source.read(0, "fan_speed", 0)

    def test_deterministic(self):
        a = SyntheticNvmlSource(gpus=1).read(0, "temperature", 42 * NS_PER_SEC)
        b = SyntheticNvmlSource(gpus=1).read(0, "temperature", 42 * NS_PER_SEC)
        assert a == b


class TestNvmlPlugin:
    def test_sensor_fanout_all_metrics(self):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin("nvml", "group gpus { interval 1000\n gpus 0-3 }")
        assert plugin.sensor_count == 4 * len(METRICS)

    def test_metric_subset(self):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "nvml",
            "group gpus { interval 1000\n gpus 0-1\n metrics power,utilization }",
        )
        assert plugin.sensor_count == 4

    def test_collection_and_topics(self):
        pusher, hub = make_pusher()
        topics = []
        hub.add_publish_hook(lambda cid, p: topics.append(p.topic))
        pusher.load_plugin(
            "nvml", "group gpus { interval 1000\n gpus 0\n metrics power }"
        )
        pusher.start_plugin("nvml")
        pusher.advance_to(2 * NS_PER_SEC)
        assert topics == ["/gpu/h0/gpu0/power"] * 2
        sensor = pusher.sensor_by_topic("/gpu/h0/gpu0/power")
        assert sensor.metadata.unit == "mW"
        assert sensor.cache.latest().value >= SyntheticNvmlSource.IDLE["power"]

    def test_default_gpus_from_device_count(self):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "nvml", "group gpus { interval 1000\n metrics temperature }"
        )
        assert plugin.sensor_count == SyntheticNvmlSource().device_count()

    def test_gpu_beyond_count_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="beyond device count"):
            pusher.load_plugin("nvml", "group gpus { gpus 0-15 }")

    def test_unknown_metric_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="unknown metric"):
            pusher.load_plugin("nvml", "group gpus { gpus 0\n metrics hashrate }")

    def test_source_factory_swap(self):
        from repro.plugins.nvml import NvmlConfigurator

        class OneHotGpu:
            def device_count(self):
                return 1

            def read(self, gpu, metric, t_ns):
                return 12345

        old = NvmlConfigurator.source_factory
        NvmlConfigurator.source_factory = OneHotGpu
        try:
            pusher, _ = make_pusher()
            pusher.load_plugin(
                "nvml", "group gpus { interval 1000\n gpus 0\n metrics power }"
            )
            pusher.start_plugin("nvml")
            pusher.advance_to(NS_PER_SEC)
            sensor = pusher.plugins["nvml"].groups[0].sensors[0]
            assert sensor.cache.latest().value == 12345
        finally:
            NvmlConfigurator.source_factory = old
