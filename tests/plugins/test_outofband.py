"""Tests for the out-of-band plugins against simulated devices."""

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.devices import (
    BacnetDeviceServer,
    BmcServer,
    DeviceModel,
    RestDeviceServer,
    SnmpAgentServer,
    constant,
)
from repro.devices.bacnet_device import AnalogInput
from repro.devices.bmc import SdrRecord
from repro.mqtt.inproc import InProcClient, InProcHub


@pytest.fixture
def model():
    m = DeviceModel(clock=SimClock(NS_PER_SEC))
    m.add_channel("node_power", constant(320))
    m.add_channel("cpu_temp", constant(6150))
    m.add_channel("heat_out", constant(29_500))
    return m


def make_pusher():
    hub = InProcHub(allow_subscribe=False)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/oob/h0"),
        client=InProcClient("p", hub),
        clock=SimClock(0),
    )
    pusher.client.connect()
    return pusher, hub


class TestIpmiPlugin:
    @pytest.fixture
    def bmc(self, model):
        with BmcServer(model) as server:
            server.add_record(SdrRecord(12, "node_power", "power", "W"))
            server.add_record(SdrRecord(13, "cpu_temp", "temperature", "mC"))
            yield server

    def test_reads_sdr_records(self, bmc):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "ipmi",
            f"""
            host bmc0 {{ addr 127.0.0.1:{bmc.port} }}
            group power {{
                entity bmc0
                interval 1000
                sensor pw {{ record 12  mqttsuffix /power  unit W }}
                sensor tt {{ record 13  mqttsuffix /temp   unit mC }}
            }}
            """,
        )
        pusher.start_plugin("ipmi")
        pusher.advance_to(2 * NS_PER_SEC)
        assert pusher.sensor_by_topic("/oob/h0/power").cache.latest().value == 320
        assert pusher.sensor_by_topic("/oob/h0/temp").cache.latest().value == 6150
        pusher.stop_plugin("ipmi")

    def test_groups_share_entity_connection(self, bmc):
        pusher, _ = make_pusher()
        plugin = pusher.load_plugin(
            "ipmi",
            f"""
            host bmc0 {{ addr 127.0.0.1:{bmc.port} }}
            group a {{ entity bmc0
                       interval 1000
                       sensor pw {{ record 12 }} }}
            group b {{ entity bmc0
                       interval 1000
                       sensor tt {{ record 13 }} }}
            """,
        )
        assert plugin.groups[0].entity is plugin.groups[1].entity
        assert len(plugin.entities) == 1

    def test_device_down_counts_errors_and_recovers_counting(self, model):
        # Point the plugin at a port where nothing listens.
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "ipmi",
            """
            host bmc0 { addr 127.0.0.1:1 }
            group g { entity bmc0
                      interval 1000
                      sensor pw { record 12 } }
            """,
        )
        with pytest.raises(OSError):
            pusher.start_plugin("ipmi")

    def test_device_dies_mid_run(self, model):
        server = BmcServer(model)
        server.start()
        server.add_record(SdrRecord(12, "node_power", "power", "W"))
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "ipmi",
            f"""
            host bmc0 {{ addr 127.0.0.1:{server.port} }}
            group g {{ entity bmc0
                       interval 1000
                       sensor pw {{ record 12 }} }}
            """,
        )
        pusher.start_plugin("ipmi")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.readings_collected == 1
        server.stop()
        pusher.advance_to(3 * NS_PER_SEC)
        # Sampling continued, errors counted, no crash.
        assert pusher.plugins["ipmi"].groups[0].read_errors >= 1

    def test_unknown_record_is_runtime_error(self, bmc):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "ipmi",
            f"""
            host bmc0 {{ addr 127.0.0.1:{bmc.port} }}
            group g {{ entity bmc0
                       interval 1000
                       sensor pw {{ record 999 }} }}
            """,
        )
        pusher.start_plugin("ipmi")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["ipmi"].groups[0].read_errors == 1
        pusher.stop_plugin("ipmi")

    def test_group_without_entity_rejected(self, bmc):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="requires an entity"):
            pusher.load_plugin(
                "ipmi", "group g { interval 1000\n sensor pw { record 1 } }"
            )

    def test_sensor_without_record_rejected(self, bmc):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="record"):
            pusher.load_plugin(
                "ipmi",
                f"""
                host bmc0 {{ addr 127.0.0.1:{bmc.port} }}
                group g {{ entity bmc0
                           sensor pw {{ }} }}
                """,
            )

    def test_bad_address_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="bad port"):
            pusher.load_plugin(
                "ipmi",
                "host b { addr 127.0.0.1:notaport }\n"
                "group g { entity b\n sensor s { record 1 } }",
            )


class TestSnmpPlugin:
    @pytest.fixture
    def agent(self, model):
        with SnmpAgentServer(model) as server:
            server.bind_oid("1.3.6.1.4.1.42.3.3", "node_power")
            yield server

    def test_polls_oids(self, agent):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "snmp",
            f"""
            connection pdu {{ addr 127.0.0.1:{agent.port}
                              community private }}
            group outlets {{ entity pdu
                             interval 1000
                             sensor pw {{ oid 1.3.6.1.4.1.42.3.3
                                          mqttsuffix /pdu/power }} }}
            """,
        )
        pusher.start_plugin("snmp")
        pusher.advance_to(2 * NS_PER_SEC)
        assert pusher.sensor_by_topic("/oob/h0/pdu/power").cache.latest().value == 320
        pusher.stop_plugin("snmp")

    def test_entity_walk(self, agent, model):
        from repro.plugins.snmp import SnmpConnectionEntity

        entity = SnmpConnectionEntity("pdu", "127.0.0.1", agent.port)
        entity.connect()
        results = entity.walk("1.3.6.1.4.1.42")
        assert results == [("1.3.6.1.4.1.42.3.3", 320)]
        entity.disconnect()

    def test_missing_oid_counted(self, agent):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "snmp",
            f"""
            connection pdu {{ addr 127.0.0.1:{agent.port} }}
            group g {{ entity pdu
                       interval 1000
                       sensor x {{ oid 9.9.9 }} }}
            """,
        )
        pusher.start_plugin("snmp")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["snmp"].groups[0].read_errors == 1
        pusher.stop_plugin("snmp")

    def test_sensor_without_oid_rejected(self, agent):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="oid"):
            pusher.load_plugin(
                "snmp",
                f"connection c {{ addr 127.0.0.1:{agent.port} }}\n"
                "group g { entity c\n sensor s { } }",
            )


class TestBacnetPlugin:
    @pytest.fixture
    def device(self, model):
        with BacnetDeviceServer(model) as server:
            server.add_object(AnalogInput(1, "cpu_temp", "mC"))
            yield server

    def test_reads_present_value(self, device):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "bacnet",
            f"""
            device ahu {{ addr 127.0.0.1:{device.port}
                          deviceId 120 }}
            group loop {{ entity ahu
                          interval 1000
                          sensor t {{ objectInstance 1
                                      mqttsuffix /inlet
                                      scale 100 }} }}
            """,
        )
        pusher.start_plugin("bacnet")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.sensor_by_topic("/oob/h0/inlet").cache.latest().value == 6150
        pusher.stop_plugin("bacnet")

    def test_missing_instance_rejected(self, device):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="objectInstance"):
            pusher.load_plugin(
                "bacnet",
                f"device d {{ addr 127.0.0.1:{device.port} }}\n"
                "group g { entity d\n sensor s { } }",
            )

    def test_unknown_object_is_runtime_error(self, device):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "bacnet",
            f"""
            device d {{ addr 127.0.0.1:{device.port} }}
            group g {{ entity d
                       interval 1000
                       sensor s {{ objectInstance 404 }} }}
            """,
        )
        pusher.start_plugin("bacnet")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["bacnet"].groups[0].read_errors == 1
        pusher.stop_plugin("bacnet")


class TestRestPlugin:
    @pytest.fixture
    def endpoint(self, model):
        with RestDeviceServer(model) as server:
            yield server

    def test_one_fetch_many_sensors(self, endpoint):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "rest",
            f"""
            endpoint cu {{ baseurl http://127.0.0.1:{endpoint.port} }}
            group circ {{ entity cu
                          interval 1000
                          sensor heat {{ field heat_out
                                         mqttsuffix /heat }}
                          sensor power {{ field node_power
                                          mqttsuffix /power }} }}
            """,
        )
        pusher.start_plugin("rest")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.sensor_by_topic("/oob/h0/heat").cache.latest().value == 29_500
        assert pusher.sensor_by_topic("/oob/h0/power").cache.latest().value == 320

    def test_field_defaults_to_sensor_name(self, endpoint):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "rest",
            f"""
            endpoint cu {{ baseurl http://127.0.0.1:{endpoint.port} }}
            group g {{ entity cu
                       interval 1000
                       sensor heat_out {{ }} }}
            """,
        )
        pusher.start_plugin("rest")
        pusher.advance_to(NS_PER_SEC)
        sensor = pusher.plugins["rest"].groups[0].sensors[0]
        assert sensor.cache.latest().value == 29_500

    def test_missing_field_is_runtime_error(self, endpoint):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "rest",
            f"""
            endpoint cu {{ baseurl http://127.0.0.1:{endpoint.port} }}
            group g {{ entity cu
                       interval 1000
                       sensor ghost {{ field not_a_field }} }}
            """,
        )
        pusher.start_plugin("rest")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["rest"].groups[0].read_errors == 1

    def test_endpoint_down_counts_errors(self):
        pusher, _ = make_pusher()
        pusher.load_plugin(
            "rest",
            """
            endpoint cu { baseurl http://127.0.0.1:1 }
            group g { entity cu
                      interval 1000
                      sensor s { field x } }
            """,
        )
        pusher.start_plugin("rest")
        pusher.advance_to(NS_PER_SEC)
        assert pusher.plugins["rest"].groups[0].read_errors == 1

    def test_missing_baseurl_rejected(self):
        pusher, _ = make_pusher()
        with pytest.raises(ConfigError, match="baseurl"):
            pusher.load_plugin(
                "rest", "endpoint e { }\ngroup g { entity e\n sensor s { } }"
            )
