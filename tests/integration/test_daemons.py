"""Tests for the daemon builders (dcdb-pusher / dcdb-collectagent configs)."""

import time

import pytest

from repro.common.errors import DCDBError
from repro.common.proptree import parse_info
from repro.mqtt.client import MQTTClient
from repro.tools.agentd import agent_from_config
from repro.tools.pusherd import pusher_from_config


class TestAgentFromConfig:
    def test_builds_with_defaults(self):
        agent, rest = agent_from_config(parse_info("global { mqttPort 0 }"))
        assert rest is None
        agent.start()
        assert agent.port > 0
        agent.stop()

    def test_rest_api_enabled(self):
        tree = parse_info("global { mqttPort 0\n restPort 0 }")
        agent, rest = agent_from_config(tree)
        # restPort 0 means disabled in our convention.
        assert rest is None

    def test_sqlite_backend_from_uri(self, tmp_path):
        tree = parse_info(
            f"global {{ mqttPort 0\n db sqlite:{tmp_path}/d.db }}"
        )
        agent, _ = agent_from_config(tree)
        from repro.storage.sqlite import SqliteBackend

        assert isinstance(agent.backend, SqliteBackend)
        agent.backend.close()


class TestPusherFromConfig:
    def test_inline_plugin_config(self):
        tree = parse_info(
            """
            global {
                mqttPrefix /d/n0
                brokerPort 0
                sendMode continuous
            }
            plugin tester {
                config {
                    group g0 { interval 1000
                               numSensors 4 }
                }
            }
            """
        )
        pusher, rest = pusher_from_config(tree)
        assert pusher.sensor_count == 4
        assert pusher.config.mqtt_prefix == "/d/n0"
        assert rest is None

    def test_plugin_config_file(self, tmp_path):
        plugin_conf = tmp_path / "tester.conf"
        plugin_conf.write_text("group g0 { interval 500\n numSensors 2 }\n")
        tree = parse_info(
            f"""
            global {{ mqttPrefix /d/n1 }}
            plugin tester {{ configFile {plugin_conf} }}
            """
        )
        pusher, _ = pusher_from_config(tree)
        assert pusher.sensor_count == 2
        assert pusher.plugins["tester"].groups[0].interval_ns == 500_000_000

    def test_plugin_without_config_rejected(self):
        tree = parse_info("plugin tester { }")
        with pytest.raises(DCDBError, match="neither config nor configFile"):
            pusher_from_config(tree)

    def test_aliased_plugins(self):
        tree = parse_info(
            """
            plugin tester {
                alias fast
                config { group g { interval 100
                                   numSensors 1 } }
            }
            plugin tester {
                alias slow
                config { group g { interval 10000
                                   numSensors 1 } }
            }
            """
        )
        pusher, _ = pusher_from_config(tree)
        assert set(pusher.plugins) == {"fast", "slow"}


class TestDaemonsTogether:
    def test_pusher_daemon_feeds_agent_daemon(self):
        agent, _ = agent_from_config(parse_info("global { mqttPort 0 }"))
        agent.start()
        try:
            tree = parse_info(
                f"""
                global {{
                    mqttPrefix /daemons/n0
                    brokerPort {agent.port}
                }}
                plugin tester {{
                    config {{ group g {{ interval 100
                                         numSensors 2 }} }}
                }}
                """
            )
            pusher, _ = pusher_from_config(tree)
            for alias in list(pusher.plugins):
                pusher.start_plugin(alias)
            pusher.start()
            try:
                deadline = time.monotonic() + 10.0
                while agent.readings_stored < 6 and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert agent.readings_stored >= 6
            finally:
                pusher.stop()
        finally:
            agent.stop()


class TestAgentWithAnalytics:
    def test_analytics_block_attaches_manager(self):
        from repro.common.timeutil import NS_PER_SEC
        from repro.core.payload import encode_reading
        from repro.mqtt.client import MQTTClient

        tree = parse_info(
            """
            global { mqttPort 0 }
            analytics {
                operator hot {
                    type  threshold
                    input /d/+/temp
                    high  80
                }
            }
            """
        )
        agent, _ = agent_from_config(tree)
        assert agent.analytics is not None
        agent.start()
        try:
            client = MQTTClient("p", port=agent.port)
            client.connect()
            client.publish(
                "/d/n0/temp", encode_reading(NS_PER_SEC, 95), qos=1, wait_ack=True
            )
            client.disconnect()
            assert len(agent.analytics.alarms) == 1
            # The derived alarm series landed in storage too.
            sid = agent.sid_mapper.lookup_topic("/analytics/hot/d_n0_temp_alarm")
            assert sid is not None
            ts, vals = agent.backend.query(sid, 0, 10 * NS_PER_SEC)
            assert vals.tolist() == [1]
        finally:
            agent.stop()

    def test_analytics_config_file(self, tmp_path):
        conf = tmp_path / "analytics.conf"
        conf.write_text("operator sm { type ema\n input /x/# }\n")
        tree = parse_info(
            f"global {{ mqttPort 0\n analyticsConfig {conf} }}"
        )
        agent, _ = agent_from_config(tree)
        assert [op.name for op in agent.analytics.operators()] == ["sm"]


class TestReferenceConfigs:
    """The shipped reference configs in examples/configs/ stay valid."""

    CONFIG_DIR = __file__.rsplit("/tests/", 1)[0] + "/examples/configs"

    @pytest.mark.skipif(
        not __import__("os").path.exists("/proc/meminfo"),
        reason="procfs auto-discovery needs a live /proc",
    )
    def test_pusher_production_conf_builds(self):
        with open(f"{self.CONFIG_DIR}/pusher_production.conf", encoding="utf-8") as f:
            tree = parse_info(f.read())
        pusher, rest = pusher_from_config(tree)
        # perfevents 2x8 + procfs auto-discovery + sysfs 1.
        assert pusher.sensor_count > 17
        assert pusher.config.threads == 2
        assert rest is not None
        assert {"perfevents", "procfs", "sysfs"} <= set(pusher.plugins)

    def test_agent_conf_builds_with_analytics(self):
        with open(f"{self.CONFIG_DIR}/agent.conf", encoding="utf-8") as f:
            text = f.read()
        # Avoid touching the working directory: swap the db for memory.
        text = text.replace("sqlite:monitor.db", "memory:")
        agent, rest = agent_from_config(parse_info(text))
        assert agent.analytics is not None
        names = {op.name for op in agent.analytics.operators()}
        assert names == {"rack0_power", "power_band", "temp_anomaly"}
