"""Smoke tests: every shipped example runs and prints its findings."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "readings stored:" in out
        assert "/virtual/node_power" in out
        assert "1960 W" in out

    def test_facility_monitoring(self):
        out = run_example("facility_monitoring.py")
        assert "heat-removal efficiency" in out
        assert "90" in out.split("heat-removal efficiency")[1]

    def test_application_characterization(self):
        out = run_example("application_characterization.py", timeout=300.0)
        assert "kripke" in out and "amg" in out
        # The paper's modality finding appears in the output.
        assert "single trend" in out
        assert "trends" in out

    def test_scalable_cluster(self):
        out = run_example("scalable_cluster.py")
        assert "subtree /cluster0 owned by sb-west" in out
        assert "subtree /cluster1 owned by sb-east" in out

    def test_online_analytics(self):
        out = run_example("online_analytics.py")
        assert "thermal anomalies flagged:" in out
        assert "power-band transitions" in out
