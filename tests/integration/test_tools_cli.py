"""Tests for the command-line tools, invoked through their main()."""

import io
import sys

import pytest

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage.sqlite import SqliteBackend
from repro.tools import config as config_tool
from repro.tools import csvimport as csvimport_tool
from repro.tools import query as query_tool
from repro.tools.common import open_backend, parse_time


@pytest.fixture
def db_uri(tmp_path):
    """An sqlite store populated through the real pipeline."""
    path = str(tmp_path / "monitor.db")
    backend = SqliteBackend(path)
    hub = InProcHub(allow_subscribe=False)
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/cli/n0"),
        client=InProcClient("p", hub),
        clock=SimClock(0),
    )
    pusher.load_plugin("tester", "group g { interval 1000\n numSensors 2 }")
    pusher.client.connect()
    pusher.start_plugin("tester")
    pusher.advance_to(10 * NS_PER_SEC)
    backend.flush()
    backend.close()
    return f"sqlite:{path}"


class TestCommon:
    def test_open_backend_sqlite(self, tmp_path):
        backend = open_backend(f"sqlite:{tmp_path}/x.db")
        backend.close()

    def test_open_backend_memory(self):
        open_backend("memory:")

    def test_open_backend_bad_scheme(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            open_backend("postgres:whatever")

    @pytest.mark.parametrize(
        "text,expected",
        [("5s", 5 * NS_PER_SEC), ("250ms", 250_000_000), ("7us", 7000), ("42ns", 42), ("1000", 1000)],
    )
    def test_parse_time(self, text, expected):
        assert parse_time(text) == expected

    def test_parse_time_bad(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            parse_time("tomorrow")


class TestQueryTool:
    def test_csv_rows(self, db_uri, capsys):
        rc = query_tool.main(
            ["--db", db_uri, "/cli/n0/g/s0", "--start", "0s", "--end", "60s"]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "sensor,time,value"
        assert len(lines) == 11

    def test_list_topics(self, db_uri, capsys):
        rc = query_tool.main(["--db", db_uri, "--list", "/cli"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "/cli/n0/g/s0" in out and "/cli/n0/g/s1" in out

    def test_summary_mode(self, db_uri, capsys):
        rc = query_tool.main(
            ["--db", db_uri, "/cli/n0/g/s0", "--end", "60s", "--summary"]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("sensor,count")
        assert lines[1].split(",")[1] == "10"

    def test_integral_mode(self, db_uri, capsys):
        rc = query_tool.main(
            ["--db", db_uri, "/cli/n0/g/s0", "--end", "60s", "--integral"]
        )
        assert rc == 0
        value = float(capsys.readouterr().out.strip().splitlines()[1].split(",")[1])
        # Counter 0..9 over 9s, trapezoid = 40.5.
        assert value == pytest.approx(40.5)

    def test_derivative_mode(self, db_uri, capsys):
        rc = query_tool.main(
            ["--db", db_uri, "/cli/n0/g/s0", "--end", "60s", "--derivative"]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        rates = [float(line.split(",")[2]) for line in lines]
        assert rates == pytest.approx([1.0] * 9)  # +1 per second

    def test_unknown_topic_errors(self, db_uri, capsys):
        rc = query_tool.main(["--db", db_uri, "/ghost"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_no_topics_errors(self, db_uri, capsys):
        rc = query_tool.main(["--db", db_uri])
        assert rc == 2


class TestConfigTool:
    def test_sensor_list_and_set_show(self, db_uri, capsys):
        assert config_tool.main(["--db", db_uri, "sensor", "list"]) == 0
        assert "/cli/n0/g/s0" in capsys.readouterr().out
        assert (
            config_tool.main(
                [
                    "--db",
                    db_uri,
                    "sensor",
                    "set",
                    "/cli/n0/g/s0",
                    "--unit",
                    "W",
                    "--scale",
                    "10",
                    "--integrable",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert config_tool.main(["--db", db_uri, "sensor", "show", "/cli/n0/g/s0"]) == 0
        out = capsys.readouterr().out
        assert "unit       W" in out
        assert "scale      10.0" in out
        assert "integrable True" in out

    def test_scale_applies_to_queries(self, db_uri, capsys):
        config_tool.main(
            ["--db", db_uri, "sensor", "set", "/cli/n0/g/s0", "--scale", "10"]
        )
        capsys.readouterr()
        query_tool.main(["--db", db_uri, "/cli/n0/g/s0", "--end", "60s"])
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        values = [float(line.split(",")[2]) for line in lines]
        assert values[-1] == pytest.approx(0.9)  # raw 9 / scale 10

    def test_db_retention_cold_backfills_before_demoting(self, tmp_path, capsys):
        from repro.common.timeutil import now_ns
        from repro.core.sid import SensorId
        from repro.libdcdb.api import DCDBClient

        path = str(tmp_path / "retain.db")
        backend = SqliteBackend(path)
        sid = SensorId.from_codes([1, 2, 3])
        topic = "/cli/r0/power"
        backend.put_metadata(f"sidmap{topic}", sid.hex())
        # Two hours of pre-existing history (newest reading recent,
        # oldest hour-aligned) with NO rollups: the cold CLI process
        # must roll the history up before demoting any of it.
        hour = 3600 * NS_PER_SEC
        base = (now_ns() // hour - 3) * hour
        ts = [base + i * 10 * NS_PER_SEC for i in range(730)]
        backend.insert_batch([(sid, int(t), 1, 0) for t in ts])
        backend.flush()
        backend.close()
        rc = config_tool.main(
            ["--db", f"sqlite:{path}", "db", "retention", "--raw-horizon", "1800"]
        )
        assert rc == 0
        assert "raw: removed" in capsys.readouterr().out
        backend = SqliteBackend(path)
        client = DCDBClient(backend, cache_size=0)
        # Raw readings really were demoted...
        assert backend.count(sid, 0, 1 << 62) < len(ts)
        # ...and none were lost: the planner still accounts for every
        # reading via the backfilled rollup tiers plus the raw tail.
        _, counts = client.query_aggregate(topic, base, ts[-1], "count", 200)
        assert counts.sum() == len(ts)
        backend.close()

    def test_vsensor_lifecycle(self, db_uri, capsys):
        rc = config_tool.main(
            [
                "--db",
                db_uri,
                "vsensor",
                "add",
                "total",
                "sum(</cli/n0/g>)",
                "--unit",
                "count",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        config_tool.main(["--db", db_uri, "vsensor", "list"])
        assert "total" in capsys.readouterr().out
        # Queryable through the query tool like a normal sensor.
        rc = query_tool.main(
            ["--db", db_uri, "/virtual/total", "--start", "1s", "--end", "9s"]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        assert len(lines) >= 8
        config_tool.main(["--db", db_uri, "vsensor", "delete", "total"])
        capsys.readouterr()
        config_tool.main(["--db", db_uri, "vsensor", "list"])
        assert "total" not in capsys.readouterr().out

    def test_bad_expression_errors(self, db_uri, capsys):
        rc = config_tool.main(
            ["--db", db_uri, "vsensor", "add", "bad", "1 +++ <"]
        )
        assert rc == 1

    def test_db_deleteolder(self, db_uri, capsys):
        rc = config_tool.main(
            ["--db", db_uri, "db", "deleteolder", "/cli/n0/g/s0", "5s"]
        )
        assert rc == 0
        assert "removed 4" in capsys.readouterr().out
        query_tool.main(["--db", db_uri, "/cli/n0/g/s0", "--end", "60s"])
        assert len(capsys.readouterr().out.strip().splitlines()) == 7

    def test_db_compact(self, db_uri, capsys):
        assert config_tool.main(["--db", db_uri, "db", "compact"]) == 0


class TestCsvImportTool:
    def test_import_then_query(self, tmp_path, capsys):
        csv_file = tmp_path / "data.csv"
        csv_file.write_text(
            "sensor,time,value\n"
            "/imported/a,1000000000,10\n"
            "/imported/a,2000000000,20\n"
            "/imported/b,1000000000,5\n"
        )
        uri = f"sqlite:{tmp_path}/imp.db"
        rc = csvimport_tool.main(["--db", uri, str(csv_file)])
        assert rc == 0
        assert "imported 3" in capsys.readouterr().out
        rc = query_tool.main(["--db", uri, "/imported/a", "--end", "60s"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_import_into_live_db_no_sid_collision(self, db_uri, capsys):
        csv_file_content = "sensor,time,value\n/other/x,1,1\n"
        import tempfile, os

        with tempfile.NamedTemporaryFile("w", suffix=".csv", delete=False) as handle:
            handle.write(csv_file_content)
            name = handle.name
        try:
            rc = csvimport_tool.main(["--db", db_uri, name])
            assert rc == 0
            capsys.readouterr()
            # Existing data unharmed, new data present.
            assert query_tool.main(["--db", db_uri, "/cli/n0/g/s0", "--end", "60s"]) == 0
            assert len(capsys.readouterr().out.strip().splitlines()) == 11
            assert query_tool.main(["--db", db_uri, "/other/x", "--end", "60s"]) == 0
            assert len(capsys.readouterr().out.strip().splitlines()) == 2
        finally:
            os.unlink(name)

    def test_missing_file_errors(self, tmp_path, capsys):
        rc = csvimport_tool.main(["--db", "memory:", str(tmp_path / "nope.csv")])
        assert rc == 1

    def test_bad_header_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("x,y,z\n1,2,3\n")
        rc = csvimport_tool.main(["--db", "memory:", str(bad)])
        assert rc == 1


class TestPusherdCli:
    def test_dump_mode(self, tmp_path, capsys):
        from repro.tools import pusherd

        conf = tmp_path / "pusher.conf"
        conf.write_text(
            "global { mqttPrefix /dump/n0 }\n"
            "plugin tester { config { group g { interval 1000\n numSensors 2 } } }\n"
        )
        rc = pusherd.main([str(conf), "--dump"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mqttPrefix /dump/n0" in out
        assert "numSensors 2" in out

    def test_missing_config_file_errors(self, capsys):
        from repro.tools import pusherd

        rc = pusherd.main(["/does/not/exist.conf"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_agentd_missing_config_errors(self, capsys):
        from repro.tools import agentd

        rc = agentd.main(["/does/not/exist.conf"])
        assert rc == 1
