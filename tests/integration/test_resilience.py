"""Resilience: the monitoring pipeline survives component failures."""

import time

import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.client import MQTTClient
from repro.storage import MemoryBackend


class TestAgentRestart:
    def test_pusher_survives_agent_outage_and_reconnects(self):
        """Kill the Collect Agent mid-run; the Pusher keeps sampling,
        reconnects once the agent returns, and data flow resumes."""
        backend = MemoryBackend()
        agent = CollectAgent(backend, port=0)
        agent.start()
        port = agent.port
        client = MQTTClient("resilient-pusher", port=port, keepalive=1)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/res/n0", broker_port=port), client=client
        )
        # Fast reconnect for the test.
        pusher.RECONNECT_BACKOFF_NS = int(0.2 * NS_PER_SEC)
        pusher.load_plugin("tester", "group g { interval 100\n numSensors 2 }")
        pusher.start_plugin("tester")
        pusher.start()
        try:
            deadline = time.monotonic() + 10
            while agent.readings_stored < 4 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert agent.readings_stored >= 4

            # --- outage -------------------------------------------------
            agent.stop()
            time.sleep(0.6)
            collected_during_outage = pusher.readings_collected
            time.sleep(0.4)
            # Sampling continued throughout the outage.
            assert pusher.readings_collected > collected_during_outage
            assert pusher.publish_failures > 0

            # --- recovery: new agent on the same port -------------------
            backend2 = MemoryBackend()
            agent2 = CollectAgent(backend2, port=port)
            agent2.start()
            try:
                deadline = time.monotonic() + 15
                while agent2.readings_stored < 4 and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert agent2.readings_stored >= 4
                assert pusher.reconnects >= 1
                # Metadata was re-announced on reconnect.
                assert agent2.metadata_announcements >= 2
            finally:
                agent2.stop()
        finally:
            pusher.stop()

    def test_reconnect_attempts_rate_limited(self):
        """With no agent at all, reconnects are bounded by the backoff."""
        client = MQTTClient("lonely", port=1)
        pusher = Pusher(PusherConfig(mqtt_prefix="/lonely"), client=client)
        pusher.RECONNECT_BACKOFF_NS = 3600 * NS_PER_SEC  # one per hour
        pusher.load_plugin("tester", "group g { interval 100\n numSensors 1 }")
        # Force failures by publishing through a dead client.
        from repro.core.sensor import SensorReading

        sensor = pusher.plugins["tester"].groups[0].sensors[0]
        for i in range(10):
            pusher._publish(sensor, [SensorReading(i, i)])
        assert pusher.publish_failures == 10
        # Only the first failure triggered a connect attempt (which
        # itself failed against port 1); the rest were suppressed.
        assert pusher.reconnects == 0
