"""End-to-end observability: trace stamps, /metrics scrapes, dcdbmon.

Boots the in-process pipeline (Pusher -> InProcHub -> CollectAgent ->
storage) and asserts that

* one reading produces pipeline-latency stamps at every hop,
* both REST APIs expose a valid Prometheus ``/metrics`` document with
  at least one counter, gauge and histogram,
* the dcdbmon plugin round-trips framework metrics through MQTT into
  storage, where libDCDB can query them like any other sensor.
"""

from __future__ import annotations

import pytest

from repro.common.httpjson import http_json, http_text
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.collectagent.restapi import CollectAgentRestApi
from repro.core.pusher import Pusher, PusherConfig
from repro.core.pusher.restapi import PusherRestApi
from repro.libdcdb import DCDBClient
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.observability import PIPELINE_METRIC, parse_prometheus_text
from repro.storage import MemoryBackend
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode

TESTER_CONFIG = "group g0 { interval 1000\n numSensors 4 }"


def _run_pipeline(pipeline, seconds: float = 5.0) -> None:
    pipeline.load_and_start("tester", TESTER_CONFIG)
    pipeline.run(seconds)


class TestTraceStamps:
    def test_every_hop_stamped(self, pipeline):
        _run_pipeline(pipeline)
        pusher_reg = pipeline.pusher.metrics
        agent_reg = pipeline.agent.metrics
        for registry, hop in (
            (pusher_reg, "collect"),
            (pusher_reg, "publish"),
            (agent_reg, "dispatch"),
            (agent_reg, "insert"),
            (agent_reg, "commit"),
        ):
            count = registry.value(PIPELINE_METRIC, {"hop": hop})
            assert count > 0, f"hop {hop!r} never stamped"

    def test_agent_and_hub_share_registry(self, pipeline):
        assert pipeline.agent.metrics is pipeline.hub.metrics

    def test_status_reports_latency_percentiles(self, pipeline):
        _run_pipeline(pipeline)
        pusher_latency = pipeline.pusher.status()["latency"]
        assert pusher_latency["collect"]["count"] > 0
        assert pusher_latency["collect"]["p95"] is not None
        agent_latency = pipeline.agent.status()["latency"]
        for hop in ("dispatch", "insert", "commit"):
            assert agent_latency[hop]["count"] > 0

    def test_sampling_knob_disables_tracing(self):
        clock = SimClock(0)
        hub = InProcHub(allow_subscribe=False, trace_sample_every=0)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub, trace_sample_every=0)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/t/h0", trace_sample_every=0),
            client=InProcClient("p0", hub),
            clock=clock,
        )
        pusher.load_plugin("tester", TESTER_CONFIG)
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(5 * NS_PER_SEC)
        assert pusher.metrics.value(PIPELINE_METRIC) == 0.0
        assert agent.metrics.value(PIPELINE_METRIC) == 0.0
        assert pusher.readings_collected > 0  # pipeline itself still runs


class TestMetricsEndpoints:
    def test_pusher_metrics_scrape(self, pipeline):
        _run_pipeline(pipeline)
        with PusherRestApi(pipeline.pusher) as api:
            status, text, content_type = http_text(
                "GET", f"http://127.0.0.1:{api.port}/metrics"
            )
        assert status == 200
        assert content_type.startswith("text/plain")
        families = parse_prometheus_text(text)
        kinds = {meta["type"] for meta in families.values()}
        assert {"counter", "gauge", "histogram"} <= kinds
        assert families[PIPELINE_METRIC]["type"] == "histogram"
        assert 'hop="publish"' in text

    def test_agent_metrics_scrape_includes_storage(self, pipeline):
        _run_pipeline(pipeline)
        with CollectAgentRestApi(pipeline.agent) as api:
            status, text, _ = http_text(
                "GET", f"http://127.0.0.1:{api.port}/metrics"
            )
        assert status == 200
        families = parse_prometheus_text(text)
        assert families["dcdb_agent_readings_stored_total"]["samples"] == 1
        assert families["dcdb_broker_messages_received_total"]["samples"] == 1
        assert families[PIPELINE_METRIC]["type"] == "histogram"

    def test_agent_scrape_merges_cluster_node_registries(self):
        hub = InProcHub(allow_subscribe=False)
        nodes = [StorageNode("n0"), StorageNode("n1")]
        backend = StorageCluster(nodes=nodes)
        agent = CollectAgent(backend, broker=hub)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/t/h0"),
            client=InProcClient("p0", hub),
            clock=SimClock(0),
        )
        pusher.load_plugin("tester", TESTER_CONFIG)
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(5 * NS_PER_SEC)
        with CollectAgentRestApi(agent) as api:
            status, text, _ = http_text(
                "GET", f"http://127.0.0.1:{api.port}/metrics"
            )
        assert status == 200
        families = parse_prometheus_text(text)
        assert families["dcdb_cluster_local_ops_total"]["samples"] >= 1
        assert 'node="n0"' in text or 'node="n1"' in text

    def test_json_format(self, pipeline):
        _run_pipeline(pipeline)
        with PusherRestApi(pipeline.pusher) as api:
            status, doc = http_json(
                "GET", f"http://127.0.0.1:{api.port}/metrics?format=json"
            )
        assert status == 200
        hist = doc[PIPELINE_METRIC]
        assert hist["type"] == "histogram"
        sample = next(
            s for s in hist["samples"] if s["labels"] == {"hop": "publish"}
        )
        assert sample["count"] > 0
        assert sample["p95"] is not None

    def test_http_requests_counted_in_exposition(self, pipeline):
        with PusherRestApi(pipeline.pusher) as api:
            base = f"http://127.0.0.1:{api.port}"
            http_json("GET", f"{base}/status")
            _, text, _ = http_text("GET", f"{base}/metrics")
        assert 'route="/status"' in text
        assert "dcdb_http_request_duration_seconds" in text


class TestDcdbmonRoundTrip:
    DCDBMON_CONFIG = """
    group self {
        interval 1000
        sensor storeTotal {
            mqttsuffix /self/storeTotal
            metric dcdb_pusher_readings_collected_total
            stat value
        }
        sensor pubLatencyP95 {
            mqttsuffix /self/pubLatencyP95
            metric dcdb_pipeline_latency_seconds
            labels hop=publish
            stat p95
            scale 1000000
            unit s
        }
    }
    """

    def test_metrics_flow_into_storage(self, pipeline):
        pipeline.load_and_start("tester", TESTER_CONFIG)
        pipeline.load_and_start("dcdbmon", self.DCDBMON_CONFIG)
        pipeline.run(10)
        client = DCDBClient(pipeline.backend)
        topic = "/test/host0/self/storeTotal"
        assert topic in client.topics()
        ts, values = client.query_raw(topic, 0, 120 * NS_PER_SEC)
        assert ts.size >= 5
        # The tester plugin collects 4 readings/s; the self-monitoring
        # series must be growing alongside it.
        assert values[-1] > values[0]

    def test_default_catalogue_when_no_sensors_configured(self, pipeline):
        pipeline.load_and_start("tester", TESTER_CONFIG)
        pipeline.load_and_start("dcdbmon", "group self { interval 1000 }")
        pipeline.run(5)
        client = DCDBClient(pipeline.backend)
        topics = client.topics()
        assert "/test/host0/messagesPublished" in topics
        assert "/test/host0/publishLatencyP95" in topics

    def test_unattached_group_counts_read_error(self):
        from repro.core.pusher.registry import create_configurator

        configurator = create_configurator("dcdbmon")
        plugin = configurator.read_config("group g { interval 1000 }")
        group = plugin.groups[0]
        assert group.read(NS_PER_SEC) == []
        assert group.read_errors == 1

    def test_failed_reload_keeps_old_plugin_running(self, pipeline):
        """A bad reload must not tear down the running plugin."""
        from repro.common.errors import ConfigError
        from repro.plugins.dcdbmon import DEFAULT_SENSORS

        pipeline.load_and_start("dcdbmon", "group self { interval 1000 }")
        with pytest.raises(ConfigError, match="unknown stat"):
            pipeline.pusher.reload_plugin(
                "dcdbmon",
                "group self { interval 1000\n sensor s { metric m\n stat p42 } }",
            )
        plugin = pipeline.pusher.plugins["dcdbmon"]
        assert plugin.running
        assert plugin.sensor_count == len(DEFAULT_SENSORS)

    def test_bad_stat_rejected(self):
        from repro.common.errors import ConfigError
        from repro.core.pusher.registry import create_configurator

        with pytest.raises(ConfigError, match="unknown stat"):
            create_configurator("dcdbmon").read_config(
                "group g { interval 1000\n"
                " sensor s { metric m\n stat p42 } }"
            )
