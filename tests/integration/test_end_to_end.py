"""Full-stack integration: Pusher -> TCP broker/Collect Agent -> storage -> libDCDB.

This is the paper's Figure 2 data flow exercised over real sockets and
real sampling threads, then queried through the user-facing API.
"""

import time

import pytest

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.libdcdb.api import DCDBClient, SensorConfig
from repro.libdcdb.virtualsensors import VirtualSensorDef
from repro.mqtt.client import MQTTClient
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage import MemoryBackend, SqliteBackend, StorageCluster, StorageNode
from repro.storage.partitioner import HierarchicalPartitioner


class TestTcpPipeline:
    def test_threaded_pusher_to_tcp_agent(self):
        backend = MemoryBackend()
        agent = CollectAgent(backend, port=0)
        agent.start()
        try:
            client = MQTTClient("e2e-pusher", port=agent.port)
            pusher = Pusher(
                PusherConfig(mqtt_prefix="/e2e/node0", threads=2), client=client
            )
            pusher.load_plugin("tester", "group g { interval 100\n numSensors 4 }")
            pusher.start_plugin("tester")
            pusher.start()
            try:
                deadline = time.monotonic() + 10.0
                while agent.readings_stored < 20 and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert agent.readings_stored >= 20
            finally:
                pusher.stop()
            # Query what was collected through libDCDB.
            dcdb = DCDBClient(backend)
            topics = dcdb.topics("/e2e")
            assert len(topics) == 4
            ts, values = dcdb.query(topics[0], 0, (1 << 62))
            assert ts.size >= 5
            # Synchronized sampling: timestamps are 100ms-aligned.
            assert all(t % 100_000_000 == 0 for t in ts.tolist())
        finally:
            agent.stop()

    def test_agent_rejects_subscribers(self):
        backend = MemoryBackend()
        agent = CollectAgent(backend, port=0)
        agent.start()
        try:
            from repro.common.errors import TransportError

            consumer = MQTTClient("consumer", port=agent.port)
            consumer.connect()
            with pytest.raises(TransportError):
                consumer.subscribe("/#")
            consumer.disconnect()
        finally:
            agent.stop()


class TestClusterPipeline:
    def test_pushers_to_distributed_storage(self):
        # Three pushers (three "racks"), two storage nodes, replication 2.
        nodes = [StorageNode("sb0"), StorageNode("sb1")]
        cluster = StorageCluster(
            nodes, partitioner=HierarchicalPartitioner(2, levels=2), replication=2
        )
        hub = InProcHub(allow_subscribe=False)
        agent = CollectAgent(cluster, broker=hub)
        clock = SimClock(0)
        pushers = []
        for rack in range(3):
            pusher = Pusher(
                PusherConfig(mqtt_prefix=f"/sys/rack{rack}/node0"),
                client=InProcClient(f"p{rack}", hub),
                clock=clock,
            )
            pusher.load_plugin("tester", "group g { interval 1000\n numSensors 10 }")
            pusher.client.connect()
            pusher.start_plugin("tester")
            pushers.append(pusher)
        for pusher in pushers:
            pusher.advance_to(30 * NS_PER_SEC)
        assert agent.readings_stored == 3 * 10 * 30
        # Replication: every reading lives on both nodes.
        assert nodes[0].row_count + nodes[1].row_count == 2 * agent.readings_stored
        # Every sensor readable with full history.
        dcdb = DCDBClient(cluster)
        for rack in range(3):
            ts, _ = dcdb.query(f"/sys/rack{rack}/node0/g/s0", 0, 60 * NS_PER_SEC)
            assert ts.size == 30

    def test_virtual_sensor_over_live_data(self):
        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub)
        clock = SimClock(0)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/vs/node0"),
            client=InProcClient("p", hub),
            clock=clock,
        )
        pusher.load_plugin(
            "tester",
            "group power { interval 1000\n numSensors 4\n generator constant\n startValue 250 }",
        )
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(60 * NS_PER_SEC)
        dcdb = DCDBClient(backend)
        for i in range(4):
            dcdb.set_sensor_config(
                SensorConfig(topic=f"/vs/node0/power/s{i}", unit="W")
            )
        dcdb.define_virtual_sensor(
            VirtualSensorDef(
                name="node_power", expression="sum(</vs/node0/power>)", unit="W"
            )
        )
        ts, values = dcdb.query("/virtual/node_power", NS_PER_SEC, 59 * NS_PER_SEC)
        assert values[0] == pytest.approx(1000.0, abs=0.01)


class TestSqlitePipeline:
    def test_full_stack_with_sqlite_backend(self, tmp_path):
        # The backend-swap claim (paper section 5.1) end to end: the
        # identical pipeline against SQLite, with data surviving reopen.
        path = str(tmp_path / "monitor.db")
        backend = SqliteBackend(path)
        hub = InProcHub(allow_subscribe=False)
        agent = CollectAgent(backend, broker=hub)
        clock = SimClock(0)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/sq/n0"),
            client=InProcClient("p", hub),
            clock=clock,
        )
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 3 }")
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(10 * NS_PER_SEC)
        agent.stop()
        backend.close()
        reopened = SqliteBackend(path)
        dcdb = DCDBClient(reopened)
        ts, _ = dcdb.query("/sq/n0/g/s0", 0, 60 * NS_PER_SEC)
        assert ts.size == 10
        reopened.close()


class TestRuntimeReconfiguration:
    def test_reload_mid_collection(self):
        hub = InProcHub(allow_subscribe=False)
        backend = MemoryBackend()
        agent = CollectAgent(backend, broker=hub)
        clock = SimClock(0)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/rl/n0"),
            client=InProcClient("p", hub),
            clock=clock,
        )
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 2 }")
        pusher.client.connect()
        pusher.start_plugin("tester")
        pusher.advance_to(5 * NS_PER_SEC)
        clock.set(5 * NS_PER_SEC)
        assert agent.readings_stored == 10
        # Seamless reload to a larger configuration (paper section 5.3);
        # the restarted groups schedule after the current time.
        pusher.reload_plugin("tester", "group g { interval 1000\n numSensors 6 }")
        pusher.advance_to(10 * NS_PER_SEC)
        assert agent.readings_stored == 10 + 5 * 6
        assert len(agent.cached_topics()) == 6
