"""End-to-end distributed tracing through the simulated cluster.

Steps a :class:`~repro.simulation.simcluster.SimulatedCluster` with
tracing enabled and asserts the observable contract of the tentpole:

* a reading's trace carries the full span chain
  collect -> publish -> dispatch -> insert -> commit (plus the storage
  replica span when a cluster backend is in play),
* faults leave hinted-handoff spans with fault attributes in the same
  trace,
* ``/traces``, ``/health`` and the exemplar linkage on
  ``dcdb_pipeline_latency_seconds`` are all reachable over HTTP.
"""

from __future__ import annotations

from repro.common.httpjson import http_json
from repro.core.collectagent import WriterConfig
from repro.core.collectagent.restapi import CollectAgentRestApi
from repro.core.pusher.restapi import PusherRestApi
from repro.faults import FaultPlan
from repro.grafana import GrafanaDataSource
from repro.libdcdb import DCDBClient
from repro.observability import PIPELINE_METRIC
from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster

FULL_CHAIN = {"collect", "publish", "dispatch", "insert", "commit"}


def _small_sim(**overrides) -> SimulatedCluster:
    params: dict = dict(
        hosts=2, sensors_per_host=4, interval_ms=1000, trace_sample_every=1
    )
    params.update(overrides)
    return SimulatedCluster(SimClusterConfig(**params))


def _full_traces(sim: SimulatedCluster) -> list[dict]:
    docs = sim.spans.traces(limit=50)
    return [
        d for d in docs if FULL_CHAIN <= {s["name"] for s in d["spans"]}
    ]


class TestTraceChain:
    def test_synchronous_path_records_full_chain(self):
        sim = _small_sim()
        try:
            sim.run(3)
            full = _full_traces(sim)
            assert full, "no trace collected the full pipeline chain"
            doc = full[0]
            assert doc["spanCount"] >= 5
            names = {s["name"] for s in doc["spans"]}
            # Cluster backend: the storage write leaves its replica span.
            assert "replica-write" in names
            assert doc["durationNs"] == doc["endNs"] - doc["startNs"]
            for span in doc["spans"]:
                assert span["component"]
                assert span["durationNs"] >= 0
        finally:
            sim.stop()

    def test_batching_writer_path_records_full_chain(self):
        sim = _small_sim(writer_config=WriterConfig(max_batch=16))
        try:
            sim.run(3)
            full = _full_traces(sim)
            assert full, "no full trace through the batching writer"
            commit = next(
                s for s in full[0]["spans"] if s["name"] == "commit"
            )
            assert commit["component"] == "writer"
        finally:
            sim.stop()

    def test_sampling_zero_records_nothing(self):
        sim = _small_sim(trace_sample_every=0)
        try:
            assert sim.run(3) > 0
            assert sim.spans.traces() == []
        finally:
            sim.stop()

    def test_concurrent_sims_keep_traces_isolated(self):
        sim_a = _small_sim(topic_prefix="/iso/a")
        sim_b = _small_sim(topic_prefix="/iso/b")
        try:
            sim_a.run(2)
            sim_b.run(2)
            topics_a = {
                s["attributes"].get("topic", "")
                for d in sim_a.spans.traces()
                for s in d["spans"]
            }
            assert not any("/iso/b" in t for t in topics_a)
        finally:
            sim_a.stop()
            sim_b.stop()


class TestFaultSpans:
    def test_hinted_handoff_span_carries_fault_attributes(self):
        sim = _small_sim(
            storage_nodes=2, replication=2, fault_plan=FaultPlan(seed=7)
        )
        try:
            sim.run(1)  # healthy: replica-writes to both nodes
            sim.kill_node(1)
            sim.run(3)  # node1 down: writes to it become hints
            degraded = [
                d
                for d in sim.spans.traces(limit=50)
                if any(s["name"] == "hinted-handoff" for s in d["spans"])
            ]
            assert degraded, "no hinted-handoff span despite a dead replica"
            doc = degraded[0]
            span = next(s for s in doc["spans"] if s["name"] == "hinted-handoff")
            assert span["attributes"]["replica"] == "node1"
            assert span["attributes"]["faultInjected"] is True
            # A node that reports itself down is hinted immediately,
            # without burning the retry budget.
            assert span["attributes"]["attempts"] == 0
            assert "error" in span["attributes"]
            # The same trace still committed on the surviving replica.
            names = {s["name"] for s in doc["spans"]}
            assert "replica-write" in names
            assert "commit" in names
        finally:
            sim.stop()

    def test_healthy_replica_write_records_attempts(self):
        sim = _small_sim(storage_nodes=2, replication=2)
        try:
            sim.run(2)
            writes = [
                s
                for d in sim.spans.traces(limit=20)
                for s in d["spans"]
                if s["name"] == "replica-write"
            ]
            assert writes
            assert all(s["attributes"]["retries"] == 0 for s in writes)
            replicas = {s["attributes"]["replica"] for s in writes}
            assert replicas == {"node0", "node1"}
        finally:
            sim.stop()


class TestIntrospectionHttp:
    def test_traces_endpoint_with_filters(self):
        sim = _small_sim()
        try:
            sim.run(3)
            with CollectAgentRestApi(sim.agent) as api:
                base = f"http://127.0.0.1:{api.port}"
                status, docs = http_json("GET", f"{base}/traces?limit=5")
                assert status == 200
                assert 0 < len(docs) <= 5
                assert all("traceId" in d and d["spans"] for d in docs)
                # sid= narrows to one host's topics.
                status, docs = http_json(
                    "GET", f"{base}/traces?sid=host1"
                )
                assert status == 200
                assert docs
                for doc in docs:
                    topics = {
                        s["attributes"].get("topic", "")
                        for s in doc["spans"]
                        if "topic" in s["attributes"]
                    }
                    assert any("host1" in t for t in topics)
                # An absurd latency floor filters everything out.
                status, docs = http_json(
                    "GET", f"{base}/traces?minLatencyMs=1e18"
                )
                assert status == 200
                assert docs == []
        finally:
            sim.stop()

    def test_agent_health_degrades_when_replicas_die(self):
        plan = FaultPlan(seed=1)
        sim = _small_sim(storage_nodes=2, replication=2, fault_plan=plan)
        try:
            sim.run(1)
            with CollectAgentRestApi(sim.agent) as api:
                base = f"http://127.0.0.1:{api.port}"
                status, doc = http_json("GET", f"{base}/health")
                assert status == 200
                assert doc["status"] == "ok"
                assert doc["components"]["storage"]["liveReplicas"] == 2
                sim.kill_node(0)
                sim.kill_node(1)
                status, doc = http_json("GET", f"{base}/health")
                assert status == 503
                assert doc["status"] == "degraded"
                assert doc["components"]["storage"]["healthy"] is False
                assert doc["components"]["storage"]["liveReplicas"] == 0
        finally:
            sim.stop()

    def test_pusher_health_reflects_transport_and_run_state(self):
        from repro.core.pusher import Pusher, PusherConfig
        from repro.mqtt.inproc import InProcClient, InProcHub

        hub = InProcHub(allow_subscribe=False)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/health/h0"),
            client=InProcClient("p0", hub),
        )
        pusher.load_plugin("tester", "group g0 { interval 1000\n numSensors 2 }")
        pusher.start_plugin("tester")
        with PusherRestApi(pusher) as api:
            base = f"http://127.0.0.1:{api.port}"
            # Never started: the pusher component is down.
            status, doc = http_json("GET", f"{base}/health")
            assert status == 503
            assert doc["status"] == "degraded"
            assert doc["components"]["pusher"]["healthy"] is False
            pusher.start()
            try:
                status, doc = http_json("GET", f"{base}/health")
                assert status == 200
                assert doc["components"]["transport"]["connected"] is True
                assert doc["components"]["plugins"]["healthy"] is True
            finally:
                pusher.stop()
            status, doc = http_json("GET", f"{base}/health")
            assert status == 503

    def test_exemplar_links_histogram_bucket_to_trace(self):
        sim = _small_sim()
        try:
            sim.run(3)
            with CollectAgentRestApi(sim.agent) as api:
                base = f"http://127.0.0.1:{api.port}"
                status, metrics = http_json(
                    "GET", f"{base}/metrics?format=json"
                )
                assert status == 200
                exemplars = [
                    e
                    for sample in metrics[PIPELINE_METRIC]["samples"]
                    for e in sample.get("exemplars", [])
                ]
                assert exemplars, "latency histogram carries no exemplars"
                status, docs = http_json("GET", f"{base}/traces?limit=50")
                assert status == 200
                known = {d["traceId"] for d in docs}
                linked = [e for e in exemplars if e["traceId"] in known]
                assert linked, "no exemplar points at a retrievable trace"
        finally:
            sim.stop()


class TestGrafanaHealth:
    def test_healthy_cluster_reports_ok_with_liveness(self):
        sim = _small_sim(storage_nodes=2, replication=2,
                         fault_plan=FaultPlan(seed=2))
        try:
            sim.run(1)
            with GrafanaDataSource(DCDBClient(sim.backend)) as ds:
                status, doc = http_json(
                    "GET", f"http://127.0.0.1:{ds.port}/"
                )
                assert status == 200
                assert doc["status"] == "ok"
                assert doc["replicasLive"] == 2
                assert doc["replicasTotal"] == 2
                sim.kill_node(0)
                sim.kill_node(1)
                status, doc = http_json(
                    "GET", f"http://127.0.0.1:{ds.port}/"
                )
                assert status == 503
                assert doc["status"] == "unavailable"
                assert doc["replicasLive"] == 0
        finally:
            sim.stop()

    def test_memory_backend_reports_plain_ok(self):
        sim = _small_sim(use_memory_backend=True)
        try:
            sim.run(1)
            with GrafanaDataSource(DCDBClient(sim.backend)) as ds:
                status, doc = http_json(
                    "GET", f"http://127.0.0.1:{ds.port}/"
                )
                assert status == 200
                assert doc == {"status": "ok", "datasource": "dcdb"}
        finally:
            sim.stop()
