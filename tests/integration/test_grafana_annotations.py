"""Tests for the Grafana annotations endpoint backed by analytics alarms."""

import json
import urllib.request

import pytest

from repro.analytics import AnalyticsManager, ThresholdAlarm
from repro.common.timeutil import NS_PER_SEC
from repro.core.sensor import SensorReading
from repro.grafana import GrafanaDataSource
from repro.libdcdb.api import DCDBClient
from repro.storage import MemoryBackend


def post(ds, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{ds.port}{path}",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


@pytest.fixture
def stack():
    manager = AnalyticsManager()
    manager.add_operator(ThresholdAlarm("cap", ["/p/#"], high=100, low=90))
    # Raise at t=5s, clear at t=9s.
    manager.feed("/p/node0", SensorReading(5 * NS_PER_SEC, 150))
    manager.feed("/p/node0", SensorReading(9 * NS_PER_SEC, 50))
    client = DCDBClient(MemoryBackend())
    with GrafanaDataSource(client, analytics=manager) as ds:
        yield ds, manager


class TestAnnotations:
    def test_alarms_rendered(self, stack):
        ds, _ = stack
        status, body = post(ds, "/annotations", {})
        assert status == 200
        assert len(body) == 2
        assert body[0]["title"] == "cap"
        assert body[0]["time"] == 5000  # ms
        assert "/p/node0" in body[0]["tags"]

    def test_range_filtering(self, stack):
        ds, _ = stack
        _, body = post(
            ds,
            "/annotations",
            {"range": {"from_ns": 8 * NS_PER_SEC, "to_ns": 20 * NS_PER_SEC}},
        )
        assert len(body) == 1
        assert "recovered" in body[0]["text"]

    def test_no_analytics_manager_empty(self):
        client = DCDBClient(MemoryBackend())
        with GrafanaDataSource(client) as ds:
            _, body = post(ds, "/annotations", {})
            assert body == []
