"""Chaos acceptance for elastic membership: live grow/shrink mid-ingest.

The scenarios double a 3-node cluster to 6 (and drain a member back
out) while the simulated pipeline keeps ingesting, with a
:class:`~repro.faults.RebalanceFaultInjector` killing a streaming
source at an exact chunk boundary.  The invariants under test:

* **zero acked-reading loss** — every reading the agent acked exists
  afterwards, through joins, leaves and a mid-stream source crash;
* **bit-identical reads** — queries over the pre-rebalance window
  return exactly the same series before, during and after the moves;
* **bounded transfer cost** — bytes streamed stay within 1.25x the
  theoretical minimum even with one forced source failover;
* **detection behavior** — a killed source is condemned by operation
  feedback alone (zero additional heartbeat rounds), and a healthy
  run never produces a false suspicion or a spurious read failover.
"""

import os

import pytest

from repro.faults import FaultPlan, FlakyNode, RebalanceFaultInjector
from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster
from repro.storage.membership import NODE_DOWN, NODE_REMOVED, NODE_UP
from repro.storage.node import StorageNode

CHAOS_SEEDS = [
    int(s) for s in os.environ.get("CHAOS_SEEDS", "101,202,303,404,505").split(",")
]

FAR = 1 << 62


def build_sim(seed, *, hosts=6, sensors=8):
    """3 storage nodes, replication 2, one partition per host subtree.

    ``topic_prefix="/sim"`` makes the default 2-level partitioner key
    on (sim, hostN) — six partitions, so joins actually spread load.
    """
    return SimulatedCluster(
        SimClusterConfig(
            hosts=hosts,
            sensors_per_host=sensors,
            interval_ms=1000,
            storage_nodes=3,
            replication=2,
            topic_prefix="/sim",
            fault_plan=FaultPlan(seed),
            trace_sample_every=0,
        )
    )


def fingerprint(cluster, start, end):
    """Bit-exact snapshot of every series over [start, end]."""
    return {
        s.hex(): (ts.tolist(), vals.tolist())
        for s in sorted(cluster.sids(), key=lambda s: s.value)
        for ts, vals in [cluster.query(s, start, end)]
    }


def drain_hints(cluster, rounds=10):
    for _ in range(rounds):
        if cluster.hints_pending == 0:
            return
        cluster.replay_hints()


class TestGrowClusterMidIngest:
    """3 -> 6 nodes while ingesting, with a source killed mid-stream."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_double_cluster_with_source_kill(self, seed):
        sim = build_sim(seed)
        cluster = sim.backend
        for _ in range(10):
            sim.run(1.0)
        assert sim.agent.store_errors == 0

        # False-positive gate: ten seconds of healthy probed ingest
        # must leave every node UP and never fail over a read.
        assert [s["state"] for s in cluster.node_states()] == [NODE_UP] * 3
        assert cluster.metrics.value("dcdb_storage_read_failovers_total") == 0

        t0 = sim.clock()
        before = fingerprint(cluster, 0, t0)
        assert len(before) == sim.total_sensors

        # First join: blocking, with the injector killing the stream's
        # source after it shipped one chunk.  Small chunks force every
        # sensor through multiple chunk boundaries.
        cluster.rebalance_chunk_rows = 4
        injector = RebalanceFaultInjector(cluster)
        injector.kill_source_after(chunks=1, proxies=sim.flaky_nodes)
        idx3 = len(cluster.nodes)
        node3 = FlakyNode(
            StorageNode(f"node{idx3}", clock=sim.clock), plan=sim.fault_plan
        )
        sim.flaky_nodes.append(node3)
        probes_before = cluster.detector.probes_total
        cluster.add_node(node3, wait=True)

        assert [f["kind"] for f in injector.fired] == ["kill-source"]
        victim = injector.fired[0]["source"]
        # Detection latency: the crash was condemned purely by the
        # failed stream's operation feedback — not one heartbeat round
        # ran between the kill and the verdict.
        assert cluster.detector.probes_total == probes_before
        assert cluster.detector.state(victim) == NODE_DOWN
        stats = cluster.rebalance_stats()
        assert stats["partitions_failed"] == 0
        assert stats["source_failovers"] >= 1

        # Dual-read correctness with a replica down: the pre-join
        # window reads back bit-identically.
        assert fingerprint(cluster, 0, t0) == before

        sim.restart_node(victim)
        drain_hints(cluster)

        # Two more joins while ingest keeps flowing (wait=False): the
        # mid-transfer window must serve the same bytes.
        for _ in range(2):
            sim.add_storage_node(wait=False)
            sim.run(1.0)
            assert fingerprint(cluster, 0, t0) == before
            assert cluster.rebalance_wait(timeout=60.0)
        for _ in range(3):
            sim.run(1.0)
        sim.drain()
        drain_hints(cluster)
        total_seconds = 15

        # Zero acked loss: everything the agent acked is readable.
        expected = sim.expected_readings(total_seconds)
        assert sim.agent.readings_stored == expected
        assert sim.agent.store_errors == 0
        stored = sum(
            cluster.query(s, 0, FAR)[0].size for s in cluster.sids()
        )
        assert stored == expected
        assert fingerprint(cluster, 0, t0) == before

        # Bulk reads agree with the per-SID path across the new table.
        sids = cluster.sids()
        bulk = cluster.query_many(sids, 0, t0)
        for s in sids:
            ts, vals = cluster.query(s, 0, t0)
            assert bulk[s][0].tolist() == ts.tolist()
            assert bulk[s][1].tolist() == vals.tolist()

        # Topology settled: 6 members, balanced ownership, transfer
        # cost within 1.25x of the theoretical minimum despite the
        # forced re-stream.
        assert cluster.membership.num_slots == 6
        assert len(cluster.membership.member_indices()) == 6
        assert cluster.membership.transfers_active == 0
        counts = cluster.membership.ownership_counts()
        assert sum(counts.values()) == 12  # 6 partitions x replication 2
        assert max(counts.values()) <= 3
        stats = cluster.rebalance_stats()
        assert stats["partitions_failed"] == 0
        assert stats["moved_bytes"] <= 1.25 * stats["minimal_bytes"]
        assert cluster.hints_pending == 0
        assert [s["state"] for s in cluster.node_states()] == [NODE_UP] * 6
        assert cluster.metrics.value("dcdb_cluster_epoch") == float(
            cluster.membership.epoch
        )
        sim.stop()
        cluster.close()


class TestRemoveNodeDrains:
    """A member leaves mid-ingest; its data survives it."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_drain_preserves_every_acked_reading(self, seed):
        sim = build_sim(seed)
        cluster = sim.backend
        for _ in range(10):
            sim.run(1.0)
        t0 = sim.clock()
        before = fingerprint(cluster, 0, t0)

        sim.remove_storage_node(0, wait=False)
        sim.run(1.0)
        assert fingerprint(cluster, 0, t0) == before
        assert cluster.rebalance_wait(timeout=60.0)
        assert cluster.membership.slot_state(0) == NODE_REMOVED

        for _ in range(2):
            sim.run(1.0)
        sim.drain()
        drain_hints(cluster)
        total_seconds = 13

        expected = sim.expected_readings(total_seconds)
        assert sim.agent.readings_stored == expected
        assert sim.agent.store_errors == 0
        stored = sum(cluster.query(s, 0, FAR)[0].size for s in cluster.sids())
        assert stored == expected
        assert fingerprint(cluster, 0, t0) == before

        # The leaver is out of every replica set and the detector.
        assert 0 not in cluster.membership.ownership_counts()
        assert cluster.node_liveness() == (2, 2)
        states = cluster.node_states()
        assert states[0]["state"] == NODE_REMOVED
        assert [s["state"] for s in states[1:]] == [NODE_UP] * 2
        stats = cluster.rebalance_stats()
        assert stats["partitions_failed"] == 0
        assert stats["moved_bytes"] <= 1.25 * stats["minimal_bytes"]
        assert cluster.hints_pending == 0
        sim.stop()
        cluster.close()


class TestInjectedChunkError:
    """A transient injected error on one exact chunk only retries."""

    @pytest.mark.slow
    def test_fail_chunk_is_survivable_and_soft(self, seed=CHAOS_SEEDS[0]):
        sim = build_sim(seed, hosts=4, sensors=6)
        cluster = sim.backend
        for _ in range(8):
            sim.run(1.0)
        t0 = sim.clock()
        before = fingerprint(cluster, 0, t0)
        cluster.rebalance_chunk_rows = 4
        injector = RebalanceFaultInjector(cluster)
        injector.fail_chunk(1)
        idx = sim.add_storage_node(wait=True)
        assert [f["kind"] for f in injector.fired] == ["fail-chunk"]
        # Soft failure: suspicion only — the source stays a member and
        # the stream completed from a replica without loss.
        victim = injector.fired[0]["source"]
        assert cluster.detector.state(victim) in (NODE_UP, "suspect")
        assert cluster.detector.is_alive(victim)
        stats = cluster.rebalance_stats()
        assert stats["partitions_failed"] == 0
        assert fingerprint(cluster, 0, t0) == before
        assert len(cluster.membership.member_indices()) == 4
        sim.stop()
        cluster.close()
