"""Seeded chaos suite: kill/restart, flaky flushes, broker disconnects.

Every scenario is driven by a :class:`~repro.faults.FaultPlan` so one
seed fully determines the fault schedule.  The committed seeds (also
the default of the ``make chaos`` target) can be overridden with
``CHAOS_SEEDS=1,2,3``; a failing seed then reproduces bit-for-bit.
"""

import os
import time

import pytest

from repro.common.errors import TransportError
from repro.common.timeutil import NS_PER_SEC
from repro.core.collectagent import BatchingWriter, RollupConfig, WriterConfig
from repro.core.sid import SensorId
from repro.faults import BrokerFaultInjector, FaultPlan, FaultyBackend
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.client import MQTTClient
from repro.observability import parse_prometheus_text, render_prometheus
from repro.observability.metrics import merge_snapshots
from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster
from repro.storage import MemoryBackend
from repro.storage.rollup import (
    ROLLUP_TIERS,
    aggregate_buckets,
    is_rollup_sid,
    rollup_sid,
)

CHAOS_SEEDS = [
    int(s) for s in os.environ.get("CHAOS_SEEDS", "101,202,303,404,505").split(",")
]


def ingest_with_node_outage(seed, seconds=50):
    """The acceptance scenario: ~10k readings with a mid-run node kill.

    Returns the cluster sim (stopped, fully drained, hints replayed)
    plus the set of killed-node indices for callers to poke at.
    """
    plan = FaultPlan(seed)
    plan.kill_at(10 * NS_PER_SEC, "node1")
    plan.restart_at(30 * NS_PER_SEC, "node1")
    sim = SimulatedCluster(
        SimClusterConfig(
            hosts=4,
            sensors_per_host=50,
            interval_ms=1000,
            storage_nodes=3,
            replication=2,
            fault_plan=plan,
        )
    )
    for _ in range(seconds):
        sim.run(1.0)
    # Drain any leftover hints for nodes that are up again.
    for _ in range(10):
        if sim.backend.hints_pending == 0:
            break
        sim.backend.replay_hints()
    return sim


class TestKillRestartMidIngest:
    """Replication=2, one replica killed mid-ingest of 10k readings,
    restarted later: zero reading loss on either replica."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_zero_loss_and_hint_replay(self, seed):
        sim = ingest_with_node_outage(seed)
        cluster = sim.backend
        expected = sim.expected_readings(50)
        assert expected == 10_000
        assert sim.agent.readings_stored == expected
        assert sim.agent.store_errors == 0

        # Hints were queued for the dead replica and replayed on rejoin.
        assert cluster.metrics.value("dcdb_storage_hints_queued_total") > 0
        assert cluster.metrics.value(
            "dcdb_storage_hints_replayed_total"
        ) == cluster.metrics.value("dcdb_storage_hints_queued_total")
        assert cluster.hints_pending == 0

        # Every replica holds every sensor's complete series — read the
        # raw nodes underneath the fault proxies so verification itself
        # cannot fail over and mask a hole.
        raw_nodes = [proxy.node for proxy in sim.flaky_nodes]
        sids = raw_nodes[0].sids()
        for node in raw_nodes[1:]:
            sids = sorted(set(sids) | set(node.sids()))
        assert len(sids) == sim.total_sensors
        per_sensor = expected // sim.total_sensors
        for s in sids:
            for idx in cluster.partitioner.replicas_for(s, cluster.replication):
                ts, _ = raw_nodes[idx].query(s, 0, 2**63 - 1)
                assert ts.size == per_sensor, (
                    f"replica node{idx} of {s} holds {ts.size}/{per_sensor}"
                )

    @pytest.mark.slow
    def test_failover_counters_visible_on_metrics_exposition(self):
        sim = ingest_with_node_outage(CHAOS_SEEDS[0], seconds=15)
        # Query while node1 is still down (killed at t=10s, restart at 30s)
        # so the read path actually fails over.
        s = SensorId.from_codes([0, 0, 0])
        for cand in sim.backend.sids():
            if 1 in sim.backend.partitioner.replicas_for(cand, 2):
                s = cand
                break
        sim.backend.query(s, 0, 2**63 - 1)
        text = render_prometheus(
            merge_snapshots(r.collect() for r in sim.agent.metrics_registries())
        )
        families = parse_prometheus_text(text)
        assert "dcdb_storage_hints_queued_total" in families
        assert "dcdb_storage_hints_replayed_total" in families
        assert "dcdb_storage_read_failovers_total" in families
        assert "dcdb_storage_write_retries_total" in families
        assert "dcdb_storage_hints_pending" in families
        assert "dcdb_storage_node_up" in families

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_same_seed_reproduces_identical_run(self, seed):
        def fingerprint():
            sim = ingest_with_node_outage(seed, seconds=35)
            cluster = sim.backend
            return (
                sim.agent.readings_stored,
                sim.agent.store_errors,
                cluster.metrics.value("dcdb_storage_hints_queued_total"),
                cluster.metrics.value("dcdb_storage_hints_replayed_total"),
                cluster.metrics.value("dcdb_storage_write_retries_total"),
                tuple(proxy.node.row_count for proxy in sim.flaky_nodes),
                tuple(proxy.kills for proxy in sim.flaky_nodes),
            )

        assert fingerprint() == fingerprint()


class TestRollupSurvivesNodeOutage:
    """A storage node dies mid-rollup-flush and rejoins later: rollup
    series are ordinary series, so hinted handoff recovers them like
    raw data, and the sealed tiers show no gap versus recomputing the
    aggregates from raw."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_rollups_recover_via_hinted_handoff(self, seed):
        plan = FaultPlan(seed)
        plan.kill_at(10 * NS_PER_SEC, "node1")
        plan.restart_at(30 * NS_PER_SEC, "node1")
        sim = SimulatedCluster(
            SimClusterConfig(
                hosts=2,
                sensors_per_host=10,
                interval_ms=1000,
                storage_nodes=3,
                replication=2,
                fault_plan=plan,
                rollup_config=RollupConfig(),
            )
        )
        for _ in range(50):
            sim.run(1.0)
        sim.agent.rollup.flush()
        for _ in range(10):
            if sim.backend.hints_pending == 0:
                break
            sim.backend.replay_hints()
        cluster = sim.backend
        assert cluster.metrics.value("dcdb_storage_hints_queued_total") > 0
        assert cluster.hints_pending == 0
        raw_sids = [s for s in cluster.sids() if not is_rollup_sid(s)]
        assert len(raw_sids) == sim.total_sensors
        bucket_ns = ROLLUP_TIERS[0].bucket_ns
        for sid in raw_sids:
            coverage = sim.agent.rollup.coverage(sid, 0)
            assert coverage is not None
            lo, hi = coverage
            assert hi - lo >= 3 * bucket_ns  # sealing progressed through the outage
            raw_ts, raw_vals = cluster.query(sid, lo, hi - 1)
            starts, mins, maxs, sums, counts = aggregate_buckets(
                raw_ts, raw_vals, bucket_ns
            )
            for field_index, expect in enumerate((mins, maxs, sums, counts)):
                fsid = rollup_sid(sid, 0, field_index)
                got_ts, got_vals = cluster.query(fsid, lo, hi - 1)
                assert got_ts.tolist() == starts.tolist(), f"gap in {fsid}"
                assert got_vals.tolist() == expect.tolist()
        # Both replicas of a rollup series hold it fully after replay —
        # read the raw nodes underneath the fault proxies directly.
        raw_nodes = [proxy.node for proxy in sim.flaky_nodes]
        fsid = rollup_sid(raw_sids[0], 0, 3)
        replicas = cluster.partitioner.replicas_for(fsid, cluster.replication)
        sizes = [
            raw_nodes[idx].query(fsid, 0, 2**63 - 1)[0].size for idx in replicas
        ]
        assert sizes[0] == sizes[1] > 0


class TestFlakyBackendDuringFlush:
    """The writer re-queues failed flush batches: a backend that fails
    probabilistically loses nothing as long as it eventually accepts."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_zero_loss_through_flaky_flushes(self, seed):
        inner = MemoryBackend()
        backend = FaultyBackend(inner, plan=FaultPlan(seed), fault_rate=0.2)
        writer = BatchingWriter(
            backend,
            WriterConfig(
                max_batch=50,
                poll_interval_s=0.001,
                flush_retries=1000,
                retry_backoff_s=0.0,
            ),
        )
        sid = SensorId.from_codes([1, 2, 3])
        total = 2000
        for t in range(total):
            writer.put([(sid, t, t, 0)])
        writer.stop()  # drain-on-stop must persist every staged reading
        assert inner.count(sid, 0, total) == total
        assert backend.faults_injected > 0
        assert writer.requeued > 0
        assert writer.lost == 0

    def test_flush_outage_recovers_when_backend_returns(self):
        inner = MemoryBackend()
        backend = FaultyBackend(inner)
        writer = BatchingWriter(
            backend,
            WriterConfig(
                max_batch=10,
                poll_interval_s=0.001,
                flush_retries=10_000,
                retry_backoff_s=0.0,
            ),
        )
        sid = SensorId.from_codes([1, 2, 3])
        backend.set_down(True)
        for t in range(100):
            writer.put([(sid, t, t, 0)])
        time.sleep(0.05)  # flush loop spins against the dead backend
        assert inner.count(sid, 0, 1000) == 0
        backend.set_down(False)
        assert writer.drain(10.0)
        assert inner.count(sid, 0, 1000) == 100
        writer.stop()


class TestBrokerDisconnectMidPublish:
    """The broker drops a publisher's socket mid-stream; the publisher
    reconnects and re-sends, and no payload is lost end to end."""

    @pytest.mark.slow
    def test_publisher_survives_injected_disconnect(self):
        injector = BrokerFaultInjector()
        broker = MQTTBroker("127.0.0.1", 0, fault_injector=injector)
        broker.start()
        try:
            received = set()
            watcher = MQTTClient("chaos-watch", port=broker.port)
            watcher.connect()
            watcher.subscribe("/chaos/#", lambda t, p: received.add(bytes(p)))

            # CONNECT is the first chunk; cut the cord a few PUBLISHes in.
            injector.disconnect_client_after("chaos-pub", chunks=5)
            publisher = MQTTClient("chaos-pub", port=broker.port)
            publisher.connect()
            payloads = [f"m{i}".encode() for i in range(20)]
            for payload in payloads:
                for attempt in range(5):
                    try:
                        publisher.publish(
                            "/chaos/t", payload, qos=1, wait_ack=True, timeout=2.0
                        )
                        break
                    except (TransportError, OSError, TimeoutError):
                        publisher.disconnect()
                        publisher = MQTTClient("chaos-pub", port=broker.port)
                        publisher.connect()
                else:
                    pytest.fail(f"payload {payload!r} never acked")

            assert injector.disconnects == 1
            deadline = time.monotonic() + 5
            while received != set(payloads) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert received == set(payloads)
            publisher.disconnect()
            watcher.disconnect()
        finally:
            broker.stop()

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_probabilistic_drops_are_per_seed_deterministic(self, seed):
        def decisions():
            injector = BrokerFaultInjector(plan=FaultPlan(seed), drop_rate=0.1)
            return [injector.on_data("c", b"chunk") for _ in range(200)]

        assert decisions() == decisions()


class TestBrokerBounceMidRun:
    """The broker process itself bounces (stop, restart on the same
    port) while an auto-reconnecting publisher is mid-run, with the
    injection seam additionally severing the publisher's socket before
    the bounce.  QoS-1 queue-and-replay must deliver every payload at
    least once across both broker incarnations — zero loss."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_zero_loss_across_bounce(self, seed):
        received = set()

        def hook(client_id, publish):
            received.add(bytes(publish.payload))

        injector = BrokerFaultInjector(plan=FaultPlan(seed))
        broker = MQTTBroker("127.0.0.1", 0, fault_injector=injector)
        broker.add_publish_hook(hook)
        broker.start()
        port = broker.port
        publisher = MQTTClient(
            "bounce-pub", port=port, keepalive=0, reconnect_min_delay_s=0.05
        )
        publisher.connect()
        payloads = [f"bounce-{seed}-{i}".encode() for i in range(60)]
        try:
            # Injected cut a few chunks in (CONNECT is the first), then
            # a full broker bounce mid-run: two distinct outages.
            injector.disconnect_client_after("bounce-pub", chunks=4)
            for i, payload in enumerate(payloads):
                publisher.publish("/bounce/t", payload, qos=1)
                if i == 30:
                    broker.stop()
                    broker = MQTTBroker("127.0.0.1", port, fault_injector=injector)
                    broker.add_publish_hook(hook)
                    broker.start()
                time.sleep(0.005)
            deadline = time.monotonic() + 20
            while received != set(payloads) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert received == set(payloads), (
                f"lost {sorted(set(payloads) - received)}"
            )
            assert injector.disconnects == 1
            assert publisher.reconnects >= 2  # seam cut + bounce
        finally:
            publisher.disconnect()
            broker.stop()
