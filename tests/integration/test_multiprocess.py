"""Multi-process deployment: the installed daemons as real processes.

Launches ``dcdb-collectagent`` and ``dcdb-pusher`` (the console entry
points a production deployment runs) as subprocesses, verifies data
flows over real TCP between real processes, drives the Pusher's REST
API from outside, and finally queries the persisted SQLite store with
``dcdb-query`` — the full operational story with no in-process
shortcuts anywhere.
"""

import os
import shutil
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.common.httpjson import http_json

AGENT_BIN = shutil.which("dcdb-collectagent")
PUSHER_BIN = shutil.which("dcdb-pusher")
QUERY_BIN = shutil.which("dcdb-query")

pytestmark = pytest.mark.skipif(
    not (AGENT_BIN and PUSHER_BIN and QUERY_BIN),
    reason="console entry points not installed",
)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(predicate, timeout=15.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def rest_status(port: int):
    try:
        return http_json("GET", f"http://127.0.0.1:{port}/status", timeout=2.0)
    except OSError:
        return None, None


class TestFullDeployment:
    def test_daemons_end_to_end(self, tmp_path):
        mqtt_port = free_port()
        agent_rest = free_port()
        pusher_rest = free_port()
        db_path = tmp_path / "monitor.db"
        agent_conf = tmp_path / "agent.conf"
        agent_conf.write_text(
            f"""
            global {{
                mqttHost 127.0.0.1
                mqttPort {mqtt_port}
                restPort {agent_rest}
                db sqlite:{db_path}
            }}
            """
        )
        pusher_conf = tmp_path / "pusher.conf"
        pusher_conf.write_text(
            f"""
            global {{
                mqttPrefix /mp/node0
                brokerHost 127.0.0.1
                brokerPort {mqtt_port}
                restPort {pusher_rest}
            }}
            plugin tester {{
                config {{
                    group g {{ interval 200
                               numSensors 4 }}
                }}
            }}
            """
        )
        env = dict(os.environ)
        agent = subprocess.Popen(
            [AGENT_BIN, str(agent_conf)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        pusher = None
        try:
            assert wait_for(lambda: rest_status(agent_rest)[0] == 200), (
                agent.stderr.read() if agent.poll() is not None else "agent REST never up"
            )
            pusher = subprocess.Popen(
                [PUSHER_BIN, str(pusher_conf)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
            )
            assert wait_for(lambda: rest_status(pusher_rest)[0] == 200)

            # Data flows process-to-process over TCP.
            def stored():
                status, body = rest_status(agent_rest)
                return status == 200 and body["readingsStored"] >= 20

            assert wait_for(stored, timeout=30.0)

            # Drive the pusher's REST API from outside: stop and
            # restart the plugin.
            status, _ = http_json(
                "POST",
                f"http://127.0.0.1:{pusher_rest}/plugins/tester/stop",
                body={},
            )
            assert status == 200
            _, before = rest_status(agent_rest)
            time.sleep(0.6)
            _, after = rest_status(agent_rest)
            assert after["readingsStored"] - before["readingsStored"] <= 4
            http_json(
                "POST",
                f"http://127.0.0.1:{pusher_rest}/plugins/tester/start",
                body={},
            )

            # Cache endpoint serves latest readings of a live sensor.
            def cache_warm():
                status, body = http_json(
                    "GET",
                    f"http://127.0.0.1:{pusher_rest}/cache?topic=/mp/node0/g/s0",
                    timeout=2.0,
                )
                return status == 200 and len(body) > 0

            assert wait_for(cache_warm)
        finally:
            if pusher is not None:
                pusher.send_signal(signal.SIGTERM)
                pusher.wait(timeout=10)
            agent.send_signal(signal.SIGTERM)
            agent.wait(timeout=10)

        # Post-mortem: the SQLite store is queryable with dcdb-query.
        result = subprocess.run(
            [QUERY_BIN, "--db", f"sqlite:{db_path}", "--list", "/mp"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert result.returncode == 0, result.stderr
        topics = result.stdout.split()
        assert len(topics) == 4
        result = subprocess.run(
            [QUERY_BIN, "--db", f"sqlite:{db_path}", topics[0], "--summary"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert result.returncode == 0
        # >= 20 readings flowed in total across 4 sensors, so each
        # sensor persisted at least 5.
        count = int(result.stdout.strip().splitlines()[1].split(",")[1])
        assert count >= 5
