"""Durability chaos battery: process death mid-ingest, torn logs.

The acceptance claims for the durable storage engine, exercised the
hard way and seeded like the rest of the chaos suite
(``CHAOS_SEEDS=...`` overrides; see docs/durability.md):

* ``kill -9`` mid-ingest under ``fsync=always`` loses **zero
  acknowledged writes**: recovery reproduces a state whose
  fingerprint is bit-identical to replaying the same accepted batches
  into a fresh node.
* A torn WAL tail or a flipped CRC byte — the artefacts of power loss
  and bit rot — recover to the last valid record, never to a refusal
  to start and never to garbage.
* The full simulated pipeline (Pushers -> Collect Agent -> durable
  node) persists everything it acknowledged across an abandon-and-
  reopen of the data directory.
"""

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core.collectagent import WriterConfig
from repro.core.sid import SensorId
from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster
from repro.storage.durable import DurableNode

CHAOS_SEEDS = [
    int(s) for s in os.environ.get("CHAOS_SEEDS", "101,202,303,404,505").split(",")
]

SIDS = [SensorId.from_codes([7, i]) for i in range(1, 9)]
BATCH_ROWS = 20


def workload_batches(seed, count):
    """The deterministic ingest stream for one seed.

    Parent and killed child both derive batches from the same
    ``random.Random(seed)``, so "replay the accepted prefix" is exact.
    """
    rng = random.Random(seed)
    batches = []
    for b in range(count):
        batches.append(
            [
                (
                    SIDS[rng.randrange(len(SIDS))],
                    b * 1000 + i,
                    rng.randint(-(1 << 40), 1 << 40),
                    0,
                )
                for i in range(BATCH_ROWS)
            ]
        )
    return batches


def recovered_batch_count(node):
    """Distinct batch indices present (batches are atomic WAL records,
    so presence is always a prefix)."""
    high = -1
    for sid in node.sids():
        ts, _ = node.query(sid, 0, (1 << 63) - 1)
        if ts.size:
            high = max(high, int(ts[-1]) // 1000)
    return high + 1


def reference_fingerprint(tmp_path, seed, n_batches):
    ref = DurableNode("ref", data_dir=tmp_path / f"ref-{seed}", fsync="off")
    for batch in workload_batches(seed, n_batches):
        ref.insert_batch(batch)
    fp = ref.state_fingerprint()
    ref.close()
    return fp


class TestCrashRecoveryInProcess:
    """Abandon the node object mid-ingest (no close, no flush): the
    moral equivalent of a crash for everything already fsynced."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_recovery_fingerprint_bit_identical(self, tmp_path, seed):
        node = DurableNode("c0", data_dir=tmp_path / "c0", fsync="always")
        batches = workload_batches(seed, 30)
        for batch in batches:
            node.insert_batch(batch)  # fsync=always: acked == durable
        del node  # crash: no close, no flush, memtable gone

        recovered = DurableNode("c0", data_dir=tmp_path / "c0", fsync="always")
        assert recovered.recovery_info["wal_records_replayed"] == 30
        assert recovered_batch_count(recovered) == 30
        fp = recovered.state_fingerprint()
        recovered.close()
        assert fp == reference_fingerprint(tmp_path, seed, 30)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_replay_spilling_memtable_survives_reopen_chain(self, tmp_path, seed):
        """Recovery whose WAL replay overflows the memtable (flush
        threshold smaller than the replayed row count, e.g. after a
        config change across restart) seals mid-replay; those frozen
        rows must survive a second and third reopen bit-identically —
        the WAL the checkpoint truncates was their only durable copy."""
        node = DurableNode("c0", data_dir=tmp_path / "c0", fsync="always")
        batches = workload_batches(seed, 30)
        for batch in batches:
            node.insert_batch(batch)
        del node  # crash: 600 rows live only in the WAL

        # 600 replayed rows against a 128-row memtable: several seals
        # fire mid-replay before the recovery-ending checkpoint.
        fp = None
        for reopen in range(3):
            recovered = DurableNode(
                "c0", data_dir=tmp_path / "c0", fsync="always", flush_threshold=128
            )
            assert recovered_batch_count(recovered) == 30, f"loss at reopen {reopen}"
            if fp is None:
                fp = recovered.state_fingerprint()
            else:
                assert recovered.state_fingerprint() == fp, f"drift at reopen {reopen}"
            recovered.close()
        assert fp == reference_fingerprint(tmp_path, seed, 30)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_torn_tail_recovers_to_last_valid_record(self, tmp_path, seed):
        node = DurableNode("c0", data_dir=tmp_path / "c0", fsync="always")
        for batch in workload_batches(seed, 30):
            node.insert_batch(batch)
        del node
        # Power loss tears the last frame: chop a seeded number of
        # bytes off the tail (at most one record's worth).
        log = max((tmp_path / "c0").glob("wal-*.log"))
        raw = log.read_bytes()
        chop = random.Random(seed).randrange(1, 500)
        log.write_bytes(raw[: len(raw) - chop])

        recovered = DurableNode("c0", data_dir=tmp_path / "c0", fsync="always")
        info = recovered.recovery_info
        assert info["wal_truncations"], "tear must be diagnosed"
        n = recovered_batch_count(recovered)
        assert n == 29  # exactly the last record lost, nothing else
        fp = recovered.state_fingerprint()
        recovered.close()
        assert fp == reference_fingerprint(tmp_path, seed, n)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_corrupt_crc_recovers_prefix(self, tmp_path, seed):
        node = DurableNode("c0", data_dir=tmp_path / "c0", fsync="always")
        for batch in workload_batches(seed, 30):
            node.insert_batch(batch)
        del node
        log = max((tmp_path / "c0").glob("wal-*.log"))
        raw = bytearray(log.read_bytes())
        # Flip a payload bit of frame 15 (frame = 20-byte header +
        # 4-byte count + 20 rows x 40 bytes; offset seeded within the
        # payload so the CRC check — not header parsing — catches it).
        frame = 24 + BATCH_ROWS * 40
        raw[15 * frame + 20 + random.Random(seed).randrange(frame - 24)] ^= 0x04
        log.write_bytes(bytes(raw))

        recovered = DurableNode("c0", data_dir=tmp_path / "c0", fsync="always")
        truncations = recovered.recovery_info["wal_truncations"]
        assert truncations and "CRC mismatch" in truncations[0]
        n = recovered_batch_count(recovered)
        assert n == 15
        fp = recovered.state_fingerprint()
        recovered.close()
        assert fp == reference_fingerprint(tmp_path, seed, n)


_CHILD_SCRIPT = """
import os, random, sys
sys.path.insert(0, sys.argv[3])
from repro.core.sid import SensorId
from repro.storage.durable import DurableNode

data_dir, seed = sys.argv[1], int(sys.argv[2])
SIDS = [SensorId.from_codes([7, i]) for i in range(1, 9)]
rng = random.Random(seed)
node = DurableNode("kill0", data_dir=data_dir, fsync="always")
acked = open(os.path.join(os.path.dirname(data_dir), "acked.txt"), "w")
for b in range(100_000):
    items = [
        (SIDS[rng.randrange(len(SIDS))], b * 1000 + i,
         rng.randint(-(1 << 40), 1 << 40), 0)
        for i in range(20)
    ]
    node.insert_batch(items)  # durable before the ack below
    acked.seek(0)
    acked.write(f"{b + 1}\\n")
    acked.flush()
    os.fsync(acked.fileno())
"""


class TestKillNineMidIngest:
    """A real process, a real SIGKILL, no cleanup handlers: the child
    acknowledges each batch only after ``fsync=always`` made it
    durable, so every acknowledged batch must survive."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_zero_acked_loss_and_identical_fingerprint(self, tmp_path, seed):
        data_dir = tmp_path / "kill0"
        acked_path = tmp_path / "acked.txt"
        src_root = str(Path(repro.__file__).resolve().parents[1])
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT, str(data_dir), str(seed), src_root],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    if int(acked_path.read_text().split()[0]) >= 10:
                        break
                except (OSError, ValueError, IndexError):
                    pass
                if child.poll() is not None:
                    pytest.fail(
                        f"child exited early: {child.stderr.read().decode()}"
                    )
                time.sleep(0.002)
            else:
                pytest.fail("child never reached 10 acked batches")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait()
            if child.stderr:
                child.stderr.close()
        acked = int(acked_path.read_text().split()[0])
        assert acked >= 10

        recovered = DurableNode("kill0", data_dir=data_dir, fsync="always")
        n = recovered_batch_count(recovered)
        # Zero acknowledged loss; at most in-flight unacked extras.
        assert n >= acked, f"lost acked batches: recovered {n} < acked {acked}"
        fp = recovered.state_fingerprint()
        recovered.close()
        assert fp == reference_fingerprint(tmp_path, seed, n)


class TestPipelineDurability:
    """Figure-8 topology over a durable node: everything the agent
    acknowledged is still there when a fresh node opens the directory."""

    @pytest.mark.slow
    def test_simulated_cluster_state_survives_reopen(self, tmp_path):
        sim = SimulatedCluster(
            SimClusterConfig(
                hosts=2,
                sensors_per_host=20,
                interval_ms=1000,
                storage_nodes=1,
                data_dir=str(tmp_path),
                fsync="interval",
                writer_config=WriterConfig(max_batch=256, poll_interval_s=0.001),
            )
        )
        stored = 0
        for _ in range(10):
            stored += sim.run(1.0)
        assert stored == sim.expected_readings(10)
        sim.stop()

        recovered = DurableNode("node0", data_dir=tmp_path / "node0")
        total = sum(
            recovered.query(sid, 0, (1 << 63) - 1)[0].size
            for sid in recovered.sids()
        )
        assert total == stored
        assert len(recovered.sids()) == sim.total_sensors
        recovered.close()
