"""Tests for the Grafana JSON data source."""

import json
import urllib.request

import pytest

from repro.common.httpjson import http_json
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.grafana import GrafanaDataSource
from repro.libdcdb.api import DCDBClient, SensorConfig
from repro.libdcdb.virtualsensors import VirtualSensorDef
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage import MemoryBackend


@pytest.fixture
def datasource():
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/g/rack0/node0"),
        client=InProcClient("p", hub),
        clock=SimClock(0),
    )
    pusher.load_plugin(
        "tester",
        "group power { interval 1000\n numSensors 2\n generator constant\n startValue 300 }",
    )
    pusher.client.connect()
    pusher.start_plugin("tester")
    pusher.advance_to(120 * NS_PER_SEC)
    client = DCDBClient(backend)
    for i in range(2):
        client.set_sensor_config(
            SensorConfig(topic=f"/g/rack0/node0/power/s{i}", unit="W")
        )
    client.define_virtual_sensor(
        VirtualSensorDef(
            name="rack_power", expression="sum(</g/rack0>)", unit="W"
        )
    )
    with GrafanaDataSource(client) as ds:
        yield ds


def post(ds, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{ds.port}{path}",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


class TestDataSource:
    def test_health(self, datasource):
        status, body = http_json("GET", f"http://127.0.0.1:{datasource.port}/")
        assert status == 200 and body["status"] == "ok"

    def test_search_lists_metrics(self, datasource):
        status, body = post(datasource, "/search", {"target": "/g"})
        assert status == 200
        assert "/g/rack0/node0/power/s0" in body

    def test_search_includes_virtual_sensors(self, datasource):
        _, body = post(datasource, "/search", {"target": "/virtual"})
        assert "/virtual/rack_power" in body

    def test_query_series(self, datasource):
        status, body = post(
            datasource,
            "/query",
            {
                "range": {"from_ns": 0, "to_ns": 200 * NS_PER_SEC},
                "targets": [{"target": "/g/rack0/node0/power/s0"}],
            },
        )
        assert status == 200
        series = body[0]
        assert series["target"] == "/g/rack0/node0/power/s0"
        assert len(series["datapoints"]) == 120
        value, ts_ms = series["datapoints"][0]
        assert value == 300.0
        assert ts_ms == 1000  # epoch ms

    def test_query_downsamples_to_max_points(self, datasource):
        _, body = post(
            datasource,
            "/query",
            {
                "range": {"from_ns": 0, "to_ns": 200 * NS_PER_SEC},
                "targets": [{"target": "/g/rack0/node0/power/s0"}],
                "maxDataPoints": 10,
            },
        )
        assert len(body[0]["datapoints"]) <= 12

    def test_query_virtual_sensor(self, datasource):
        _, body = post(
            datasource,
            "/query",
            {
                "range": {"from_ns": NS_PER_SEC, "to_ns": 100 * NS_PER_SEC},
                "targets": [{"target": "/virtual/rack_power"}],
            },
        )
        points = body[0]["datapoints"]
        assert points and points[0][0] == pytest.approx(600.0, abs=0.01)

    def test_query_unknown_topic_reports_error(self, datasource):
        _, body = post(
            datasource,
            "/query",
            {
                "range": {"from_ns": 0, "to_ns": 10},
                "targets": [{"target": "/ghost"}],
            },
        )
        assert body[0]["datapoints"] == []
        assert "error" in body[0]

    def test_multiple_targets(self, datasource):
        _, body = post(
            datasource,
            "/query",
            {
                "range": {"from_ns": 0, "to_ns": 200 * NS_PER_SEC},
                "targets": [
                    {"target": "/g/rack0/node0/power/s0"},
                    {"target": "/g/rack0/node0/power/s1"},
                ],
            },
        )
        assert len(body) == 2

    def test_hierarchy_drilldown(self, datasource):
        # The paper's Figure 3 drop-down navigation.
        status, body = http_json(
            "GET", f"http://127.0.0.1:{datasource.port}/hierarchy?prefix="
        )
        assert body == ["g"]
        _, body = http_json(
            "GET", f"http://127.0.0.1:{datasource.port}/hierarchy?prefix=/g/rack0"
        )
        assert body == ["node0"]
        _, body = http_json(
            "GET",
            f"http://127.0.0.1:{datasource.port}/hierarchy?prefix=/g/rack0/node0/power",
        )
        assert body == ["s0", "s1"]
