"""Unit tests for the pipeline tracer and payload origin peeking."""

from __future__ import annotations

import pytest

from repro.common.timeutil import SimClock
from repro.core.payload import encode_reading, encode_readings
from repro.core.sensor import SensorReading
from repro.observability import (
    HOPS,
    PIPELINE_METRIC,
    MetricsRegistry,
    PipelineTracer,
    payload_origin_ns,
)


class TestPayloadOrigin:
    def test_single_record(self):
        assert payload_origin_ns(encode_reading(123_456, 7)) == 123_456

    def test_multi_record_returns_first(self):
        payload = encode_readings(
            [SensorReading(100, 1), SensorReading(200, 2)]
        )
        assert payload_origin_ns(payload) == 100

    def test_non_reading_payloads_rejected(self):
        assert payload_origin_ns(b"") is None
        assert payload_origin_ns(b"short") is None
        assert payload_origin_ns(b"x" * 17) is None


class TestPipelineTracer:
    def test_stamp_observes_latency_in_seconds(self):
        clock = SimClock(5_000_000_000)
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry, clock=clock)
        tracer.stamp("collect", 4_000_000_000)  # 1 s old
        stats = tracer.percentiles("collect")
        assert stats["count"] == 1
        assert 0.5 <= stats["p50"] <= 2.5

    def test_negative_latency_clamps_to_zero(self):
        clock = SimClock(0)
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry, clock=clock)
        tracer.stamp("collect", 10_000_000_000)  # origin in the future
        assert tracer.percentiles("collect")["count"] == 1

    def test_all_hops_share_one_family(self):
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry, clock=SimClock(0))
        for hop in HOPS:
            tracer.stamp(hop, 0)
        family = registry.get(PIPELINE_METRIC)
        assert {dict(s.labels)["hop"] for s in family.snapshot().samples} == set(HOPS)

    def test_two_tracers_one_registry_share_histogram(self):
        registry = MetricsRegistry()
        a = PipelineTracer(registry, clock=SimClock(0))
        b = PipelineTracer(registry, clock=SimClock(0))
        a.stamp("insert", 0)
        b.stamp("insert", 0)
        assert registry.value(PIPELINE_METRIC, {"hop": "insert"}) == 2.0

    def test_sampling_knob_thins_stamps(self):
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry, clock=SimClock(0), sample_every=10)
        sampled = sum(tracer.should_sample() for _ in range(100))
        assert sampled == 10

    def test_sample_every_zero_disables(self):
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry, clock=SimClock(0), sample_every=0)
        assert not any(tracer.should_sample() for _ in range(50))

    def test_negative_sample_every_rejected(self):
        with pytest.raises(ValueError):
            PipelineTracer(MetricsRegistry(), sample_every=-1)

    def test_percentiles_none_before_any_stamp(self):
        tracer = PipelineTracer(MetricsRegistry(), clock=SimClock(0))
        assert tracer.percentiles("commit") is None

    def test_stamp_payload_ignores_non_reading(self):
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry, clock=SimClock(0))
        tracer.stamp_payload("dispatch", b'{"json": "metadata"}')
        assert tracer.percentiles("dispatch") is None
