"""Histogram snapshot-merge edge cases and exemplar attachment.

Companion to ``test_metrics.py``: the cases that bit during the
tracing work — the implicit ``+Inf`` bucket across merges, label
children created concurrently, and exemplars surviving (only) the
JSON exposition.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    merge_snapshots,
    parse_prometheus_text,
    render_json,
    render_prometheus,
)


class TestInfBucketMerge:
    def test_overflow_observations_survive_merge(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("lat", "", buckets=(1.0,)).observe(50.0)   # +Inf only
        r2.histogram("lat", "", buckets=(1.0,)).observe(0.5)
        merged = {f.name: f for f in merge_snapshots([r1.collect(), r2.collect()])}
        (sample,) = merged["lat"].samples
        assert sample.count == 2
        assert dict(sample.buckets) == {1.0: 1, math.inf: 2}
        assert sample.sum == pytest.approx(50.5)

    def test_merge_of_empty_with_populated(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("lat", "", buckets=(1.0,))
        r2.histogram("lat", "", buckets=(1.0,)).observe(2.0)
        merged = {f.name: f for f in merge_snapshots([r1.collect(), r2.collect()])}
        (sample,) = merged["lat"].samples
        assert sample.count == 1
        assert dict(sample.buckets)[math.inf] == 1

    def test_mismatched_bounds_rejected(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("lat", "", buckets=(1.0,)).observe(0.5)
        r2.histogram("lat", "", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([r1.collect(), r2.collect()])

    def test_merged_exposition_still_validates(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("lat", "", buckets=(1.0,)).observe(10.0)
        r2.histogram("lat", "", buckets=(1.0,)).observe(0.1)
        text = render_prometheus(merge_snapshots([r1.collect(), r2.collect()]))
        assert parse_prometheus_text(text)["lat"]["type"] == "histogram"


class TestConcurrentLabelCreation:
    def test_children_created_under_contention_lose_nothing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("conc", "", ("worker",), buckets=(0.5,))
        threads_n, per_thread = 8, 500

        def hammer(idx: int) -> None:
            # Every thread races to create several distinct children.
            for i in range(per_thread):
                hist.labels(worker=str((idx + i) % 16)).observe(0.1)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        samples = registry.get("conc").snapshot().samples
        assert len(samples) == 16  # one child per distinct label value
        assert sum(s.count for s in samples) == threads_n * per_thread

    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "", ("x",))
        children = set()

        def grab() -> None:
            children.add(id(hist.labels(x="a")))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(children) == 1


class TestExemplars:
    def test_observe_attaches_exemplar_to_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "", buckets=(1.0, 10.0))
        hist.observe(0.5, exemplar="aaaa")
        hist.observe(5.0, exemplar="bbbb")
        hist.observe(500.0, exemplar="cccc")  # lands in +Inf
        (sample,) = registry.get("lat").snapshot().samples
        exemplars = {label: (bound, value) for bound, label, value in sample.exemplars}
        assert exemplars["aaaa"] == (1.0, 0.5)
        assert exemplars["bbbb"] == (10.0, 5.0)
        assert exemplars["cccc"] == (math.inf, 500.0)

    def test_newest_exemplar_per_bucket_wins(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "", buckets=(1.0,))
        hist.observe(0.3, exemplar="old")
        hist.observe(0.7, exemplar="new")
        (sample,) = registry.get("lat").snapshot().samples
        assert [label for _, label, _ in sample.exemplars] == ["new"]

    def test_observation_without_exemplar_keeps_previous(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "", buckets=(1.0,))
        hist.observe(0.3, exemplar="keep")
        hist.observe(0.7)
        (sample,) = registry.get("lat").snapshot().samples
        assert [label for _, label, _ in sample.exemplars] == ["keep"]

    def test_merge_carries_exemplars_with_later_snapshot_winning(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("lat", "", buckets=(1.0, 10.0)).observe(0.5, exemplar="first")
        h2 = r2.histogram("lat", "", buckets=(1.0, 10.0))
        h2.observe(0.6, exemplar="second")
        h2.observe(5.0, exemplar="mid")
        merged = {f.name: f for f in merge_snapshots([r1.collect(), r2.collect()])}
        (sample,) = merged["lat"].samples
        by_bound = {bound: label for bound, label, _ in sample.exemplars}
        assert by_bound[1.0] == "second"  # later snapshot replaced "first"
        assert by_bound[10.0] == "mid"

    def test_json_rendering_exposes_exemplars(self):
        registry = MetricsRegistry()
        registry.histogram("lat", "", buckets=(1.0,)).observe(0.5, exemplar="cafe")
        doc = render_json(registry.collect())
        (sample,) = doc["lat"]["samples"]
        assert sample["exemplars"] == [{"le": 1.0, "traceId": "cafe", "value": 0.5}]

    def test_text_rendering_omits_exemplars_but_stays_valid(self):
        registry = MetricsRegistry()
        registry.histogram("lat", "", buckets=(1.0,)).observe(0.5, exemplar="cafe")
        text = render_prometheus(registry.collect())
        assert "cafe" not in text
        parse_prometheus_text(text)  # still strict-parseable
