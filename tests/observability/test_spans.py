"""Unit tests for span recording, trace context, and runtime probes."""

from __future__ import annotations

import io
import json
import logging
import threading

import pytest

from repro.observability import (
    EVENTLOOP_LAG_METRIC,
    EventLoopLagProbe,
    JsonFormatter,
    MetricsRegistry,
    SpanRecorder,
    current_trace,
    new_trace_id,
    trace_context,
)


class TestTraceIds:
    def test_unique_and_nonzero(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert 0 not in ids

    def test_fits_in_63_bits(self):
        for _ in range(100):
            assert 0 < new_trace_id() < (1 << 63)


class TestSpanRecorder:
    def test_record_and_fetch(self):
        rec = SpanRecorder()
        tid = new_trace_id()
        rec.record(tid, "collect", "pusher", 10, 20, sid="/a/b")
        rec.record(tid, "publish", "pusher", 20, 30)
        spans = rec.trace(tid)
        assert [s.name for s in spans] == ["collect", "publish"]
        assert spans[0].attributes == {"sid": "/a/b"}
        assert spans[0].as_dict()["durationNs"] == 10

    def test_none_trace_id_is_noop(self):
        rec = SpanRecorder()
        rec.record(None, "collect", "pusher", 0, 1)
        assert len(rec) == 0

    def test_unknown_trace_returns_empty(self):
        assert SpanRecorder().trace(12345) == []

    def test_capacity_evicts_oldest_per_stripe(self):
        rec = SpanRecorder(capacity=4, stripes=2)
        # Same stripe (even ids): only the newest 2 survive.
        for tid in (2, 4, 6, 8):
            rec.record(tid, "s", "c", tid, tid + 1)
        assert rec.trace(2) == []
        assert rec.trace(4) == []
        assert len(rec.trace(6)) == 1
        assert len(rec.trace(8)) == 1

    def test_span_cap_per_trace(self):
        rec = SpanRecorder(max_spans_per_trace=3)
        for i in range(10):
            rec.record(7, f"s{i}", "c", i, i + 1)
        assert len(rec.trace(7)) == 3

    def test_traces_newest_first_and_limit(self):
        rec = SpanRecorder()
        for tid, start in ((1, 100), (2, 300), (3, 200)):
            rec.record(tid, "s", "c", start, start + 10)
        docs = rec.traces(limit=2)
        assert [d["startNs"] for d in docs] == [300, 200]

    def test_traces_sid_filter_matches_topic_substring(self):
        rec = SpanRecorder()
        rec.record(1, "dispatch", "broker", 0, 1, topic="/rack0/node3/power")
        rec.record(2, "dispatch", "broker", 0, 1, topic="/rack1/node9/temp")
        docs = rec.traces(sid="node3")
        assert [d["traceId"] for d in docs] == [f"{1:016x}"]

    def test_traces_min_latency_filter(self):
        rec = SpanRecorder()
        rec.record(1, "s", "c", 0, 100)
        rec.record(2, "s", "c", 0, 10_000)
        docs = rec.traces(min_latency_ns=1000)
        assert [d["traceId"] for d in docs] == [f"{2:016x}"]

    def test_clear(self):
        rec = SpanRecorder()
        rec.record(1, "s", "c", 0, 1)
        rec.clear()
        assert len(rec) == 0

    def test_concurrent_recording_is_safe(self):
        rec = SpanRecorder(capacity=64)
        def hammer(base: int) -> None:
            for i in range(500):
                rec.record(base + (i % 8), "s", "c", i, i + 1)
        threads = [threading.Thread(target=hammer, args=(b,)) for b in (1, 100, 200)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) <= 64


class TestTraceContext:
    def test_defaults_to_none(self):
        assert current_trace() is None

    def test_sets_and_restores(self):
        with trace_context(42):
            assert current_trace() == 42
            with trace_context(43):
                assert current_trace() == 43
            assert current_trace() == 42
        assert current_trace() is None

    def test_none_is_passthrough(self):
        with trace_context(7):
            with trace_context(None):
                assert current_trace() == 7

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace_context(42):
                raise RuntimeError("boom")
        assert current_trace() is None

    def test_does_not_cross_threads(self):
        seen = []
        with trace_context(42):
            t = threading.Thread(target=lambda: seen.append(current_trace()))
            t.start()
            t.join()
        assert seen == [None]


class _FakeTimer:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _FakeLoop:
    def __init__(self):
        self.scheduled: list[tuple[float, object]] = []

    def call_later(self, delay, callback):
        timer = _FakeTimer()
        self.scheduled.append((delay, callback, timer))
        return timer


class TestEventLoopLagProbe:
    def test_tick_observes_lag_and_reschedules(self):
        loop = _FakeLoop()
        registry = MetricsRegistry()
        now = {"t": 100.0}
        probe = EventLoopLagProbe(
            loop, registry, name="test", interval_s=1.0, clock=lambda: now["t"]
        )
        probe.start()
        assert len(loop.scheduled) == 1
        # Fire 0.5 s late: expected 101.0, actual 101.5.
        now["t"] = 101.5
        loop.scheduled[0][1]()
        assert len(loop.scheduled) == 2  # rescheduled
        (sample,) = registry.get(EVENTLOOP_LAG_METRIC).snapshot().samples
        assert sample.count == 1
        assert sample.sum == pytest.approx(0.5)
        probe.stop()

    def test_start_stop_idempotent_and_tracked(self):
        probe = EventLoopLagProbe(_FakeLoop(), MetricsRegistry(), name="x")
        probe.start()
        probe.start()
        assert probe in EventLoopLagProbe.active_probes()
        probe.stop()
        probe.stop()
        assert probe not in EventLoopLagProbe.active_probes()

    def test_stop_cancels_pending_timer(self):
        loop = _FakeLoop()
        probe = EventLoopLagProbe(loop, MetricsRegistry())
        probe.start()
        probe.stop()
        assert loop.scheduled[0][2].cancelled

    def test_tick_after_stop_is_inert(self):
        loop = _FakeLoop()
        registry = MetricsRegistry()
        probe = EventLoopLagProbe(loop, registry)
        probe.start()
        callback = loop.scheduled[0][1]
        probe.stop()
        callback()
        (sample,) = registry.get(EVENTLOOP_LAG_METRIC).snapshot().samples
        assert sample.count == 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            EventLoopLagProbe(_FakeLoop(), MetricsRegistry(), interval_s=0)


def _json_log_line(formatter: JsonFormatter, log_fn) -> dict:
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(formatter)
    logger = logging.getLogger(f"repro.test.{id(handler)}")
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    logger.propagate = False
    try:
        log_fn(logger)
    finally:
        logger.removeHandler(handler)
    return json.loads(stream.getvalue().strip())


class TestJsonLogging:
    def test_basic_fields(self):
        doc = _json_log_line(
            JsonFormatter(component="agent"),
            lambda log: log.warning("queue %d%% full", 93),
        )
        assert doc["level"] == "warning"
        assert doc["component"] == "agent"
        assert doc["message"] == "queue 93% full"
        assert "ts" in doc

    def test_trace_id_from_extra(self):
        doc = _json_log_line(
            JsonFormatter(),
            lambda log: log.warning("slow", extra={"trace_id": 0xAB}),
        )
        assert doc["traceId"] == f"{0xAB:016x}"

    def test_trace_id_from_ambient_context(self):
        def emit(log):
            with trace_context(0xCD):
                log.info("inside")

        doc = _json_log_line(JsonFormatter(), emit)
        assert doc["traceId"] == f"{0xCD:016x}"

    def test_extra_fields_pass_through(self):
        doc = _json_log_line(
            JsonFormatter(),
            lambda log: log.info("flush", extra={"duration_s": 1.25, "batch": 10}),
        )
        assert doc["duration_s"] == 1.25
        assert doc["batch"] == 10

    def test_exception_rendered(self):
        def emit(log):
            try:
                raise ValueError("boom")
            except ValueError:
                log.exception("failed")

        doc = _json_log_line(JsonFormatter(), emit)
        assert "ValueError: boom" in doc["exception"]

    def test_output_is_one_json_object_per_line(self):
        doc = _json_log_line(JsonFormatter(), lambda log: log.info("multi\nline"))
        assert doc["message"] == "multi\nline"
