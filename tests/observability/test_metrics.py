"""Unit tests for the metrics registry, histograms and exposition."""

from __future__ import annotations

import math
import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    merge_snapshots,
    parse_prometheus_text,
    render_json,
    render_prometheus,
)
from repro.observability.metrics import _bucket_percentile


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops", ("node",))
        counter.labels(node="a").inc(2)
        counter.labels(node="b").inc(3)
        assert counter.value == 5.0
        assert registry.value("ops_total", {"node": "a"}) == 2.0

    def test_unlabeled_ops_on_labelled_family_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "", ("node",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", "")
        with pytest.raises(ValueError):
            registry.gauge("thing", "")

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total", "") is registry.counter("a_total", "")

    def test_concurrent_increments_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("hot_total", "", ("worker",))
        threads_n, per_thread = 8, 5000

        def hammer(idx: int) -> None:
            child = counter.labels(worker=str(idx % 4))
            for _ in range(per_thread):
                child.inc()

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == threads_n * per_thread


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_callback_gauge_is_lazy(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.gauge("live", "").set_function(lambda: state["n"])
        assert registry.value("live") == 1.0
        state["n"] = 42
        assert registry.value("live") == 42.0


class TestHistogram:
    def test_bucketing_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 3.0, 7.0, 100.0):
            hist.observe(v)
        (sample,) = registry.get("lat").snapshot().samples
        assert sample.count == 4
        assert sample.sum == pytest.approx(110.5)
        assert dict(sample.buckets) == {1.0: 1, 5.0: 2, 10.0: 3, math.inf: 4}

    def test_observation_on_bucket_boundary_counts_into_it(self):
        registry = MetricsRegistry()
        hist = registry.histogram("edge", "", buckets=(1.0, 2.0))
        hist.observe(1.0)
        (sample,) = registry.get("edge").snapshot().samples
        assert dict(sample.buckets)[1.0] == 1

    def test_percentile_interpolates_within_bucket(self):
        # 100 observations uniform in the (0, 10] bucket: p50 ~ 5.
        buckets = ((10.0, 100), (math.inf, 100))
        assert _bucket_percentile(buckets, 100, 0.5) == pytest.approx(5.0, abs=0.2)

    def test_percentile_empty_returns_none(self):
        assert _bucket_percentile(((1.0, 0), (math.inf, 0)), 0, 0.5) is None

    def test_percentile_in_inf_bucket_returns_last_finite_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("big", "", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.percentile(0.99) == pytest.approx(2.0)

    def test_percentile_aggregates_across_labels(self):
        registry = MetricsRegistry()
        hist = registry.histogram("multi", "", ("hop",), buckets=(1.0, 10.0))
        for _ in range(10):
            hist.labels(hop="a").observe(0.5)
            hist.labels(hop="b").observe(5.0)
        p99_all = hist.percentile(0.99)
        p99_a = hist.percentile(0.99, {"hop": "a"})
        assert p99_a <= 1.0 < p99_all

    def test_unsorted_bucket_spec_is_sorted(self):
        registry = MetricsRegistry()
        hist = registry.histogram("order", "", buckets=(5.0, 1.0))
        assert hist.buckets == (1.0, 5.0)

    def test_concurrent_observations_are_lossless(self):
        registry = MetricsRegistry()
        hist = registry.histogram("conc", "", buckets=(0.5,))
        per_thread = 4000

        def hammer() -> None:
            for _ in range(per_thread):
                hist.observe(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (sample,) = registry.get("conc").snapshot().samples
        assert sample.count == 6 * per_thread
        assert dict(sample.buckets)[0.5] == 6 * per_thread


class TestRendering:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("dcdb_reqs_total", "Requests", ("route",)).labels(
            route="/status"
        ).inc(3)
        registry.gauge("dcdb_depth", "Queue depth").set(7)
        hist = registry.histogram("dcdb_lat_seconds", "Latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_prometheus_round_trip_through_validator(self):
        text = render_prometheus(self._registry().collect())
        parsed = parse_prometheus_text(text)
        assert parsed["dcdb_reqs_total"]["type"] == "counter"
        assert parsed["dcdb_depth"]["type"] == "gauge"
        assert parsed["dcdb_lat_seconds"]["type"] == "histogram"
        assert 'route="/status"' in text
        assert 'le="+Inf"' in text

    def test_json_includes_percentiles(self):
        doc = render_json(self._registry().collect())
        hist = doc["dcdb_lat_seconds"]["samples"][0]
        assert hist["count"] == 2
        assert hist["p50"] is not None

    def test_validator_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_prometheus_text("orphan_metric 1\n")

    def test_validator_rejects_histogram_without_inf_bucket(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus_text(bad)

    def test_validator_rejects_count_bucket_disagreement(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\n"
            "h_count 2\n"
        )
        with pytest.raises(ValueError, match="!= count"):
            parse_prometheus_text(bad)

    def test_validator_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_text("# TYPE ok counter\nok 1\n}{nonsense\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "", ("path",)).labels(path='a"b\\c').inc()
        text = render_prometheus(registry.collect())
        parse_prometheus_text(text)
        assert r"a\"b\\c" in text


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("ops_total", "").inc(2)
        r2.counter("ops_total", "").inc(3)
        r1.gauge("rows", "").set(10)
        r2.gauge("rows", "").set(5)
        merged = {f.name: f for f in merge_snapshots([r1.collect(), r2.collect()])}
        assert merged["ops_total"].total() == 5.0
        assert merged["rows"].total() == 15.0

    def test_histograms_merge_bucketwise(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        for r, v in ((r1, 0.05), (r2, 0.5)):
            r.histogram("lat", "", buckets=(0.1, 1.0)).observe(v)
        merged = {f.name: f for f in merge_snapshots([r1.collect(), r2.collect()])}
        (sample,) = merged["lat"].samples
        assert sample.count == 2
        assert dict(sample.buckets)[0.1] == 1

    def test_distinct_labels_stay_separate(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("ops_total", "", ("node",)).labels(node="a").inc()
        r2.counter("ops_total", "", ("node",)).labels(node="b").inc()
        merged = {f.name: f for f in merge_snapshots([r1.collect(), r2.collect()])}
        assert len(merged["ops_total"].samples) == 2

    def test_type_conflict_raises(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("x", "").inc()
        r2.gauge("x", "").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([r1.collect(), r2.collect()])

    def test_merged_output_renders_valid_exposition(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("lat", "", buckets=(0.1,)).observe(0.01)
        r2.histogram("lat", "", buckets=(0.1,)).observe(0.2)
        text = render_prometheus(merge_snapshots([r1.collect(), r2.collect()]))
        assert parse_prometheus_text(text)["lat"]["samples"] >= 4
