"""Tests for deterministic random-stream management."""

from repro.common.rng import RngFactory


class TestRngFactory:
    def test_same_name_same_stream(self):
        a = RngFactory(42).stream("overhead").normal(size=16)
        b = RngFactory(42).stream("overhead").normal(size=16)
        assert (a == b).all()

    def test_different_names_differ(self):
        a = RngFactory(42).stream("alpha").normal(size=16)
        b = RngFactory(42).stream("beta").normal(size=16)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").normal(size=16)
        b = RngFactory(2).stream("x").normal(size=16)
        assert not (a == b).all()

    def test_adding_streams_does_not_perturb_existing(self):
        # The property ablation comparisons depend on.
        factory = RngFactory(7)
        before = factory.stream("stable").normal(size=8)
        factory.stream("newcomer")
        after = RngFactory(7).stream("stable").normal(size=8)
        assert (before == after).all()

    def test_spawn_children_deterministic(self):
        a = RngFactory(3).spawn("node1").stream("s").integers(0, 100, size=4)
        b = RngFactory(3).spawn("node1").stream("s").integers(0, 100, size=4)
        assert (a == b).all()

    def test_spawn_children_independent(self):
        a = RngFactory(3).spawn("node1").stream("s").integers(0, 1000, size=8)
        b = RngFactory(3).spawn("node2").stream("s").integers(0, 1000, size=8)
        assert not (a == b).all()
