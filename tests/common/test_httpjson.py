"""Tests for the JSON HTTP server/client plumbing."""

import pytest

from repro.common.httpjson import JsonHttpServer, http_json


@pytest.fixture
def server():
    srv = JsonHttpServer("127.0.0.1", 0)
    srv.route("GET", "/status", lambda p, q, b: (200, {"ok": True}))
    srv.route("GET", "/items/:name", lambda p, q, b: (200, {"name": p["name"]}))
    srv.route("GET", "/echo", lambda p, q, b: (200, {"q": q}))
    srv.route("POST", "/items/:name/start", lambda p, q, b: (200, {"started": p["name"]}))
    srv.route("POST", "/body", lambda p, q, b: (200, {"len": len(b)}))
    srv.route("GET", "/boom", lambda p, q, b: 1 / 0)
    srv.start()
    yield srv
    srv.stop()


def _url(server, path):
    return f"http://127.0.0.1:{server.port}{path}"


class TestRouting:
    def test_simple_get(self, server):
        status, body = http_json("GET", _url(server, "/status"))
        assert status == 200 and body == {"ok": True}

    def test_path_parameters(self, server):
        status, body = http_json("GET", _url(server, "/items/tester"))
        assert status == 200 and body == {"name": "tester"}

    def test_path_parameters_urldecoded(self, server):
        status, body = http_json("GET", _url(server, "/items/a%2Fb"))
        assert body == {"name": "a/b"}

    def test_query_parameters(self, server):
        status, body = http_json("GET", _url(server, "/echo?a=1&b=two"))
        assert body == {"q": {"a": "1", "b": "two"}}

    def test_post_with_params(self, server):
        status, body = http_json("POST", _url(server, "/items/x/start"), body={})
        assert body == {"started": "x"}

    def test_post_body_delivered(self, server):
        status, body = http_json("POST", _url(server, "/body"), body={"k": "v"})
        assert status == 200 and body["len"] == len('{"k": "v"}')

    def test_unknown_route_404(self, server):
        status, body = http_json("GET", _url(server, "/nope"))
        assert status == 404
        assert "no route" in body["error"]

    def test_method_mismatch_404(self, server):
        status, _ = http_json("POST", _url(server, "/status"), body={})
        assert status == 404

    def test_handler_exception_500(self, server):
        status, body = http_json("GET", _url(server, "/boom"))
        assert status == 500
        assert "ZeroDivisionError" in body["error"]


class TestLifecycle:
    def test_port_zero_allocates(self, server):
        assert server.port is not None and server.port > 0

    def test_stop_idempotent(self):
        srv = JsonHttpServer("127.0.0.1", 0)
        srv.start()
        srv.stop()
        srv.stop()

    def test_context_manager(self):
        with JsonHttpServer("127.0.0.1", 0) as srv:
            assert srv.port is not None
