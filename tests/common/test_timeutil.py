"""Tests for timestamp handling and interval alignment."""

import pytest
from hypothesis import given, strategies as st

from repro.common.timeutil import (
    NS_PER_MS,
    NS_PER_SEC,
    SimClock,
    Timestamp,
    align_interval,
    from_millis,
    from_seconds,
    next_read_time,
    now_ns,
    to_seconds,
)


class TestConversions:
    def test_from_seconds(self):
        assert from_seconds(1.5) == 1_500_000_000

    def test_to_seconds(self):
        assert to_seconds(2_500_000_000) == 2.5

    def test_round_trip(self):
        assert to_seconds(from_seconds(123.456)) == pytest.approx(123.456)

    def test_from_millis(self):
        assert from_millis(250) == 250 * NS_PER_MS

    def test_now_is_plausible(self):
        # Sometime after 2020 and before 2100.
        assert 1_577_836_800 * NS_PER_SEC < now_ns() < 4_102_444_800 * NS_PER_SEC


class TestAlignInterval:
    def test_already_aligned(self):
        assert align_interval(2 * NS_PER_SEC, NS_PER_SEC) == 2 * NS_PER_SEC

    def test_rounds_up(self):
        assert align_interval(NS_PER_SEC + 1, NS_PER_SEC) == 2 * NS_PER_SEC

    def test_zero(self):
        assert align_interval(0, NS_PER_SEC) == 0

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValueError):
            align_interval(5, 0)
        with pytest.raises(ValueError):
            align_interval(5, -1)

    def test_two_groups_same_interval_fire_together(self):
        # The synchronized-read rule: start times don't matter.
        a = align_interval(1_300_000_000, NS_PER_SEC)
        b = align_interval(1_800_000_000, NS_PER_SEC)
        assert a == b == 2 * NS_PER_SEC

    @given(
        t=st.integers(min_value=0, max_value=10**18),
        interval=st.integers(min_value=1, max_value=10**12),
    )
    def test_alignment_properties(self, t, interval):
        aligned = align_interval(t, interval)
        assert aligned >= t
        assert aligned % interval == 0
        assert aligned - t < interval


class TestNextReadTime:
    def test_strictly_after(self):
        assert next_read_time(NS_PER_SEC, NS_PER_SEC) == 2 * NS_PER_SEC

    def test_unaligned(self):
        assert next_read_time(NS_PER_SEC + 5, NS_PER_SEC) == 2 * NS_PER_SEC

    @given(
        t=st.integers(min_value=0, max_value=10**18),
        interval=st.integers(min_value=1, max_value=10**12),
    )
    def test_strictly_greater_property(self, t, interval):
        nxt = next_read_time(t, interval)
        assert nxt > t
        assert nxt % interval == 0
        assert nxt - t <= interval


class TestTimestamp:
    def test_ordering(self):
        assert Timestamp(1) < Timestamp(2)

    def test_isoformat_includes_nanoseconds(self):
        ts = Timestamp(NS_PER_SEC + 123)
        assert ts.isoformat() == "1970-01-01T00:00:01.000000123Z"

    def test_round_trip_seconds(self):
        assert Timestamp.from_seconds(5.5).to_seconds() == 5.5


class TestSimClock:
    def test_starts_at_origin(self):
        assert SimClock()() == 0

    def test_advance(self):
        clock = SimClock(10)
        assert clock.advance(5) == 15
        assert clock() == 15

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_set_forward_only(self):
        clock = SimClock(100)
        clock.set(200)
        assert clock() == 200
        with pytest.raises(ValueError):
            clock.set(50)
