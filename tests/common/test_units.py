"""Tests for the unit catalogue and automatic conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import UnitError
from repro.common.units import (
    Unit,
    UnitConverter,
    convert,
    get_converter,
    lookup,
    register_unit,
)


class TestCatalogue:
    def test_lookup_known(self):
        assert lookup("W").dimension == "power"

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnitError, match="unknown unit"):
            lookup("furlongs")

    @pytest.mark.parametrize(
        "symbol,dimension",
        [
            ("mW", "power"),
            ("kWh", "energy"),
            ("C", "temperature"),
            ("l/min", "flow"),
            ("GB/s", "bandwidth"),
            ("MiB", "data"),
            ("GHz", "frequency"),
            ("percent", "dimensionless"),
            ("us", "time"),
            ("mV", "voltage"),
            ("mA", "current"),
        ],
    )
    def test_catalogue_coverage(self, symbol, dimension):
        assert lookup(symbol).dimension == dimension

    def test_register_custom_unit(self):
        register_unit(Unit("widget", "dimensionless", 42.0))
        assert lookup("widget").scale == 42.0

    def test_reregister_identical_is_ok(self):
        register_unit(Unit("widget2", "dimensionless", 7.0))
        register_unit(Unit("widget2", "dimensionless", 7.0))

    def test_reregister_conflicting_raises(self):
        register_unit(Unit("widget3", "dimensionless", 1.0))
        with pytest.raises(UnitError, match="already registered"):
            register_unit(Unit("widget3", "dimensionless", 2.0))


class TestScaleConversions:
    @pytest.mark.parametrize(
        "value,src,dst,expected",
        [
            (1.0, "kW", "W", 1000.0),
            (1500.0, "mW", "W", 1.5),
            (2.0, "kWh", "J", 7.2e6),
            (3600.0, "J", "Wh", 1.0),
            (1.0, "m3/h", "l/min", 1000.0 / 60.0),
            (1.0, "GB/s", "MB/s", 1000.0),
            (1.0, "MiB", "KiB", 1024.0),
            (2.5, "GHz", "MHz", 2500.0),
            (50.0, "percent", "ratio", 0.5),
            (1.0, "s", "ms", 1000.0),
        ],
    )
    def test_conversion_values(self, value, src, dst, expected):
        assert convert(value, src, dst) == pytest.approx(expected)

    def test_identity(self):
        assert convert(3.14, "W", "W") == pytest.approx(3.14)

    @given(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
    def test_round_trip_property(self, value):
        there = convert(value, "kW", "mW")
        back = convert(there, "mW", "kW")
        assert back == pytest.approx(value, rel=1e-12, abs=1e-9)


class TestAffineTemperature:
    def test_celsius_to_kelvin(self):
        assert convert(0.0, "C", "K") == pytest.approx(273.15)

    def test_kelvin_to_celsius(self):
        assert convert(300.0, "K", "C") == pytest.approx(26.85)

    def test_fahrenheit_to_celsius(self):
        assert convert(212.0, "F", "C") == pytest.approx(100.0)
        assert convert(32.0, "F", "C") == pytest.approx(0.0, abs=1e-9)

    def test_millicelsius(self):
        # hwmon-style millidegrees.
        assert convert(45000.0, "mC", "C") == pytest.approx(45.0)


class TestConverter:
    def test_incompatible_dimensions_raise(self):
        with pytest.raises(UnitError, match="cannot convert"):
            get_converter("W", "J")

    def test_converter_is_cached(self):
        assert get_converter("W", "kW") is get_converter("W", "kW")

    def test_callable(self):
        conv = UnitConverter(lookup("kW"), lookup("W"))
        assert conv(2.0) == pytest.approx(2000.0)
