"""Tests for the INFO property-tree parser and emitter."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.proptree import PropertyTree, dump_info, parse_info

SAMPLE = """
; A realistic pusher plugin configuration.
global {
    cacheInterval 120000
}
template_group tdefault {
    interval 1000
    minValues 3
}
group g0 {
    default tdefault
    interval 500
    sensor s0 {
        mqttsuffix /g0/s0
        unit W
    }
    sensor s1 {
        mqttsuffix /g0/s1
    }
}
group g1 {
    interval 2000
}
"""


class TestParsing:
    def test_nested_values(self):
        tree = parse_info(SAMPLE)
        assert tree.get("global.cacheInterval") == "120000"
        assert tree.get("group.sensor.mqttsuffix") == "/g0/s0"

    def test_node_values_carry_names(self):
        tree = parse_info(SAMPLE)
        groups = [node.value for key, node in tree.children("group")]
        assert groups == ["g0", "g1"]

    def test_repeated_keys_preserved_in_order(self):
        tree = parse_info(SAMPLE)
        g0 = tree.child("group")
        sensors = [node.value for _k, node in g0.children("sensor")]
        assert sensors == ["s0", "s1"]

    def test_comments_ignored(self):
        tree = parse_info("a 1 ; trailing comment\n; full line\nb 2")
        assert tree.get("a") == "1"
        assert tree.get("b") == "2"

    def test_quoted_values_with_spaces(self):
        tree = parse_info('name "hello world"')
        assert tree.get("name") == "hello world"

    def test_quoted_escapes(self):
        tree = parse_info(r'name "say \"hi\""')
        assert tree.get("name") == 'say "hi"'

    def test_brace_on_next_line(self):
        tree = parse_info("group g0\n{\n interval 5\n}")
        assert tree.child("group").get("interval") == "5"

    def test_multiple_pairs_per_line(self):
        tree = parse_info("group g { interval 1000 minValues 2 }")
        g = tree.child("group")
        assert g.get("interval") == "1000"
        assert g.get("minValues") == "2"

    def test_unbalanced_open_raises(self):
        with pytest.raises(ConfigError, match="unclosed"):
            parse_info("a {\n b 1\n")

    def test_unbalanced_close_raises(self):
        with pytest.raises(ConfigError, match="unmatched"):
            parse_info("a 1\n}\n")

    def test_brace_without_key_raises(self):
        with pytest.raises(ConfigError, match="without a preceding key"):
            parse_info("{\n}")

    def test_unterminated_quote_raises(self):
        with pytest.raises(ConfigError, match="unterminated"):
            parse_info('a "oops')

    def test_empty_input(self):
        assert len(parse_info("")) == 0


class TestTypedAccessors:
    def test_get_int(self):
        assert parse_info("n 42").get_int("n") == 42

    def test_get_int_default(self):
        assert parse_info("").get_int("missing", 7) == 7

    def test_get_int_malformed_raises(self):
        with pytest.raises(ConfigError, match="expected integer"):
            parse_info("n abc").get_int("n")

    def test_get_float(self):
        assert parse_info("x 2.5").get_float("x") == 2.5

    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("on", True), ("1", True), ("yes", True),
        ("false", False), ("off", False), ("0", False), ("no", False),
    ])
    def test_get_bool(self, text, expected):
        assert parse_info(f"b {text}").get_bool("b") is expected

    def test_get_bool_malformed_raises(self):
        with pytest.raises(ConfigError, match="expected boolean"):
            parse_info("b maybe").get_bool("b")

    def test_require_missing_raises(self):
        with pytest.raises(ConfigError, match="missing required"):
            parse_info("").require("addr")

    def test_put_creates_path(self):
        tree = PropertyTree()
        tree.put("a.b.c", "1")
        assert tree.get("a.b.c") == "1"

    def test_put_overwrites(self):
        tree = PropertyTree()
        tree.put("a", "1")
        tree.put("a", "2")
        assert tree.get("a") == "2"
        assert len(tree) == 1


class TestDump:
    def test_round_trip(self):
        tree = parse_info(SAMPLE)
        again = parse_info(dump_info(tree))
        assert again == tree

    def test_quoting_in_dump(self):
        tree = PropertyTree()
        tree.add("name", "hello world")
        assert parse_info(dump_info(tree)).get("name") == "hello world"


_keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"),
    min_size=1,
    max_size=8,
)
_values = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="./:-"),
    min_size=0,
    max_size=12,
)


@st.composite
def _trees(draw, depth=0):
    tree = PropertyTree(draw(_values) if depth else "")
    n = draw(st.integers(min_value=0, max_value=3 if depth < 2 else 0))
    for _ in range(n):
        key = draw(_keys)
        child = draw(_trees(depth=depth + 1))
        tree._children.append((key, child))
    return tree


class TestPropertyBased:
    @given(_trees())
    def test_dump_parse_round_trip(self, tree):
        assert parse_info(dump_info(tree)) == tree
