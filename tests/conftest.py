"""Shared fixtures for the DCDB reproduction test suite."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.timeutil import SimClock
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.observability import EventLoopLagProbe, current_trace
from repro.storage import MemoryBackend


class SimPipeline:
    """One Pusher -> InProc hub -> Collect Agent -> memory backend."""

    def __init__(self, prefix: str = "/test/host0") -> None:
        self.clock = SimClock(0)
        self.hub = InProcHub(allow_subscribe=False)
        self.backend = MemoryBackend()
        self.agent = CollectAgent(self.backend, broker=self.hub)
        self.pusher = Pusher(
            PusherConfig(mqtt_prefix=prefix),
            client=InProcClient("pusher0", self.hub),
            clock=self.clock,
        )

    def load_and_start(self, plugin: str, config: str, alias: str | None = None) -> None:
        self.pusher.load_plugin(plugin, config, plugin_alias=alias)
        if not self.pusher.client.connected:
            self.pusher.client.connect()
        self.pusher.start_plugin(alias or plugin)

    def run(self, seconds: float) -> None:
        target = self.clock() + int(seconds * 1_000_000_000)
        self.pusher.advance_to(target)
        self.clock.set(target)


@pytest.fixture(autouse=True)
def no_leaked_nondaemon_threads():
    """Every test must release its non-daemon threads.

    Broker/client shutdown paths historically leaked reader threads
    blocked in ``recv``; the event-loop transport joins its loop
    thread on stop.  Daemon threads (the loops themselves, sampling
    pools) are exempt — they cannot keep the interpreter alive — but
    anything non-daemon still running after teardown is a shutdown
    bug.
    """
    # Process-lifetime by design, exempt: the storage layer's shared
    # I/O pool (repro.storage.cluster._shared_pool) is created lazily
    # by whichever test first fans out and intentionally never shut
    # down.
    exempt_prefixes = ("dcdb-cluster-io",)
    before = {t.ident for t in threading.enumerate()}
    yield
    deadline = time.monotonic() + 2.0
    leaked: list[threading.Thread] = []
    while time.monotonic() < deadline:
        leaked = [
            t
            for t in threading.enumerate()
            if t.ident not in before
            and t.is_alive()
            and not t.daemon
            and not t.name.startswith(exempt_prefixes)
        ]
        if not leaked:
            break
        time.sleep(0.02)
    else:
        assert not leaked, f"test leaked non-daemon threads: {leaked}"
    # Observability shutdown hygiene: a stopped broker must have
    # cancelled its event-loop lag probe, and nothing may leave the
    # ambient trace context set on the test runner's thread.
    probes = EventLoopLagProbe.active_probes()
    assert not probes, f"test leaked running lag probes: {[p.name for p in probes]}"
    assert current_trace() is None, "test leaked an ambient trace context"


@pytest.fixture
def pipeline() -> SimPipeline:
    return SimPipeline()


@pytest.fixture
def sim_clock() -> SimClock:
    return SimClock(0)
