"""Tests for the MQTT 3.1.1 wire-format codec."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import TransportError
from repro.mqtt import packets as pkt


def round_trip(packet):
    decoded, consumed = pkt.decode_packet(packet.encode())
    assert consumed == len(packet.encode())
    return decoded


class TestRemainingLength:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (16383, b"\xff\x7f"),
            (16384, b"\x80\x80\x01"),
            (268_435_455, b"\xff\xff\xff\x7f"),
        ],
    )
    def test_spec_vectors(self, value, encoded):
        assert pkt.encode_remaining_length(value) == encoded
        decoded, offset = pkt.decode_remaining_length(encoded, 0)
        assert decoded == value and offset == len(encoded)

    def test_out_of_range_rejected(self):
        with pytest.raises(TransportError):
            pkt.encode_remaining_length(268_435_456)
        with pytest.raises(TransportError):
            pkt.encode_remaining_length(-1)

    def test_malformed_five_bytes_rejected(self):
        with pytest.raises(TransportError, match="malformed"):
            pkt.decode_remaining_length(b"\xff\xff\xff\xff\x01", 0)

    @given(st.integers(min_value=0, max_value=268_435_455))
    def test_round_trip_property(self, value):
        encoded = pkt.encode_remaining_length(value)
        decoded, offset = pkt.decode_remaining_length(encoded, 0)
        assert decoded == value and offset == len(encoded)


class TestConnect:
    def test_minimal_round_trip(self):
        packet = pkt.Connect(client_id="pusher0", keepalive=30)
        assert round_trip(packet) == packet

    def test_credentials_round_trip(self):
        packet = pkt.Connect(client_id="c", username="admin", password=b"secret")
        assert round_trip(packet) == packet

    def test_will_round_trip(self):
        packet = pkt.Connect(
            client_id="c",
            will_topic="/dead/pusher0",
            will_payload=b"gone",
            will_qos=1,
            will_retain=True,
        )
        assert round_trip(packet) == packet

    def test_password_without_username_invalid(self):
        with pytest.raises(TransportError):
            pkt.Connect(client_id="c", password=b"x").encode()

    def test_unsupported_protocol_level(self):
        raw = bytearray(pkt.Connect(client_id="c").encode())
        # Protocol level byte sits after the fixed header (2) + "MQTT" string (6).
        raw[8] = 9
        with pytest.raises(TransportError, match="protocol level"):
            pkt.decode_packet(bytes(raw))

    def test_reserved_flag_rejected(self):
        raw = bytearray(pkt.Connect(client_id="c").encode())
        raw[9] |= 0x01
        with pytest.raises(TransportError, match="reserved flag"):
            pkt.decode_packet(bytes(raw))


class TestPublish:
    def test_qos0_round_trip(self):
        packet = pkt.Publish(topic="/a/b", payload=b"\x00\x01\x02")
        assert round_trip(packet) == packet

    def test_qos1_round_trip(self):
        packet = pkt.Publish(topic="/a", payload=b"x", qos=1, packet_id=42)
        assert round_trip(packet) == packet

    def test_retain_dup_flags(self):
        packet = pkt.Publish(topic="/a", payload=b"", qos=1, packet_id=1, retain=True, dup=True)
        decoded = round_trip(packet)
        assert decoded.retain and decoded.dup

    def test_qos2_rejected(self):
        with pytest.raises(TransportError):
            pkt.Publish(topic="/a", qos=2, packet_id=1)

    def test_qos1_requires_packet_id(self):
        with pytest.raises(TransportError):
            pkt.Publish(topic="/a", qos=1)

    def test_empty_payload(self):
        assert round_trip(pkt.Publish(topic="/t")).payload == b""

    def test_utf8_topic(self):
        packet = pkt.Publish(topic="/größe/τ", payload=b"1")
        assert round_trip(packet).topic == "/größe/τ"

    @given(
        topic=st.text(
            alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
            min_size=1,
            max_size=64,
        ),
        payload=st.binary(max_size=512),
        qos=st.sampled_from([0, 1]),
    )
    def test_round_trip_property(self, topic, payload, qos):
        packet = pkt.Publish(
            topic=topic, payload=payload, qos=qos, packet_id=7 if qos else None
        )
        assert round_trip(packet) == packet


class TestSubscribe:
    def test_round_trip(self):
        packet = pkt.Subscribe(packet_id=5, topics=(("/a/#", 1), ("/b/+/c", 0)))
        assert round_trip(packet) == packet

    def test_empty_topics_rejected_on_encode(self):
        with pytest.raises(TransportError):
            pkt.Subscribe(packet_id=1).encode()

    def test_bad_flags_rejected(self):
        raw = bytearray(pkt.Subscribe(packet_id=1, topics=(("/a", 0),)).encode())
        raw[0] = (raw[0] & 0xF0) | 0x00  # flags must be 0b0010
        with pytest.raises(TransportError, match="flags"):
            pkt.decode_packet(bytes(raw))

    def test_suback_round_trip(self):
        packet = pkt.SubAck(packet_id=5, return_codes=(0, 1, pkt.SUBACK_FAILURE))
        assert round_trip(packet) == packet


class TestOtherPackets:
    def test_connack(self):
        packet = pkt.ConnAck(session_present=True, return_code=pkt.CONNACK_REFUSED_BAD_CREDENTIALS)
        assert round_trip(packet) == packet

    def test_puback(self):
        assert round_trip(pkt.PubAck(packet_id=999)) == pkt.PubAck(packet_id=999)

    def test_unsubscribe(self):
        packet = pkt.Unsubscribe(packet_id=3, topics=("/a", "/b/#"))
        assert round_trip(packet) == packet

    def test_unsuback(self):
        assert round_trip(pkt.UnsubAck(packet_id=3)) == pkt.UnsubAck(packet_id=3)

    def test_ping_round_trips(self):
        assert round_trip(pkt.PingReq()) == pkt.PingReq()
        assert round_trip(pkt.PingResp()) == pkt.PingResp()

    def test_disconnect(self):
        assert round_trip(pkt.Disconnect()) == pkt.Disconnect()

    def test_unknown_packet_type(self):
        with pytest.raises(TransportError, match="unsupported packet type"):
            pkt.decode_packet(b"\x00\x00")


class TestStreamDecoder:
    def test_single_packet(self):
        decoder = pkt.StreamDecoder()
        packets = decoder.feed(pkt.PingReq().encode())
        assert packets == [pkt.PingReq()]

    def test_multiple_packets_one_chunk(self):
        data = pkt.PingReq().encode() + pkt.Publish(topic="/a", payload=b"1").encode()
        packets = pkt.StreamDecoder().feed(data)
        assert len(packets) == 2

    def test_byte_by_byte_feeding(self):
        packet = pkt.Publish(topic="/long/topic/name", payload=b"payload bytes", qos=1, packet_id=3)
        decoder = pkt.StreamDecoder()
        received = []
        for byte in packet.encode():
            received.extend(decoder.feed(bytes([byte])))
        assert received == [packet]
        assert decoder.pending_bytes == 0

    def test_partial_retained(self):
        packet = pkt.Publish(topic="/a", payload=b"12345")
        data = packet.encode()
        decoder = pkt.StreamDecoder()
        assert decoder.feed(data[:3]) == []
        assert decoder.pending_bytes == 3
        assert decoder.feed(data[3:]) == [packet]

    @given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=8))
    def test_arbitrary_chunking_property(self, payloads):
        packets = [pkt.Publish(topic=f"/s/{i}", payload=p) for i, p in enumerate(payloads)]
        stream = b"".join(p.encode() for p in packets)
        decoder = pkt.StreamDecoder()
        received = []
        # Feed in chunks of 7 bytes.
        for i in range(0, len(stream), 7):
            received.extend(decoder.feed(stream[i : i + 7]))
        assert received == packets
