"""Tests for topic validation, matching, and the subscription trie."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import TransportError
from repro.mqtt.topics import (
    SubscriptionTree,
    iter_matching,
    topic_matches,
    validate_filter,
    validate_topic,
)


class TestValidateTopic:
    def test_plain_topic_ok(self):
        validate_topic("/hpc/rack0/node1/power")

    def test_empty_rejected(self):
        with pytest.raises(TransportError):
            validate_topic("")

    @pytest.mark.parametrize("bad", ["/a/#", "/a/+/b", "a#b", "+"])
    def test_wildcards_rejected(self, bad):
        with pytest.raises(TransportError):
            validate_topic(bad)

    def test_nul_rejected(self):
        with pytest.raises(TransportError):
            validate_topic("/a\x00b")


class TestValidateFilter:
    @pytest.mark.parametrize("ok", ["#", "/a/#", "+", "/+/b", "/a/+/+/#", "/plain"])
    def test_valid_filters(self, ok):
        validate_filter(ok)

    @pytest.mark.parametrize("bad", ["/a/#/b", "/a#", "/a/b+", "+a", "", "/#extra"])
    def test_invalid_filters(self, bad):
        with pytest.raises(TransportError):
            validate_filter(bad)


class TestTopicMatches:
    @pytest.mark.parametrize(
        "pattern,topic,expected",
        [
            ("/a/b/c", "/a/b/c", True),
            ("/a/b/c", "/a/b/d", False),
            ("/a/+/c", "/a/b/c", True),
            ("/a/+/c", "/a/b/d", False),
            ("/a/+/c", "/a/b/x/c", False),
            ("/a/#", "/a/b/c", True),
            ("/a/#", "/a", True),  # '#' matches the parent level too
            ("#", "/anything/at/all", True),
            ("+/+", "/a", True),  # leading slash = empty first level
            ("/+", "/a", True),
            ("+", "/a", False),
            ("/a/b", "/a/b/c", False),
            ("/a/b/c", "/a/b", False),
            ("sport/+", "sport", False),
            ("sport/#", "sport", True),
        ],
    )
    def test_matching_rules(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected

    def test_system_topics_not_matched_by_wildcards(self):
        assert not topic_matches("#", "$SYS/broker/load")
        assert not topic_matches("+/broker/load", "$SYS/broker/load")
        assert topic_matches("$SYS/#", "$SYS/broker/load")

    def test_iter_matching(self):
        patterns = ["/a/#", "/b/#", "/a/b"]
        assert list(iter_matching(patterns, "/a/b")) == ["/a/#", "/a/b"]


_levels = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=5
)
_topics = st.lists(_levels, min_size=1, max_size=5).map(lambda ls: "/" + "/".join(ls))


@st.composite
def _filters(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    levels = []
    for i in range(n):
        kind = draw(st.sampled_from(["literal", "plus", "hash"]))
        if kind == "hash" and i == n - 1:
            levels.append("#")
        elif kind == "plus":
            levels.append("+")
        else:
            levels.append(draw(_levels))
    return "/" + "/".join(levels)


class TestSubscriptionTree:
    def test_exact_subscription(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/b", "sub1")
        assert tree.match("/a/b") == {"sub1": 0}
        assert tree.match("/a/c") == {}

    def test_wildcard_subscription(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/#", "sub1", qos=1)
        assert tree.match("/a/b/c") == {"sub1": 1}

    def test_overlapping_filters_max_qos(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/#", "sub1", qos=0)
        tree.subscribe("/a/b", "sub1", qos=1)
        assert tree.match("/a/b") == {"sub1": 1}

    def test_multiple_subscribers(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/+", "s1")
        tree.subscribe("/a/b", "s2", qos=1)
        assert tree.match("/a/b") == {"s1": 0, "s2": 1}

    def test_unsubscribe(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/b", "s1")
        assert tree.unsubscribe("/a/b", "s1") is True
        assert tree.match("/a/b") == {}
        assert tree.unsubscribe("/a/b", "s1") is False

    def test_unsubscribe_prunes_empty_branches(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/b/c/d", "s1")
        tree.unsubscribe("/a/b/c/d", "s1")
        assert len(tree) == 0
        assert tree._root.children == {}

    def test_remove_subscriber(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/#", "s1")
        tree.subscribe("/b/#", "s1")
        tree.subscribe("/a/#", "s2")
        assert tree.remove_subscriber("s1") == 2
        assert tree.match("/a/x") == {"s2": 0}

    def test_hash_matches_parent_level(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/#", "s1")
        assert tree.match("/a") == {"s1": 0}

    def test_filters_of(self):
        tree = SubscriptionTree()
        tree.subscribe("/a/#", "s1")
        tree.subscribe("/b/+", "s1")
        assert sorted(tree.filters_of("s1")) == ["/a/#", "/b/+"]

    def test_invalid_filter_rejected(self):
        tree = SubscriptionTree()
        with pytest.raises(TransportError):
            tree.subscribe("/a/#/b", "s1")

    def test_len_counts_registrations(self):
        tree = SubscriptionTree()
        tree.subscribe("/a", "s1")
        tree.subscribe("/a", "s2")
        tree.subscribe("/b", "s1")
        assert len(tree) == 3
        tree.subscribe("/a", "s1", qos=1)  # re-subscribe updates, no new count
        assert len(tree) == 3

    @given(pattern=_filters(), topic=_topics)
    def test_tree_agrees_with_topic_matches(self, pattern, topic):
        tree = SubscriptionTree()
        tree.subscribe(pattern, "s")
        assert ("s" in tree.match(topic)) == topic_matches(pattern, topic)

    @given(
        patterns=st.lists(_filters(), min_size=1, max_size=6, unique=True),
        topic=_topics,
    )
    def test_multi_filter_consistency(self, patterns, topic):
        tree = SubscriptionTree()
        for i, pattern in enumerate(patterns):
            tree.subscribe(pattern, f"s{i}")
        matched = set(tree.match(topic))
        expected = {f"s{i}" for i, p in enumerate(patterns) if topic_matches(p, topic)}
        assert matched == expected
