"""Robustness tests: malformed input must not take the broker down."""

import socket
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import TransportError
from repro.mqtt import packets as pkt
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.client import MQTTClient


@pytest.fixture
def broker():
    with MQTTBroker("127.0.0.1", 0) as b:
        yield b


def raw_connection(broker):
    sock = socket.create_connection(("127.0.0.1", broker.port), timeout=2.0)
    return sock


def broker_still_works(broker):
    client = MQTTClient("prober", port=broker.port)
    client.connect()
    client.publish("/probe", b"ok", qos=1, wait_ack=True)
    client.disconnect()
    return True


class TestBrokerSurvivesGarbage:
    def test_random_bytes(self, broker):
        sock = raw_connection(broker)
        sock.sendall(bytes(range(256)) * 4)
        time.sleep(0.1)
        sock.close()
        assert broker_still_works(broker)

    def test_publish_before_connect_rejected(self, broker):
        sock = raw_connection(broker)
        sock.sendall(pkt.Publish(topic="/x", payload=b"1").encode())
        time.sleep(0.1)
        # Protocol violation: the broker drops the connection.
        sock.settimeout(1.0)
        data = sock.recv(64)
        assert data == b""  # closed
        sock.close()
        assert broker_still_works(broker)

    def test_wildcard_in_publish_topic_rejected(self, broker):
        sock = raw_connection(broker)
        sock.sendall(pkt.Connect(client_id="evil").encode())
        time.sleep(0.1)
        # Hand-craft a PUBLISH with a wildcard topic (the dataclass
        # itself refuses, so build the frame manually).
        topic = "/a/#".encode()
        body = len(topic).to_bytes(2, "big") + topic + b"payload"
        frame = bytes([0x30]) + pkt.encode_remaining_length(len(body)) + body
        sock.sendall(frame)
        time.sleep(0.15)
        sock.close()
        assert broker.messages_received == 0
        assert broker_still_works(broker)

    def test_half_packet_then_disconnect(self, broker):
        sock = raw_connection(broker)
        sock.sendall(pkt.Connect(client_id="half").encode())
        time.sleep(0.05)
        full = pkt.Publish(topic="/half", payload=b"x" * 100).encode()
        sock.sendall(full[: len(full) // 2])
        sock.close()
        time.sleep(0.1)
        assert broker_still_works(broker)

    def test_huge_remaining_length_header(self, broker):
        sock = raw_connection(broker)
        # 5-byte remaining length is a protocol violation.
        sock.sendall(b"\x10\xff\xff\xff\xff\x01")
        time.sleep(0.1)
        sock.close()
        assert broker_still_works(broker)

    def test_many_rapid_connects_disconnects(self, broker):
        for i in range(20):
            sock = raw_connection(broker)
            sock.sendall(pkt.Connect(client_id=f"churn{i}").encode())
            sock.close()
        time.sleep(0.2)
        assert broker_still_works(broker)


class TestClientApiMisuse:
    def test_publish_before_connect(self):
        client = MQTTClient("nc", port=1)
        with pytest.raises(TransportError, match="not connected"):
            client.publish("/x", b"")

    def test_connect_refused_port(self):
        client = MQTTClient("nc", host="127.0.0.1", port=1)
        with pytest.raises(OSError):
            client.connect()

    def test_double_disconnect_safe(self):
        with MQTTBroker("127.0.0.1", 0) as broker:
            client = MQTTClient("dd", port=broker.port)
            client.connect()
            client.disconnect()
            client.disconnect()


class TestDecoderFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(min_size=0, max_size=512))
    def test_stream_decoder_never_crashes_uncontrolled(self, data):
        decoder = pkt.StreamDecoder()
        try:
            decoder.feed(data)
        except TransportError:
            pass  # the one sanctioned failure mode

    @settings(max_examples=100, deadline=None)
    @given(
        st.binary(min_size=0, max_size=64),
        st.binary(min_size=0, max_size=64),
    )
    def test_valid_packet_survives_garbage_prefix_rejection(self, garbage, payload):
        # After a TransportError the caller discards the connection, so
        # we only require the error to be the typed one.
        packet = pkt.Publish(topic="/ok", payload=payload)
        decoder = pkt.StreamDecoder()
        try:
            out = decoder.feed(garbage + packet.encode())
        except TransportError:
            return
        # If garbage happened to parse, every decoded object is a
        # legitimate packet instance.
        for decoded in out:
            assert hasattr(decoded, "encode")


class TestKeepaliveEnforcement:
    def test_silent_client_dropped_and_will_fired(self, broker):
        sink = []
        import threading as _threading

        event = _threading.Event()
        watcher = MQTTClient("watch", port=broker.port)
        watcher.connect()
        watcher.subscribe("/dead/#", lambda t, p: (sink.append(t), event.set()))
        sock = raw_connection(broker)
        sock.sendall(
            pkt.Connect(
                client_id="silent", keepalive=1, will_topic="/dead/silent"
            ).encode()
        )
        # No PINGREQ: the broker must drop us within ~1.5 s and fire
        # the will.
        assert event.wait(5.0)
        assert sink == ["/dead/silent"]
        watcher.disconnect()
        sock.close()

    def test_pinging_client_survives_keepalive(self, broker):
        client = MQTTClient("pinger2", port=broker.port, keepalive=1)
        client.connect()
        time.sleep(2.2)  # > 1.5x keepalive; PINGREQs keep us alive
        client.publish("/still/here", b"1", qos=1, wait_ack=True)
        client.disconnect()
