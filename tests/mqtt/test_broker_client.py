"""Integration tests of the TCP broker and client over real sockets."""

import threading
import time

import pytest

from repro.common.errors import TransportError
from repro.mqtt.broker import MQTTBroker, PublishOnlyBroker
from repro.mqtt.client import MQTTClient


@pytest.fixture
def broker():
    with MQTTBroker("127.0.0.1", 0) as b:
        yield b


def make_client(broker, client_id, **kwargs):
    client = MQTTClient(client_id, port=broker.port, **kwargs)
    client.connect()
    return client


class Collector:
    """Thread-safe message sink with wait support."""

    def __init__(self):
        self.messages = []
        self._cond = threading.Condition()

    def __call__(self, topic, payload):
        with self._cond:
            self.messages.append((topic, payload))
            self._cond.notify_all()

    def wait_for(self, count, timeout=5.0):
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self.messages) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True


class TestPublishSubscribe:
    def test_basic_delivery(self, broker):
        sink = Collector()
        sub = make_client(broker, "sub")
        sub.subscribe("/data/#", sink)
        pub = make_client(broker, "pub")
        pub.publish("/data/x", b"42")
        assert sink.wait_for(1)
        assert sink.messages == [("/data/x", b"42")]
        pub.disconnect()
        sub.disconnect()

    def test_qos1_waits_for_ack(self, broker):
        pub = make_client(broker, "pub")
        pub.publish("/q", b"1", qos=1, wait_ack=True)
        assert broker.messages_received == 1
        pub.disconnect()

    def test_wildcard_plus(self, broker):
        sink = Collector()
        sub = make_client(broker, "sub")
        sub.subscribe("/a/+/c", sink)
        pub = make_client(broker, "pub")
        pub.publish("/a/b/c", b"hit")
        pub.publish("/a/b/d", b"miss")
        pub.publish("/a/x/c", b"hit2")
        assert sink.wait_for(2)
        time.sleep(0.05)
        assert len(sink.messages) == 2
        pub.disconnect()
        sub.disconnect()

    def test_multiple_subscribers_fanout(self, broker):
        sinks = [Collector() for _ in range(3)]
        subs = []
        for i, sink in enumerate(sinks):
            sub = make_client(broker, f"sub{i}")
            sub.subscribe("/fan/#", sink)
            subs.append(sub)
        pub = make_client(broker, "pub")
        pub.publish("/fan/out", b"x")
        for sink in sinks:
            assert sink.wait_for(1)
        for sub in subs:
            sub.disconnect()
        pub.disconnect()

    def test_unsubscribe_stops_delivery(self, broker):
        sink = Collector()
        sub = make_client(broker, "sub")
        sub.subscribe("/u/#", sink)
        pub = make_client(broker, "pub")
        pub.publish("/u/1", b"a")
        assert sink.wait_for(1)
        sub.unsubscribe("/u/#")
        time.sleep(0.05)
        pub.publish("/u/2", b"b")
        time.sleep(0.15)
        assert len(sink.messages) == 1
        pub.disconnect()
        sub.disconnect()

    def test_retained_message_delivered_to_late_subscriber(self, broker):
        pub = make_client(broker, "pub")
        pub.publish("/state/mode", b"eco", retain=True)
        time.sleep(0.05)
        sink = Collector()
        sub = make_client(broker, "late")
        sub.subscribe("/state/#", sink)
        assert sink.wait_for(1)
        assert sink.messages[0] == ("/state/mode", b"eco")
        pub.disconnect()
        sub.disconnect()

    def test_publish_hook_sees_everything(self, broker):
        seen = []
        broker.add_publish_hook(lambda cid, p: seen.append((cid, p.topic)))
        pub = make_client(broker, "hooked")
        pub.publish("/h/1", b"x", qos=1, wait_ack=True)
        assert seen == [("hooked", "/h/1")]
        pub.disconnect()


class TestLifecycle:
    def test_will_published_on_abnormal_disconnect(self, broker):
        sink = Collector()
        watcher = make_client(broker, "watcher")
        watcher.subscribe("/dead/#", sink)
        from repro.mqtt import packets as pkt

        # Build a raw connection carrying a will, then sever it.
        import socket

        sock = socket.create_connection(("127.0.0.1", broker.port))
        sock.sendall(
            pkt.Connect(
                client_id="dying", will_topic="/dead/dying", will_payload=b"rip"
            ).encode()
        )
        time.sleep(0.1)
        sock.close()  # abnormal: no DISCONNECT packet
        assert sink.wait_for(1)
        assert sink.messages[0] == ("/dead/dying", b"rip")
        watcher.disconnect()

    def test_clean_disconnect_suppresses_will(self, broker):
        sink = Collector()
        watcher = make_client(broker, "watcher")
        watcher.subscribe("/dead/#", sink)
        from repro.mqtt import packets as pkt
        import socket

        sock = socket.create_connection(("127.0.0.1", broker.port))
        sock.sendall(
            pkt.Connect(client_id="polite", will_topic="/dead/polite").encode()
        )
        time.sleep(0.1)
        sock.sendall(pkt.Disconnect().encode())
        time.sleep(0.1)
        sock.close()
        time.sleep(0.15)
        assert sink.messages == []
        watcher.disconnect()

    def test_authenticator_rejects(self):
        broker = MQTTBroker(
            "127.0.0.1", 0, authenticator=lambda cid, user, pw: user == "ok"
        )
        with broker:
            good = MQTTClient("a", port=broker.port, username="ok")
            good.connect()
            good.disconnect()
            bad = MQTTClient("b", port=broker.port, username="evil")
            with pytest.raises(TransportError, match="refused"):
                bad.connect()

    def test_connected_clients_counter(self, broker):
        a = make_client(broker, "a")
        b = make_client(broker, "b")
        time.sleep(0.05)
        assert broker.connected_clients == 2
        a.disconnect()
        b.disconnect()
        deadline = time.monotonic() + 2
        while broker.connected_clients and time.monotonic() < deadline:
            time.sleep(0.02)
        assert broker.connected_clients == 0

    def test_keepalive_ping(self, broker):
        client = make_client(broker, "pinger", keepalive=1)
        time.sleep(1.2)
        # Connection must survive the keepalive window via PINGREQ.
        client.publish("/alive", b"1", qos=1, wait_ack=True)
        client.disconnect()

    def test_concurrent_publishers(self, broker):
        sink = Collector()
        sub = make_client(broker, "sub")
        sub.subscribe("/conc/#", sink)
        clients = [make_client(broker, f"p{i}") for i in range(4)]

        def blast(client, idx):
            for j in range(25):
                client.publish(f"/conc/{idx}", str(j).encode())

        threads = [
            threading.Thread(target=blast, args=(c, i)) for i, c in enumerate(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sink.wait_for(100)
        for c in clients:
            c.disconnect()
        sub.disconnect()


class TestPublishOnlyBroker:
    def test_subscribe_rejected(self):
        with PublishOnlyBroker("127.0.0.1", 0) as broker:
            client = make_client(broker, "c")
            with pytest.raises(TransportError, match="rejected"):
                client.subscribe("/anything/#")
            client.disconnect()

    def test_publish_still_flows_to_hooks(self):
        with PublishOnlyBroker("127.0.0.1", 0) as broker:
            seen = []
            broker.add_publish_hook(lambda cid, p: seen.append(p.topic))
            client = make_client(broker, "c")
            client.publish("/s/1", b"v", qos=1, wait_ack=True)
            assert seen == ["/s/1"]
            client.disconnect()
