"""Event-loop transport tests: fan-in scale, keepalive expiry,
write-buffer backpressure, reconnect replay, shutdown hygiene."""

import resource
import socket
import threading
import time

import pytest

from repro.faults import BrokerFaultInjector
from repro.mqtt import packets as pkt
from repro.mqtt.broker import MQTTBroker, PublishOnlyBroker
from repro.mqtt.client import MQTTClient
from repro.mqtt.eventloop import Connection, EventLoop


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def broker():
    with MQTTBroker("127.0.0.1", 0) as b:
        yield b


class TestEventLoop:
    def test_call_soon_runs_on_loop_thread(self):
        loop = EventLoop()
        loop.start()
        try:
            seen = []
            done = threading.Event()
            loop.call_soon(lambda: (seen.append(threading.current_thread()), done.set()))
            assert done.wait(2.0)
            assert seen[0].name == "mqtt-loop"
        finally:
            loop.stop()

    def test_call_later_ordering_and_cancel(self):
        loop = EventLoop()
        loop.start()
        try:
            order = []
            done = threading.Event()
            loop.call_later(0.05, lambda: order.append("b"))
            loop.call_later(0.01, lambda: order.append("a"))
            cancelled = loop.call_later(0.02, lambda: order.append("never"))
            cancelled.cancel()
            loop.call_later(0.08, lambda: (order.append("c"), done.set()))
            assert done.wait(2.0)
            assert order == ["a", "b", "c"]
        finally:
            loop.stop()

    def test_stop_is_idempotent(self):
        loop = EventLoop()
        loop.start()
        loop.stop()
        loop.stop()
        never_started = EventLoop()
        never_started.stop()


class TestFanIn500:
    def test_500_connections_o1_transport_threads(self):
        """500 concurrent raw MQTT connections served by ONE loop thread.

        The pre-change broker spawned a reader thread per client; the
        acceptance criterion is O(1) transport threads (accept+loop
        combined in one) at 500 concurrent connections, with every
        publish delivered.
        """
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < 1200:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(4096, hard), hard)
            )
        with PublishOnlyBroker("127.0.0.1", 0) as broker:
            threads_before = {
                t.name for t in threading.enumerate() if t.name.startswith("mqtt-broker")
            }
            assert len(threads_before) == 1  # the loop, nothing else
            socks = []
            try:
                for i in range(500):
                    s = socket.create_connection(("127.0.0.1", broker.port), timeout=5.0)
                    s.sendall(pkt.Connect(client_id=f"fan{i}", keepalive=0).encode())
                    socks.append(s)
                assert wait_until(lambda: broker.connected_clients == 500, timeout=15.0)
                blob = pkt.Publish(topic="/fan/in", payload=b"x" * 64).encode()
                for s in socks:
                    s.sendall(blob)
                assert wait_until(
                    lambda: broker.messages_received == 500, timeout=15.0
                ), f"only {broker.messages_received}/500 publishes arrived"
                # Still exactly one transport thread for 500 sessions.
                broker_threads = [
                    t
                    for t in threading.enumerate()
                    if t.name.startswith("mqtt-broker") and t.is_alive()
                ]
                assert len(broker_threads) == 1
                assert broker.transport_threads == 1
            finally:
                for s in socks:
                    try:
                        s.close()
                    except OSError:
                        pass
            assert wait_until(lambda: broker.connected_clients == 0, timeout=15.0)


class TestKeepaliveExpiry:
    def test_expired_session_disconnected_with_will_and_metric(self, broker):
        fired = []
        broker.add_publish_hook(lambda cid, p: fired.append((cid, p.topic)))
        sock = socket.create_connection(("127.0.0.1", broker.port), timeout=2.0)
        sock.sendall(
            pkt.Connect(
                client_id="mute", keepalive=1, will_topic="/dead/mute", will_payload=b"x"
            ).encode()
        )
        assert wait_until(lambda: broker.connected_clients == 1)
        # Silent past 1.5x keepalive: the broker must disconnect us,
        # fire the will, and count the expiry.
        assert wait_until(lambda: ("mute", "/dead/mute") in fired, timeout=5.0)
        assert broker.keepalive_disconnects == 1
        assert broker.metrics.value("dcdb_broker_keepalive_disconnects_total") == 1
        assert wait_until(lambda: broker.connected_clients == 0)
        sock.close()

    def test_zero_keepalive_never_expires(self, broker):
        sock = socket.create_connection(("127.0.0.1", broker.port), timeout=2.0)
        sock.sendall(pkt.Connect(client_id="forever", keepalive=0).encode())
        assert wait_until(lambda: broker.connected_clients == 1)
        time.sleep(1.0)
        assert broker.connected_clients == 1
        assert broker.keepalive_disconnects == 0
        sock.close()


class TestWriteBufferOverflow:
    def _stuffed_connection(self, loop, policy):
        """A Connection whose peer never reads, with tiny buffers so the
        kernel cannot hide the backlog."""
        a, b = socket.socketpair()
        a.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        b.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        conn = Connection(
            loop,
            a,
            on_packet=lambda c, p: None,
            max_write_buffer=16384,
            overflow_policy=policy,
            label="slow-consumer",
        )
        conn.attach()
        return conn, b

    def test_drop_policy_discards_and_keeps_connection(self):
        loop = EventLoop()
        loop.start()
        try:
            conn, peer = self._stuffed_connection(loop, "drop")
            chunk = b"m" * 4096
            results = [conn.write(chunk) for _ in range(64)]
            assert False in results  # some messages were dropped...
            assert conn.overflow_drops > 0
            assert not conn.closed  # ...but the slow consumer survives
            conn.close()
            peer.close()
        finally:
            loop.stop()

    def test_disconnect_policy_severs_slow_consumer(self):
        loop = EventLoop()
        loop.start()
        try:
            conn, peer = self._stuffed_connection(loop, "disconnect")
            chunk = b"m" * 4096
            for _ in range(64):
                if not conn.write(chunk):
                    break
            assert wait_until(lambda: conn.closed, timeout=2.0)
            peer.close()
        finally:
            loop.stop()

    def test_broker_severs_slow_subscriber_end_to_end(self):
        """A subscriber that stops reading fills its session buffer;
        the broker counts the overflow and (disconnect policy) drops
        the session instead of wedging the publisher."""
        with MQTTBroker(
            "127.0.0.1", 0, max_write_buffer=16384, overflow_policy="disconnect"
        ) as broker:
            sub_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sub_sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            sub_sock.connect(("127.0.0.1", broker.port))
            sub_sock.sendall(pkt.Connect(client_id="slow-sub", keepalive=0).encode())
            sub_sock.sendall(
                pkt.Subscribe(packet_id=1, topics=(("/big/#", 0),)).encode()
            )
            time.sleep(0.2)  # let CONNACK/SUBACK land; then never read again
            with MQTTClient("blaster", port=broker.port) as publisher:
                # Each message alone exceeds the 16 KiB session buffer,
                # so the first write that cannot flush to the kernel
                # trips the policy; enough volume defeats kernel
                # send-buffer auto-tuning on loopback.
                payload = b"z" * 65536
                for _ in range(400):
                    publisher.publish("/big/data", payload)
                    if broker.metrics.value("dcdb_broker_write_overflow_total"):
                        break
                assert wait_until(
                    lambda: broker.metrics.value("dcdb_broker_write_overflow_total") >= 1,
                    timeout=5.0,
                )
                assert wait_until(lambda: broker.connected_clients == 1, timeout=5.0)
            sub_sock.close()


class TestClientReconnect:
    def test_replays_unacked_qos1_exactly_once(self):
        """Publishes queued during the outage are re-sent exactly once
        when the session is re-established on the same port."""
        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        port = broker.port
        delivered = []
        client = MQTTClient(
            "replayer", port=port, reconnect_min_delay_s=0.05, keepalive=0
        )
        client.connect()
        try:
            client.publish("/r/pre", b"pre", qos=1, wait_ack=True)
            broker.stop()
            assert wait_until(lambda: not client.connected, timeout=5.0)
            # Queue strictly while the broker is down: these cannot have
            # hit the first incarnation, so any duplicate must come from
            # a replay bug.
            for i in range(3):
                client.publish("/r/queued", f"q{i}".encode(), qos=1)
            broker2 = MQTTBroker("127.0.0.1", port)
            broker2.add_publish_hook(
                lambda cid, p: delivered.append(bytes(p.payload))
            )
            broker2.start()
            try:
                assert wait_until(
                    lambda: sorted(delivered) == [b"q0", b"q1", b"q2"], timeout=10.0
                ), f"delivered: {delivered}"
                time.sleep(0.3)  # window for an erroneous double replay
                assert sorted(delivered) == [b"q0", b"q1", b"q2"]
                assert client.reconnects == 1
                assert client.metrics.value("dcdb_client_reconnects_total") == 1
            finally:
                client.disconnect()
                broker2.stop()
        finally:
            broker.stop()

    def test_resubscribes_after_reconnect(self):
        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        port = broker.port
        got = []
        event = threading.Event()
        sub = MQTTClient("resub", port=port, reconnect_min_delay_s=0.05, keepalive=0)
        sub.connect()
        try:
            sub.subscribe("/re/#", lambda t, p: (got.append((t, p)), event.set()))
            broker.stop()
            assert wait_until(lambda: not sub.connected, timeout=5.0)
            broker2 = MQTTBroker("127.0.0.1", port)
            broker2.start()
            try:
                assert wait_until(lambda: sub.connected, timeout=10.0)
                with MQTTClient("fresh-pub", port=port) as publisher:
                    publisher.publish("/re/hello", b"back", qos=1, wait_ack=True)
                assert event.wait(5.0)
                assert got == [("/re/hello", b"back")]
            finally:
                sub.disconnect()
                broker2.stop()
        finally:
            broker.stop()

    def test_qos0_during_outage_raises_and_counts_drop(self):
        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        client = MQTTClient("q0", port=broker.port, keepalive=0)
        client.connect()
        try:
            broker.stop()
            assert wait_until(lambda: not client.connected, timeout=5.0)
            from repro.common.errors import TransportError

            with pytest.raises(TransportError, match="not connected"):
                client.publish("/q0/x", b"lost")
            assert client.qos0_drops == 1
            assert client.metrics.value("dcdb_client_qos0_drops_total") == 1
        finally:
            client.close()
            broker.stop()


class TestShutdownHygiene:
    def test_stop_is_idempotent_and_silent(self, caplog):
        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        client = MQTTClient("bye", port=broker.port, reconnect=False)
        client.connect()
        with caplog.at_level("WARNING", logger="repro.mqtt"):
            broker.stop()
            broker.stop()  # idempotent
        assert not [r for r in caplog.records if "Bad file descriptor" in r.message]
        client.close()

    def test_stop_suppresses_wills_deterministically(self):
        """A broker shutting down is not a fleet of client crashes:
        no session's last-will may fire, however many are connected."""
        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        fired = []
        broker.add_publish_hook(lambda cid, p: fired.append(p.topic))
        socks = []
        for i in range(10):
            s = socket.create_connection(("127.0.0.1", broker.port), timeout=2.0)
            s.sendall(
                pkt.Connect(
                    client_id=f"w{i}", keepalive=0, will_topic=f"/dead/w{i}"
                ).encode()
            )
            socks.append(s)
        assert wait_until(lambda: broker.connected_clients == 10)
        broker.stop()
        time.sleep(0.2)
        assert fired == []  # shutdown suppressed every will
        for s in socks:
            s.close()

    def test_restart_on_same_port_works(self):
        broker = MQTTBroker("127.0.0.1", 0)
        broker.start()
        port = broker.port
        broker.stop()
        broker2 = MQTTBroker("127.0.0.1", port)
        broker2.start()
        try:
            with MQTTClient("again", port=port) as client:
                client.publish("/again", b"1", qos=1, wait_ack=True)
            assert broker2.messages_received == 1
        finally:
            broker2.stop()


class TestInjectionSeam:
    def test_stall_pauses_reading_without_dropping_data(self, broker):
        injector = BrokerFaultInjector(stall_seconds=0.3)
        broker.set_fault_injector(injector)
        injector.stall_client_after("staller", chunks=1)
        with MQTTClient("staller", port=broker.port, keepalive=0) as client:
            client.publish("/st/1", b"a", qos=1, wait_ack=True)
            # The next chunk triggers a 0.3 s read stall; the publish
            # is delayed but not lost (the chunk is still processed).
            start = time.monotonic()
            client.publish("/st/2", b"b", qos=1, wait_ack=True, timeout=5.0)
            elapsed = time.monotonic() - start
            assert injector.stalls == 1
            assert broker.messages_received == 2
            assert elapsed < 5.0

    def test_injector_attaches_to_live_sessions(self, broker):
        with MQTTClient("late-target", port=broker.port, keepalive=0) as client:
            client.publish("/live/1", b"x", qos=1, wait_ack=True)
            injector = BrokerFaultInjector()
            broker.set_fault_injector(injector)
            injector.disconnect_client_after("late-target", chunks=0)
            client.auto_reconnect = False  # observe the cut itself
            from repro.common.errors import TransportError

            with pytest.raises((TransportError, OSError)):
                client.publish("/live/2", b"y", qos=1, wait_ack=True, timeout=2.0)
            assert injector.disconnects == 1
