"""Tests for the in-process transport: semantics parity with TCP."""

import pytest

from repro.common.errors import TransportError
from repro.mqtt.inproc import InProcClient, InProcHub


class TestInProcHub:
    def test_publish_reaches_subscriber(self):
        hub = InProcHub()
        sink = []
        sub = InProcClient("sub", hub)
        sub.connect()
        sub.subscribe("/a/#", lambda t, p: sink.append((t, p)))
        pub = InProcClient("pub", hub)
        pub.connect()
        pub.publish("/a/b", b"x")
        assert sink == [("/a/b", b"x")]

    def test_publish_hooks(self):
        hub = InProcHub(allow_subscribe=False)
        seen = []
        hub.add_publish_hook(lambda cid, p: seen.append((cid, p.topic, p.payload)))
        client = InProcClient("c1", hub)
        client.connect()
        client.publish("/s", b"v")
        assert seen == [("c1", "/s", b"v")]

    def test_publish_only_hub_rejects_subscribe(self):
        hub = InProcHub(allow_subscribe=False)
        client = InProcClient("c", hub)
        client.connect()
        with pytest.raises(TransportError, match="publish-only"):
            client.subscribe("/x/#")

    def test_disconnected_client_cannot_publish(self):
        hub = InProcHub()
        client = InProcClient("c", hub)
        with pytest.raises(TransportError, match="not connected"):
            client.publish("/x", b"")

    def test_invalid_topic_rejected(self):
        hub = InProcHub()
        client = InProcClient("c", hub)
        client.connect()
        with pytest.raises(TransportError):
            client.publish("/has/#/wildcard", b"")

    def test_disconnect_removes_subscriptions(self):
        hub = InProcHub()
        sink = []
        sub = InProcClient("sub", hub)
        sub.connect()
        sub.subscribe("/a/#", lambda t, p: sink.append(t))
        sub.disconnect()
        pub = InProcClient("pub", hub)
        pub.connect()
        pub.publish("/a/b", b"")
        assert sink == []
        assert hub.messages_delivered == 0

    def test_unsubscribe(self):
        hub = InProcHub()
        sink = []
        sub = InProcClient("sub", hub)
        sub.connect()
        sub.subscribe("/a/#", lambda t, p: sink.append(t))
        sub.unsubscribe("/a/#")
        pub = InProcClient("pub", hub)
        pub.connect()
        pub.publish("/a/b", b"")
        assert sink == []

    def test_counters(self):
        hub = InProcHub()
        pub = InProcClient("pub", hub)
        pub.connect()
        pub.publish("/a", b"1234")
        assert hub.messages_received == 1
        assert pub.messages_sent == 1
        assert pub.bytes_sent == 4 + len("/a")

    def test_connected_clients(self):
        hub = InProcHub()
        a = InProcClient("a", hub)
        b = InProcClient("b", hub)
        a.connect()
        b.connect()
        assert hub.connected_clients == 2
        a.disconnect()
        assert hub.connected_clients == 1

    def test_on_message_fallback(self):
        hub = InProcHub()
        sink = []
        sub = InProcClient("sub", hub)
        sub.connect()
        sub.subscribe("/a/#")  # no callback registered
        sub.on_message = lambda t, p: sink.append(t)
        pub = InProcClient("pub", hub)
        pub.connect()
        pub.publish("/a/b", b"")
        assert sink == ["/a/b"]

    def test_context_manager(self):
        hub = InProcHub()
        with InProcClient("c", hub) as client:
            assert client.connected
        assert not client.connected

    def test_connect_idempotent(self):
        hub = InProcHub()
        client = InProcClient("c", hub)
        client.connect()
        client.connect()
        assert hub.connected_clients == 1


class TestInProcConcurrency:
    def test_parallel_publishers_counted_exactly(self):
        import threading

        hub = InProcHub(allow_subscribe=False)
        received = []
        hub.add_publish_hook(lambda cid, p: received.append(p.topic))
        clients = [InProcClient(f"c{i}", hub) for i in range(8)]
        for client in clients:
            client.connect()

        def blast(client, idx):
            for j in range(500):
                client.publish(f"/conc/{idx}/s{j % 10}", b"x")

        threads = [
            threading.Thread(target=blast, args=(c, i))
            for i, c in enumerate(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hub.messages_received == 8 * 500
        assert len(received) == 8 * 500

    def test_subscribe_while_publishing(self):
        import threading

        hub = InProcHub()
        stop = threading.Event()
        pub = InProcClient("pub", hub)
        pub.connect()
        errors = []

        def publisher():
            i = 0
            try:
                while not stop.is_set():
                    pub.publish(f"/live/s{i % 5}", b"")
                    i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=publisher)
        thread.start()
        try:
            for i in range(50):
                sub = InProcClient(f"sub{i}", hub)
                sub.connect()
                sub.subscribe("/live/#", lambda t, p: None)
                sub.disconnect()
        finally:
            stop.set()
            thread.join()
        assert errors == []
